//! Node-failure and rollout behaviour: a lost worker degrades its shards **loudly**
//! (every admitted ticket still resolves, tagged `Degraded`, counted in
//! [`ClusterStats`] and journaled) and recovers to bit-parity on reconnect; a
//! sabotaged candidate model dies at the canary and never reaches the fleet, while a
//! good candidate rolls out fleet-wide with no mixed-version batch.

mod common;

use common::{
    assert_bit_identical, canary_owned_pool, covered_probe, fixture, sabotaged_crn, spawn_fleet,
    workload,
};
use crn_cluster::wire::{read_message, write_message, Message};
use crn_cluster::{ClusterClient, ClusterOptions, RolloutOutcome};
use crn_core::{EstimatorService, ShardedPool};
use crn_nn::parallel::WorkerPool;
use crn_obs::{Obs, ObsConfig};
use crn_serve::{
    ComputeBackend, EstimateSource, FaultInjector, FaultPlan, FaultSite, FaultTrigger,
    RuntimeConfig, ServeRuntime,
};
use std::net::TcpListener;
use std::sync::Arc;

/// A mid-batch frame drop (the deterministic [`FaultSite::ClusterFrameDrop`] fault
/// site — occurrence-counted, no wall clock) degrades exactly the affected batch:
/// every admitted ticket resolves as `EstimateSource::Degraded`, the loss is counted
/// and journaled, and the reconnect cadence restores bit-parity.
#[test]
fn frame_drop_mid_batch_resolves_tickets_as_degraded_then_recovers() {
    let fx = fixture(41);
    let queries = workload(&fx.db, 83, 6);
    let obs = Obs::new(ObsConfig::enabled());
    let (addrs, handles) = spawn_fleet(1, 1);
    // The scheduler may split the 6 tickets into up to 6 batches; a cadence longer
    // than that keeps the worker lost for the whole ticket phase (no racy recovery),
    // and the explicit recovery loop below crosses it deterministically.
    let options = ClusterOptions {
        reconnect_every: 8,
        ..ClusterOptions::default()
    };
    let faults = FaultInjector::new(
        FaultPlan::none().with(FaultSite::ClusterFrameDrop, FaultTrigger::Once(1)),
    );
    let client = Arc::new(
        ClusterClient::connect(&addrs, fx.model.clone(), &fx.pool, 4, options)
            .expect("connect")
            .with_obs(&obs)
            .with_faults(faults),
    );
    let runtime = ServeRuntime::new(Arc::clone(&client), RuntimeConfig::default());

    // Batch 1: the scripted drop severs the only worker mid-frame.  Every ticket must
    // still resolve — degraded, never hung.
    let tickets: Vec<_> = queries
        .iter()
        .map(|query| runtime.submit(1, query.clone()).expect("admitted"))
        .collect();
    for ticket in &tickets {
        let outcome = ticket.wait().expect("ticket resolves");
        assert_eq!(outcome.source, EstimateSource::Degraded);
    }

    let stats = client.stats();
    assert_eq!(stats.worker_losses, 1, "the drop is a counted loss");
    assert!(
        stats.degraded_queries >= queries.len() as u64,
        "every query in the severed batch degraded"
    );
    let lost_events = obs
        .events_since(0)
        .into_iter()
        .filter(|entry| entry.event.kind() == "worker_lost")
        .count();
    assert_eq!(lost_events, 1, "the loss is journaled");

    // Later batches: the reconnect cadence re-dials, re-ships the assignment, and
    // serving is bit-identical to single-process again.
    let mut response = client.serve(&queries);
    for _ in 0..16 {
        if response.degraded.is_empty() {
            break;
        }
        response = client.serve(&queries);
    }
    assert!(response.degraded.is_empty(), "reconnected fleet is healthy");
    assert_eq!(client.stats().reconnects, 1);
    let service = EstimatorService::new(
        fx.model.clone(),
        ShardedPool::from_pool(&fx.pool, 4),
        WorkerPool::shared(2),
    );
    let local = ComputeBackend::serve(&service, &queries);
    assert_bit_identical(&response.estimates, &local.estimates, "post-reconnect");

    drop(runtime);
    client.shutdown_workers();
    for handle in handles {
        handle.join().expect("worker exits");
    }
}

/// A worker that dies for good (its listener gone — reconnects are refused forever)
/// permanently degrades only its own shards: every batch fully resolves, the healthy
/// worker's queries stay bit-identical, and the losses/degraded counters keep score.
#[test]
fn dead_worker_degrades_its_shards_and_never_hangs_a_batch() {
    let fx = fixture(47);
    let queries = workload(&fx.db, 85, 20);

    // Worker 0 is real.  Worker 1 is a stub that accepts the assignment, acks it, then
    // dies — dropping its listener, so every later dial is refused.
    let (mut addrs, mut handles) = spawn_fleet(1, 1);
    let stub = TcpListener::bind("127.0.0.1:0").expect("bind stub");
    addrs.push(stub.local_addr().expect("stub addr"));
    handles.push(std::thread::spawn(move || {
        let (stream, _) = stub.accept().expect("coordinator connects");
        let mut reader = stream.try_clone().expect("clone");
        let mut writer = stream;
        let Ok(Message::Assign(assignment)) = read_message(&mut reader) else {
            panic!("expected assignment first");
        };
        write_message(
            &mut writer,
            &Message::AssignAck(crn_cluster::wire::AssignAck {
                worker_id: assignment.worker_id,
                shards: assignment.shards.len(),
                model_version: assignment.model_version,
            }),
        )
        .expect("ack");
        // Die: connection and listener both drop here.
    }));

    let options = ClusterOptions {
        reconnect_every: 1,
        ..ClusterOptions::default()
    };
    let client =
        ClusterClient::connect(&addrs, fx.model.clone(), &fx.pool, 4, options).expect("connect");

    // Reference for the still-healthy slots.
    let service = EstimatorService::new(
        fx.model.clone(),
        ShardedPool::from_pool(&fx.pool, 4),
        WorkerPool::shared(2),
    );
    let local = ComputeBackend::serve(&service, &queries);

    for batch in 0..3 {
        let response = client.serve(&queries);
        assert_eq!(
            response.estimates.len(),
            queries.len(),
            "batch {batch}: every query answered"
        );
        assert!(
            !response.degraded.is_empty(),
            "batch {batch}: the dead worker's shards degrade"
        );
        assert!(
            response.degraded.len() < queries.len(),
            "batch {batch}: the live worker still serves its shards"
        );
        for (index, estimate) in response.estimates.iter().enumerate() {
            if !response.degraded.contains(&index) {
                assert_eq!(
                    estimate.to_bits(),
                    local.estimates[index].to_bits(),
                    "batch {batch}: healthy slot {index} diverged"
                );
            }
        }
    }

    let stats = client.stats();
    assert_eq!(stats.workers_up, 1);
    assert!(stats.worker_losses >= 1);
    assert!(stats.degraded_queries > 0);
    assert_eq!(stats.reconnects, 0, "a refused dial is not a reconnect");

    client.shutdown_workers();
    handles.remove(1).join().expect("stub exits");
    handles.remove(0).join().expect("worker exits");
}

/// The canary gate: a sabotaged candidate (trained into epsilon-filtering every
/// anchor, so every probe falls back to the flat default) is rejected on the
/// canary worker's mirrored probe traffic and never reaches the fleet — the live
/// version keeps serving bit-identically; the decision is journaled and counted.
#[test]
fn sabotaged_candidate_dies_at_the_canary() {
    let fx = fixture(53);
    let queries = workload(&fx.db, 87, 12);
    // Probe traffic the canary worker can actually answer from its own shard subset
    // (2 workers x 4 shards: worker 0 owns shards 0 and 2).
    let owned = canary_owned_pool(&fx.pool, 4, 2);
    let (probe, truths) = covered_probe(&fx.db, &owned, 88, 12);

    let obs = Obs::new(ObsConfig::enabled());
    let (addrs, handles) = spawn_fleet(2, 1);
    let client = ClusterClient::connect(
        &addrs,
        fx.model.clone(),
        &fx.pool,
        4,
        ClusterOptions::default(),
    )
    .expect("connect")
    .with_obs(&obs);

    let before = client.serve(&queries);
    let outcome = client
        .roll_out(sabotaged_crn(&fx.db, 53), &probe, &truths)
        .expect("rollout runs");
    let RolloutOutcome::Rejected {
        live_median,
        candidate_median,
    } = outcome
    else {
        panic!("sabotaged candidate was promoted: {outcome:?}");
    };
    assert!(
        candidate_median >= live_median,
        "rejection reason: candidate {candidate_median} vs live {live_median}"
    );

    // The fleet still serves the old version, bit-identically to before.
    assert_eq!(client.model_version(), 1);
    let after = client.serve(&queries);
    assert!(after.degraded.is_empty(), "no version-mismatch fallout");
    assert_bit_identical(&after.estimates, &before.estimates, "post-rejection");

    let stats = client.stats();
    assert_eq!(stats.canary_rejected, 1);
    assert_eq!(stats.canary_promoted, 0);
    let decisions: Vec<_> = obs
        .events_since(0)
        .into_iter()
        .filter(|entry| entry.event.kind() == "canary_decision")
        .collect();
    assert_eq!(decisions.len(), 1, "one journaled canary decision");

    client.shutdown_workers();
    for handle in handles {
        handle.join().expect("worker exits");
    }
}

/// The promotion path: with a sabotaged live model, a properly trained candidate
/// beats the canary gate and swaps fleet-wide under a new version — subsequent batches
/// serve bit-identically to a single-process service on the NEW model, with no
/// degraded slots (i.e. no worker ever answered under a stale version).
#[test]
fn good_candidate_promotes_fleet_wide_without_mixing_versions() {
    let fx = fixture(59);
    let queries = workload(&fx.db, 89, 12);
    let owned = canary_owned_pool(&fx.pool, 4, 2);
    let (probe, truths) = covered_probe(&fx.db, &owned, 90, 12);

    let (addrs, handles) = spawn_fleet(2, 1);
    let live = sabotaged_crn(&fx.db, 59);
    let client = ClusterClient::connect(&addrs, live, &fx.pool, 4, ClusterOptions::default())
        .expect("connect");

    let outcome = client
        .roll_out(fx.model.clone(), &probe, &truths)
        .expect("rollout runs");
    let RolloutOutcome::Promoted { version, .. } = outcome else {
        panic!("good candidate was rejected: {outcome:?}");
    };
    assert_eq!(version, 2);
    assert_eq!(client.model_version(), 2);
    assert_eq!(client.stats().canary_promoted, 1);

    // Every post-swap batch serves the candidate on every worker: bit-identical to a
    // single-process service over the candidate, with zero degraded (a stale-version
    // worker would have errored the batch into degradation — none did).
    let response = client.serve(&queries);
    assert!(response.degraded.is_empty(), "no mixed-version batch");
    let service = EstimatorService::new(
        fx.model.clone(),
        ShardedPool::from_pool(&fx.pool, 4),
        WorkerPool::shared(2),
    );
    let local = ComputeBackend::serve(&service, &queries);
    assert_bit_identical(&response.estimates, &local.estimates, "post-promotion");

    client.shutdown_workers();
    for handle in handles {
        handle.join().expect("worker exits");
    }
}
