//! Shared loopback-cluster fixture: a tiny IMDB-shaped database, a trained CRN model,
//! a queries pool, and helpers to spawn an in-process worker fleet on ephemeral
//! loopback listeners.
//!
//! Each test binary compiles its own copy, so not every helper is used everywhere.
#![allow(dead_code)]

use crn_cluster::worker::spawn_worker;
use crn_core::{CrnModel, QueriesPool};
use crn_db::imdb::{generate_imdb, ImdbConfig};
use crn_db::Database;
use crn_exec::label_containment_pairs;
use crn_nn::parallel::ThreadPoolConfig;
use crn_nn::TrainConfig;
use crn_query::generator::{GeneratorConfig, QueryGenerator};
use crn_query::Query;
use std::net::{SocketAddr, TcpListener};
use std::thread::JoinHandle;

/// Deterministic training config: canonical shards + canonical reduction order, so
/// parity assertions are bit-identical whatever `THREADS` the CI matrix sets.
pub fn train_config() -> TrainConfig {
    let mut config = TrainConfig::fast_test();
    config.parallel = ThreadPoolConfig::deterministic(config.parallel.threads.max(1));
    config
}

pub fn trained_crn(db: &Database, seed: u64) -> CrnModel {
    let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
    let pairs = gen.generate_pairs(40, 160);
    let samples = label_containment_pairs(db, &pairs, 4);
    let mut crn = CrnModel::new(db, train_config());
    crn.fit(&samples);
    crn
}

/// An *untrained* (random-init) model.
pub fn untrained_crn(db: &Database) -> CrnModel {
    CrnModel::new(db, train_config())
}

/// An actively harmful model: trained on **inverted** containment rates (the online
/// suite's sabotage shape).  Guaranteed to lose a probe comparison against a properly
/// trained model — the deterministic canary-reject candidate.
pub fn sabotaged_crn(db: &Database, seed: u64) -> CrnModel {
    let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
    let pairs = gen.generate_pairs(40, 160);
    let mut samples = label_containment_pairs(db, &pairs, 4);
    for sample in &mut samples {
        sample.rate = 0.0;
    }
    // Long, patient, high-LR training on the constant-zero labels drives every
    // predicted rate under the serving epsilon: the sabotaged model turns every
    // anchor into an epsilon-filtered miss, so every probe falls back to the flat
    // default estimate -- objectively, decisively worse than any live model.
    let mut config = train_config();
    config.epochs = 60;
    config.patience = None;
    config.learning_rate = 0.01;
    let mut crn = CrnModel::new(db, config);
    crn.fit(&samples);
    crn
}

pub fn workload(db: &Database, seed: u64, count: usize) -> Vec<Query> {
    let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
    let mut queries = gen.generate_queries(count);
    queries.truncate(count);
    queries
}

pub struct Fixture {
    pub db: Database,
    pub pool: QueriesPool,
    pub model: CrnModel,
}

pub fn fixture(seed: u64) -> Fixture {
    let db = generate_imdb(&ImdbConfig::tiny(seed));
    let pool = QueriesPool::generate(&db, 60, 2, seed);
    let model = trained_crn(&db, seed);
    Fixture { db, pool, model }
}

/// Spawns `workers` in-process worker threads, each on its own ephemeral loopback
/// listener.  Returns their addresses (fleet order) and join handles.
pub fn spawn_fleet(workers: usize, threads: usize) -> (Vec<SocketAddr>, Vec<JoinHandle<()>>) {
    let mut addrs = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        addrs.push(listener.local_addr().expect("listener addr"));
        handles.push(spawn_worker(listener, threads));
    }
    (addrs, handles)
}

/// The anchors the canary worker (fleet index 0) owns under `shards` global shards
/// spread over `workers` workers — the pool its mirrored probe traffic is served from.
pub fn canary_owned_pool(pool: &QueriesPool, shards: usize, workers: usize) -> QueriesPool {
    let sharded = crn_core::ShardedPool::from_pool(pool, shards);
    let snapshot = sharded.snapshot();
    let mut owned = QueriesPool::new();
    for shard in (0..shards).filter(|shard| shard % workers == 0) {
        for entry in snapshot.shard_pool(shard).entries() {
            owned.upsert(entry.query.clone(), entry.cardinality);
        }
    }
    owned
}

/// A canary probe set that actually exercises the model: scale-generator queries
/// (structurally unlike the anchors, so containment rates matter) covered by the
/// canary worker's own anchors (no fallback noise for a healthy model) with
/// non-trivial true cardinalities (a fallback-flooded sabotaged model scores the
/// truth itself as its q-error — decisively bad).
pub fn covered_probe(
    db: &Database,
    owned: &QueriesPool,
    seed: u64,
    count: usize,
) -> (Vec<Query>, Vec<u64>) {
    use crn_query::generator::{ScaleGenerator, ScaleGeneratorConfig};
    let truth = crn_exec::Executor::new(db);
    let mut gen = ScaleGenerator::new(
        db,
        ScaleGeneratorConfig {
            seed,
            max_joins: 2,
            eq_bias: 0.7,
        },
    );
    let mut queries = Vec::new();
    let mut truths = Vec::new();
    for query in gen.generate(count * 20) {
        if owned.matching(&query).next().is_none() {
            continue;
        }
        let cardinality = truth.cardinality(&query);
        if cardinality < 8 {
            continue;
        }
        queries.push(query);
        truths.push(cardinality);
        if queries.len() == count {
            break;
        }
    }
    assert!(
        queries.len() >= count / 2,
        "probe generator starved: only {} covered queries",
        queries.len()
    );
    (queries, truths)
}

/// Bitwise equality over estimate slices with a context label.
pub fn assert_bit_identical(actual: &[f64], expected: &[f64], context: &str) {
    assert_eq!(actual.len(), expected.len(), "{context}: length mismatch");
    for (index, (a, e)) in actual.iter().zip(expected).enumerate() {
        assert_eq!(
            a.to_bits(),
            e.to_bits(),
            "{context}: estimate {index} diverged ({a} vs {e})"
        );
    }
}
