//! The wire codec's contracts: lossless encode/decode roundtrips (a proptest over
//! queries, estimate lists and snapshot shard payloads — `f64`s must survive
//! bit-exactly), zero-length batches, oversized-frame rejection, and mid-frame EOF
//! surfacing as an IO error (the coordinator's lost-worker signal).

mod common;

use common::fixture;
use crn_cluster::wire::{
    decode_body, encode, read_message, roundtrip, Assignment, EvalRequest, EvalResponse, Message,
    ProbeResponse, ShardLists, ShardPayload, WireError, MAX_FRAME,
};
use crn_core::{Cnt2CrdConfig, CrnModel, QueriesPool, ShardedPool};
use crn_db::Database;
use crn_query::Query;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The proptest cases share one fixture (building a database + trained model per case
/// would dominate the suite's runtime).
fn shared() -> &'static (Database, QueriesPool, CrnModel, Vec<Query>) {
    static SHARED: OnceLock<(Database, QueriesPool, CrnModel, Vec<Query>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let fx = fixture(31);
        let queries = common::workload(&fx.db, 63, 32);
        (fx.db, fx.pool, fx.model, queries)
    })
}

/// Deterministic xorshift64* stream — the proptest seed fans out into query subsets
/// and adversarially-shaped `f64`s without `Math.random`-style ambient state.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E3779B97F4A7C15);
        self.0 = x;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    /// A finite `f64` with an adversarial spread: subnormals, huge magnitudes,
    /// negative zero, long mantissas — everything the shortest-roundtrip JSON
    /// formatting must carry bit-exactly.
    fn finite_f64(&mut self) -> f64 {
        let value = f64::from_bits(self.next());
        if value.is_finite() {
            value
        } else {
            (self.next() as f64) / ((self.next() | 1) as f64)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn eval_messages_roundtrip_losslessly(seed in 0u64..512) {
        let (_, _, _, queries) = shared();
        let mut rng = Rng(seed);
        let picked: Vec<Query> = (0..(rng.next() as usize % 8))
            .map(|_| queries[rng.next() as usize % queries.len()].clone())
            .collect();

        let request = Message::Eval(EvalRequest {
            model_version: rng.next(),
            queries: picked.clone(),
        });
        let Message::Eval(back) = roundtrip(&request).expect("eval roundtrip") else {
            panic!("wrong message kind back");
        };
        prop_assert_eq!(&back.queries, &picked);

        let lists: Vec<Vec<f64>> = (0..picked.len().max(1))
            .map(|_| (0..(rng.next() as usize % 6)).map(|_| rng.finite_f64()).collect())
            .collect();
        let response = Message::EvalResult(EvalResponse {
            model_version: rng.next(),
            shards: vec![ShardLists { index: rng.next() as usize % 16, lists: lists.clone() }],
        });
        let Message::EvalResult(back) = roundtrip(&response).expect("result roundtrip") else {
            panic!("wrong message kind back");
        };
        prop_assert_eq!(back.shards.len(), 1);
        for (sent, received) in lists.iter().zip(&back.shards[0].lists) {
            prop_assert_eq!(sent.len(), received.len());
            for (a, b) in sent.iter().zip(received) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn shard_payload_assignments_roundtrip_losslessly(seed in 0u64..64) {
        let (_, pool, model, _) = shared();
        let shards = 1 + (seed as usize % 4) * 2;
        let sharded = ShardedPool::from_pool(pool, shards);
        let snapshot = sharded.snapshot();
        let assignment = Message::Assign(Assignment {
            worker_id: seed as usize % 4,
            total_shards: shards,
            model_version: seed,
            config: Cnt2CrdConfig::default(),
            model: model.clone(),
            shards: (0..shards)
                .map(|shard| ShardPayload {
                    index: shard,
                    version: snapshot.shard_version(shard),
                    pool: snapshot.shard_pool(shard),
                })
                .collect(),
        });
        let Message::Assign(back) = roundtrip(&assignment).expect("assign roundtrip") else {
            panic!("wrong message kind back");
        };
        prop_assert_eq!(back.total_shards, shards);
        let mut entries = 0usize;
        for (shard, payload) in back.shards.iter().enumerate() {
            let original = snapshot.shard_pool(shard);
            prop_assert_eq!(payload.pool.len(), original.len());
            for (a, b) in payload.pool.entries().iter().zip(original.entries()) {
                prop_assert_eq!(&a.query, &b.query);
                prop_assert_eq!(a.cardinality, b.cardinality);
            }
            entries += payload.pool.len();
        }
        prop_assert_eq!(entries, pool.len());
    }

    #[test]
    fn probe_medians_roundtrip_bit_exactly(seed in 0u64..256) {
        let mut rng = Rng(seed);
        let message = Message::ProbeResult(ProbeResponse {
            live_median: rng.finite_f64(),
            candidate_median: rng.finite_f64(),
        });
        let Message::ProbeResult(back) = roundtrip(&message).expect("probe roundtrip") else {
            panic!("wrong message kind back");
        };
        let Message::ProbeResult(sent) = message else { unreachable!() };
        prop_assert_eq!(back.live_median.to_bits(), sent.live_median.to_bits());
        prop_assert_eq!(back.candidate_median.to_bits(), sent.candidate_median.to_bits());
    }
}

#[test]
fn zero_length_batches_and_payloadless_frames_roundtrip() {
    let empty = Message::Eval(EvalRequest {
        model_version: 1,
        queries: Vec::new(),
    });
    let Message::Eval(back) = roundtrip(&empty).expect("empty eval") else {
        panic!("wrong kind");
    };
    assert!(back.queries.is_empty());

    for message in [Message::StageAck, Message::SwapAck, Message::Shutdown] {
        let kind = message.kind();
        let back = roundtrip(&message).expect("payloadless roundtrip");
        assert_eq!(back.kind(), kind);
    }
}

#[test]
fn oversized_and_empty_frames_are_rejected_before_allocation() {
    // Length announcing more than MAX_FRAME: rejected from the 4 length bytes alone.
    let mut oversized = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
    oversized.extend_from_slice(&[3u8; 16]);
    let mut cursor = std::io::Cursor::new(oversized);
    match read_message(&mut cursor) {
        Err(WireError::BadLength(len)) => assert_eq!(len, MAX_FRAME + 1),
        other => panic!("oversized frame accepted: {other:?}"),
    }

    // Zero-length frame (no type byte): equally rejected.
    let mut cursor = std::io::Cursor::new(0u32.to_le_bytes().to_vec());
    assert!(matches!(
        read_message(&mut cursor),
        Err(WireError::BadLength(0))
    ));

    // An unknown type byte is a decode error, not a hang or a panic.
    assert!(matches!(
        decode_body(&[200u8]),
        Err(WireError::BadType(200))
    ));
}

#[test]
fn mid_frame_eof_surfaces_as_io_error() {
    // A frame that announces 100 bytes but delivers 10 — the shape of a connection
    // dying mid-frame.  Must resolve to an IO error (the lost-worker signal), never
    // block or mis-decode.
    let mut truncated = 100u32.to_le_bytes().to_vec();
    truncated.extend_from_slice(&[1u8; 10]);
    let mut cursor = std::io::Cursor::new(truncated);
    assert!(matches!(read_message(&mut cursor), Err(WireError::Io(_))));

    // Sanity: a well-formed frame straight from `encode` still parses.
    let frame = encode(&Message::Shutdown).expect("encode");
    let mut cursor = std::io::Cursor::new(frame.as_ref().to_vec());
    assert!(matches!(read_message(&mut cursor), Ok(Message::Shutdown)));
}
