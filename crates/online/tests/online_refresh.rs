//! Integration tests of the continual-learning refresh loop: healthy traffic never
//! refreshes, data drift triggers a gated refresh and hot swap through the full
//! runtime → maintenance lane → controller channel, harmful candidates are discarded by
//! the validation gate, and the background worker drives cycles on its own.

use crn_core::{CrnModel, EstimatorService, QueriesPool, ShardedPool};
use crn_db::imdb::{generate_imdb, ImdbConfig};
use crn_db::Database;
use crn_exec::{label_containment_pairs, ContainmentSample, Executor};
use crn_nn::parallel::{ThreadPoolConfig, WorkerPool};
use crn_nn::TrainConfig;
use crn_online::{
    ExecLabeler, FeedbackLabeler, FeedbackRecord, OnlineConfig, RefreshController, RefreshDecision,
    RefreshWorker,
};
use crn_query::generator::{GeneratorConfig, QueryGenerator, ScaleGenerator, ScaleGeneratorConfig};
use crn_query::Query;
use crn_serve::{FeedbackObserver, RuntimeConfig, ServeRuntime};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic training config: canonical shards + canonical reduction order, so the
/// tests' numerics are bit-identical whatever `THREADS` the CI matrix sets.
fn train_config() -> TrainConfig {
    let mut config = TrainConfig::fast_test();
    config.parallel = ThreadPoolConfig::deterministic(config.parallel.threads.max(1));
    config
}

fn trained_crn(db: &Database, seed: u64) -> CrnModel {
    let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
    let pairs = gen.generate_pairs(40, 160);
    let samples = label_containment_pairs(db, &pairs, 4);
    let mut crn = CrnModel::new(db, train_config());
    crn.fit(&samples);
    crn
}

fn workload(db: &Database, seed: u64, count: usize) -> Vec<Query> {
    let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
    let mut queries = gen.generate_queries(count);
    queries.truncate(count);
    queries
}

/// The shared fixture: a service whose model trained on the paper-generator workload
/// (perturbation-cluster queries with range-leaning predicates, the distribution both
/// the training pairs and the pool come from).
struct Fixture {
    db: Database,
    pool: QueriesPool,
    service: Arc<EstimatorService<CrnModel>>,
}

fn fixture(seed: u64) -> Fixture {
    let db = generate_imdb(&ImdbConfig::tiny(seed));
    let pool = QueriesPool::generate(&db, 60, 2, seed);
    let crn = trained_crn(&db, seed);
    let service = Arc::new(EstimatorService::new(
        crn,
        ShardedPool::from_pool(&pool, 4),
        WorkerPool::shared(2),
    ));
    Fixture { db, pool, service }
}

/// The *shifted* traffic: MSCN-style scale-generator queries — equality-biased
/// predicates with literals drawn from actual rows, no perturbation clusters — a query
/// distribution the fixture model never trained on (the covariate shift the online
/// refresh is for).  Filtered to pool-covered FROM clauses: only pool-served queries
/// exercise the model's containment rates.
fn shifted_workload(db: &Database, pool: &QueriesPool, seed: u64, count: usize) -> Vec<Query> {
    let mut gen = ScaleGenerator::new(
        db,
        ScaleGeneratorConfig {
            seed,
            max_joins: 2,
            eq_bias: 0.7,
        },
    );
    gen.generate(count * 4)
        .into_iter()
        .filter(|q| pool.matching(q).next().is_some())
        .take(count)
        .collect()
}

/// Healthy traffic (the live estimates themselves fed back as "truth") keeps the drift
/// window quiet: no refresh ever triggers, the model version never moves.
#[test]
fn healthy_feedback_never_triggers_a_refresh() {
    let fx = fixture(120);
    let controller = RefreshController::new(
        Arc::clone(&fx.service),
        Box::new(ExecLabeler::new(Arc::new(fx.db.clone()), 2)),
        OnlineConfig {
            drift_threshold: 2.0,
            min_observations: 8,
            min_fresh: 8,
            ..OnlineConfig::default()
        },
    );
    for query in workload(&fx.db, 121, 40) {
        let estimate = fx.service.estimate_one(&query);
        // Feedback where the observation matches the estimate: q-error 1.0.
        controller.record(FeedbackRecord {
            query,
            true_cardinality: estimate.max(1.0).round() as u64,
            estimate,
        });
    }
    assert!(
        controller.refresh_if_needed().is_none(),
        "no drift, no cycle"
    );
    let stats = controller.stats();
    assert_eq!(stats.refreshes_attempted, 0);
    assert_eq!(stats.live_model_version, 1);
    assert!(stats.feedback_seen >= 40);
    assert!(stats.probe_routed > 0, "probe routing is always on");
    assert!(
        stats.window_median < 1.5,
        "healthy traffic keeps the window median near 1: {}",
        stats.window_median
    );
    assert_eq!(fx.service.model_version(), 1);
}

/// The full loop end to end: serving runtime → maintenance lane (pool upserts + the
/// observer channel) → drift detection → gated fine-tune → hot swap.  After the swap,
/// the served model version moved and the gate invariant held (candidate strictly
/// better on the held-out probe set).
#[test]
fn workload_shift_triggers_a_gated_refresh_through_the_runtime() {
    let fx = fixture(130);
    let controller = Arc::new(RefreshController::new(
        Arc::clone(&fx.service),
        // Labels by execution on the live database — the same ground-truth source the
        // feedback itself came from.
        Box::new(ExecLabeler::new(Arc::new(fx.db.clone()), 2)),
        OnlineConfig {
            drift_window: 32,
            drift_threshold: 1.5,
            min_observations: 12,
            min_fresh: 12,
            probe_fraction: 0.25,
            min_probe: 3,
            fine_tune_epochs: 6,
            ..OnlineConfig::default()
        },
    ));
    let runtime = ServeRuntime::new(
        Arc::clone(&fx.service),
        RuntimeConfig::default().with_window_us(100),
    );
    runtime.set_feedback_observer(Arc::clone(&controller) as Arc<dyn crn_serve::FeedbackObserver>);

    // The traffic shifts to a distribution the model never trained on.
    let truth = Executor::new(&fx.db);
    let queries = shifted_workload(&fx.db, &fx.pool, 131, 40);
    assert!(queries.len() >= 20, "fixture needs pool-covered queries");
    for query in &queries {
        let estimate = runtime
            .submit_retrying(0, query)
            .expect("runtime alive")
            .wait()
            .expect("served")
            .estimate;
        runtime
            .record_observed(query.clone(), truth.cardinality(query), estimate)
            .expect("maintenance admits");
    }
    runtime.flush();
    let pre_stats = controller.stats();
    assert!(pre_stats.feedback_seen >= queries.len() as u64);
    assert!(
        pre_stats.window_median > 1.5,
        "the shifted workload must inflate the window median: {}",
        pre_stats.window_median
    );

    let outcome = controller
        .refresh_if_needed()
        .expect("drift + fresh data must trigger a cycle");
    assert!(outcome.gate_respected(), "the gate invariant is absolute");
    assert!(outcome.labeled_pairs > 0);
    assert!(outcome.probe_records >= 3);
    assert_eq!(
        outcome.decision,
        RefreshDecision::Applied,
        "fine-tuning on the shifted workload's labels must beat the stale model on the \
         probe set (live {} vs candidate {})",
        outcome.live_probe_median,
        outcome.candidate_probe_median
    );
    assert!(outcome.candidate_probe_median < outcome.live_probe_median);
    assert_eq!(fx.service.model_version(), outcome.model_version);
    assert!(outcome.model_version > 1, "the swap bumped the version");
    let stats = controller.stats();
    assert_eq!(stats.refreshes_applied, 1);
    assert_eq!(stats.refreshes_rejected, 0);

    // Serving continues seamlessly on the new snapshot (and the next cycle needs fresh
    // drift evidence — the window was reset).
    for query in queries.iter().take(4) {
        let outcome = runtime
            .submit_retrying(1, query)
            .expect("runtime alive")
            .wait()
            .expect("served");
        assert!(outcome.estimate >= 0.0);
    }
    assert!(controller.refresh_if_needed().is_none());
    runtime.shutdown();
}

/// The validation gate: a sabotaged fine-tune (labels inverted, so the candidate gets
/// *worse*) is discarded and counted — the live model and its estimates stay exactly as
/// they were.  No silent regressions reach serving.
#[test]
fn gate_discards_harmful_candidates() {
    /// A labeler that inverts every true containment rate — actively harmful training.
    struct SabotageLabeler(ExecLabeler);
    impl FeedbackLabeler for SabotageLabeler {
        fn label(
            &self,
            fresh: &[FeedbackRecord],
            anchors: &QueriesPool,
            budget: usize,
        ) -> Vec<ContainmentSample> {
            self.0
                .label(fresh, anchors, budget)
                .into_iter()
                .map(|mut sample| {
                    sample.rate = 1.0 - sample.rate;
                    sample
                })
                .collect()
        }
    }

    let fx = fixture(140);
    let controller = RefreshController::new(
        Arc::clone(&fx.service),
        Box::new(SabotageLabeler(ExecLabeler::new(
            Arc::new(fx.db.clone()),
            2,
        ))),
        OnlineConfig {
            drift_threshold: 1.2,
            min_observations: 8,
            min_fresh: 8,
            min_probe: 3,
            // Full-rate, long fine-tune: the inverted labels must genuinely damage the
            // candidate so the test exercises the gate's reject path, not noise.
            fine_tune_epochs: 12,
            learning_rate_scale: 1.0,
            ..OnlineConfig::default()
        },
    );
    let truth = Executor::new(&fx.db);
    let queries = shifted_workload(&fx.db, &fx.pool, 141, 32);
    assert!(queries.len() >= 16, "fixture needs pool-covered queries");
    for query in &queries {
        // What the maintenance lane would do: the pool learns the observed truths.
        let estimate = fx.service.estimate_one(query);
        let cardinality = truth.cardinality(query);
        fx.service.pool().upsert(query.clone(), cardinality);
        controller.observe(query, cardinality, estimate);
    }
    let before: Vec<f64> = queries.iter().map(|q| fx.service.estimate_one(q)).collect();
    let outcome = controller.refresh_if_needed().expect("drift must trigger");
    assert_eq!(
        outcome.decision,
        RefreshDecision::RejectedByGate,
        "inverted labels must lose to the live model (live {} vs candidate {})",
        outcome.live_probe_median,
        outcome.candidate_probe_median
    );
    assert!(outcome.gate_respected());
    assert_eq!(fx.service.model_version(), 1, "no swap happened");
    let after: Vec<f64> = queries.iter().map(|q| fx.service.estimate_one(q)).collect();
    assert_eq!(
        before, after,
        "serving is bit-identical to before the attempt"
    );
    let stats = controller.stats();
    assert_eq!(stats.refreshes_rejected, 1);
    assert_eq!(stats.refreshes_applied, 0);
}

/// The background trainer: the [`RefreshWorker`] thread picks up the trigger on its own
/// and hot-swaps without any driver pacing.
#[test]
fn refresh_worker_applies_refreshes_in_the_background() {
    let fx = fixture(150);
    let controller = Arc::new(RefreshController::new(
        Arc::clone(&fx.service),
        Box::new(ExecLabeler::new(Arc::new(fx.db.clone()), 2)),
        OnlineConfig {
            drift_threshold: 1.5,
            min_observations: 12,
            min_fresh: 12,
            min_probe: 3,
            fine_tune_epochs: 6,
            ..OnlineConfig::default()
        },
    ));
    let worker = RefreshWorker::spawn(Arc::clone(&controller), Duration::from_millis(20));
    let truth = Executor::new(&fx.db);
    // The worker claims cycles on its own schedule: it may grab a thin early cycle
    // (gate-rejected) or a well-fed one (applied) depending on interleaving.  What this
    // test pins is the *autonomy* and the gate bookkeeping — cycles run with no driver
    // pacing, and whatever they decide is accounted coherently.  (The driver-paced test
    // above pins the Applied outcome deterministically.)  Keep streaming fresh shifted
    // traffic until the worker has completed cycles.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let mut seed = 151u64;
    loop {
        let stats = controller.stats();
        if stats.refreshes_applied >= 1 || stats.refreshes_attempted >= 3 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker never completed a cycle: {stats:?}"
        );
        for query in shifted_workload(&fx.db, &fx.pool, seed, 40) {
            let estimate = fx.service.estimate_one(&query);
            let cardinality = truth.cardinality(&query);
            // What the maintenance lane would do: the pool learns the observed truths.
            fx.service.pool().upsert(query.clone(), cardinality);
            controller.record(FeedbackRecord {
                true_cardinality: cardinality,
                estimate,
                query,
            });
        }
        seed += 1;
        std::thread::sleep(Duration::from_millis(30));
    }
    worker.stop();
    let stats = controller.stats();
    assert!(
        stats.refreshes_attempted >= 1,
        "the worker ran cycles: {stats:?}"
    );
    assert_eq!(
        stats.refreshes_applied + stats.refreshes_rejected + stats.refreshes_without_pairs,
        stats.refreshes_attempted,
        "every cycle is accounted: {stats:?}"
    );
    assert_eq!(stats.live_model_version, fx.service.model_version());
    if stats.refreshes_applied > 0 {
        assert!(fx.service.model_version() > 1, "applied cycles hot-swapped");
    } else {
        assert_eq!(fx.service.model_version(), 1, "rejected cycles never swap");
    }
}

/// Replay seeding (`OnlineConfig::seed_replay` + `seed_replay_from`): with the reservoir
/// seeded from the original training corpus at startup, the very FIRST fine-tune cycle
/// already mixes seeded history into its corpus — unseeded controllers provably replay
/// nothing on their first cycle (the reservoir banks labels only *after* sampling).
#[test]
fn first_fine_tune_mixes_replay_seeded_from_the_training_corpus() {
    let config = OnlineConfig {
        drift_window: 32,
        drift_threshold: 1.5,
        min_observations: 12,
        min_fresh: 12,
        probe_fraction: 0.25,
        min_probe: 3,
        fine_tune_epochs: 2,
        replay_fraction: 0.5,
        seed_replay: 64,
        ..OnlineConfig::default()
    };

    // The original training corpus — exactly what `trained_crn` fits on.
    let fx = fixture(150);
    let corpus = {
        let mut gen = QueryGenerator::new(&fx.db, GeneratorConfig::paper(150));
        let pairs = gen.generate_pairs(40, 160);
        label_containment_pairs(&fx.db, &pairs, 4)
    };
    assert!(corpus.len() > 8, "fixture needs a real corpus");

    let drive_first_cycle = |controller: &RefreshController| {
        let truth = Executor::new(&fx.db);
        for query in shifted_workload(&fx.db, &fx.pool, 151, 40) {
            let estimate = fx.service.estimate_one(&query);
            controller.record(FeedbackRecord {
                query: query.clone(),
                true_cardinality: truth.cardinality(&query),
                estimate,
            });
        }
        controller
            .refresh_if_needed()
            .expect("drift + fresh data must trigger a cycle")
    };

    // Unseeded control: the first cycle has no history to draw.
    let unseeded = RefreshController::new(
        Arc::clone(&fx.service),
        Box::new(ExecLabeler::new(Arc::new(fx.db.clone()), 2)),
        OnlineConfig {
            seed_replay: 0,
            ..config.clone()
        },
    );
    let outcome = drive_first_cycle(&unseeded);
    assert!(outcome.labeled_pairs > 0);
    assert_eq!(
        outcome.replayed, 0,
        "an unseeded reservoir is empty at the first cycle"
    );

    // Seeded: same traffic, same knobs — but the reservoir starts with original-corpus
    // history, so the first fine-tune's mix already replays.
    let fx2 = fixture(150);
    let seeded = RefreshController::new(
        Arc::clone(&fx2.service),
        Box::new(ExecLabeler::new(Arc::new(fx2.db.clone()), 2)),
        config.clone(),
    );
    let pushed = seeded.seed_replay_from(&corpus);
    assert_eq!(pushed, corpus.len().min(config.seed_replay));
    let outcome = drive_first_cycle(&seeded);
    assert!(outcome.labeled_pairs > 0);
    assert!(
        outcome.replayed > 0,
        "the seeded reservoir must contribute history to the first fine-tune \
         (labeled {} pairs, replayed {})",
        outcome.labeled_pairs,
        outcome.replayed
    );
}
