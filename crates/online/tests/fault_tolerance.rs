//! Fault-tolerance tests of the online subsystem: the relative validation-gate margin,
//! crash-safe checkpoint round-trips (bit-identical restore, corruption detection,
//! sequence/cleanup discipline) and supervised refresh-worker recovery.

use crn_core::{Cnt2Crd, CrnModel, EstimatorService, QueriesPool, ShardedPool};
use crn_db::imdb::{generate_imdb, ImdbConfig};
use crn_db::Database;
use crn_exec::{label_containment_pairs, Executor};
use crn_nn::parallel::{ThreadPoolConfig, WorkerPool};
use crn_nn::TrainConfig;
use crn_online::{
    Checkpoint, CheckpointError, ExecLabeler, OnlineConfig, RefreshController, RefreshDecision,
    RefreshWorker,
};
use crn_query::generator::{GeneratorConfig, QueryGenerator, ScaleGenerator, ScaleGeneratorConfig};
use crn_query::Query;
use crn_serve::{
    FaultInjector, FaultPlan, FeedbackObserver, Supervisor, SupervisorPolicy, LANE_REFRESH,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic training config: canonical shards + canonical reduction order, so two
/// identically-seeded fixtures are bit-identical whatever `THREADS` the CI matrix sets.
fn train_config() -> TrainConfig {
    let mut config = TrainConfig::fast_test();
    config.parallel = ThreadPoolConfig::deterministic(config.parallel.threads.max(1));
    config
}

fn trained_crn(db: &Database, seed: u64) -> CrnModel {
    let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
    let pairs = gen.generate_pairs(40, 160);
    let samples = label_containment_pairs(db, &pairs, 4);
    let mut crn = CrnModel::new(db, train_config());
    crn.fit(&samples);
    crn
}

struct Fixture {
    db: Database,
    pool: QueriesPool,
    service: Arc<EstimatorService<CrnModel>>,
}

fn fixture(seed: u64) -> Fixture {
    let db = generate_imdb(&ImdbConfig::tiny(seed));
    let pool = QueriesPool::generate(&db, 60, 2, seed);
    let crn = trained_crn(&db, seed);
    let service = Arc::new(EstimatorService::new(
        crn,
        ShardedPool::from_pool(&pool, 4),
        WorkerPool::shared(2),
    ));
    Fixture { db, pool, service }
}

/// Shifted (drift-inducing) traffic, filtered to pool-covered FROM clauses.
fn shifted_workload(db: &Database, pool: &QueriesPool, seed: u64, count: usize) -> Vec<Query> {
    let mut gen = ScaleGenerator::new(
        db,
        ScaleGeneratorConfig {
            seed,
            max_joins: 2,
            eq_bias: 0.7,
        },
    );
    gen.generate(count * 4)
        .into_iter()
        .filter(|q| pool.matching(q).next().is_some())
        .take(count)
        .collect()
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crn_ft_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn margin_config(gate_margin: f64) -> OnlineConfig {
    OnlineConfig {
        drift_window: 32,
        drift_threshold: 1.5,
        min_observations: 12,
        min_fresh: 12,
        probe_fraction: 0.25,
        min_probe: 3,
        fine_tune_epochs: 6,
        gate_margin,
        ..OnlineConfig::default()
    }
}

/// Feeds the deterministic drift stream into a controller (what the maintenance lane's
/// observer channel would deliver), upserting the observed truths into the pool, until
/// the drift window trips the threshold.  Fully deterministic: the same starting seed
/// always produces the same feed sequence.
fn feed_drift(fx: &Fixture, controller: &RefreshController, start_seed: u64) {
    let truth = Executor::new(&fx.db);
    for seed in start_seed..start_seed + 5 {
        let queries = shifted_workload(&fx.db, &fx.pool, seed, 40);
        assert!(queries.len() >= 20, "fixture needs pool-covered queries");
        for query in &queries {
            let estimate = fx.service.estimate_one(query);
            let cardinality = truth.cardinality(query);
            fx.service.pool().upsert(query.clone(), cardinality);
            controller.observe(query, cardinality, estimate);
        }
        if controller.stats().window_median > 1.5 {
            return;
        }
    }
    panic!(
        "shifted traffic never inflated the drift window: median {}",
        controller.stats().window_median
    );
}

/// The noisy-probe regression of the relative gate margin: a candidate that beats the
/// live model — but not by the configured margin — is rejected, where the identical
/// candidate under margin 0 was applied.  Run 1 (margin 0) measures the deterministic
/// candidate/live probe medians; run 2 reruns the bit-identical cycle with a margin
/// chosen to put exactly that improvement inside the noise band.
#[test]
fn gate_margin_rejects_candidates_inside_the_noise_band() {
    // Run 1 — margin 0: the strict-improvement gate applies the candidate.
    let fx = fixture(130);
    let controller = RefreshController::new(
        Arc::clone(&fx.service),
        Box::new(ExecLabeler::new(Arc::new(fx.db.clone()), 2)),
        margin_config(0.0),
    );
    feed_drift(&fx, &controller, 131);
    let outcome = controller.refresh_if_needed().expect("drift must trigger");
    assert_eq!(outcome.decision, RefreshDecision::Applied);
    assert_eq!(outcome.gate_margin, 0.0);
    assert!(outcome.gate_respected());
    assert!(outcome.candidate_probe_median < outcome.live_probe_median);

    // Run 2 — an identically-seeded fixture produces the identical cycle (deterministic
    // training + labeling + probe routing), but the margin demands the candidate beat
    // the live model by twice its actual improvement: same candidate, now "noise".
    let margin = 1.0 - (outcome.candidate_probe_median / outcome.live_probe_median) / 2.0;
    let fx2 = fixture(130);
    let strict = RefreshController::new(
        Arc::clone(&fx2.service),
        Box::new(ExecLabeler::new(Arc::new(fx2.db.clone()), 2)),
        margin_config(margin),
    );
    feed_drift(&fx2, &strict, 131);
    let rejected = strict.refresh_if_needed().expect("drift must trigger");
    assert_eq!(
        rejected.decision,
        RefreshDecision::RejectedByGate,
        "candidate {} vs live {} must fall inside the {margin:.3} margin",
        rejected.candidate_probe_median,
        rejected.live_probe_median
    );
    assert_eq!(rejected.gate_margin, margin);
    assert!(rejected.gate_respected());
    // The rejected cycle's medians are the applied cycle's medians — only the bar moved.
    assert_eq!(
        rejected.candidate_probe_median,
        outcome.candidate_probe_median
    );
    assert_eq!(rejected.live_probe_median, outcome.live_probe_median);
    assert_eq!(fx2.service.model_version(), 1, "no swap under the margin");
    let stats = strict.stats();
    assert_eq!(stats.refreshes_rejected, 1);
    assert_eq!(stats.refreshes_applied, 0);
}

/// The checkpoint round-trip: pool + model + controller state through JSON and back is
/// **bit-identical** — restored estimates match the source service exactly, and the
/// controller's durable state (counters, optimizer step, probe-routing position)
/// survives unchanged.
#[test]
fn checkpoint_round_trip_is_bit_identical() {
    let dir = test_dir("roundtrip");
    let fx = fixture(170);
    let controller = RefreshController::new(
        Arc::clone(&fx.service),
        Box::new(ExecLabeler::new(Arc::new(fx.db.clone()), 2)),
        margin_config(0.0),
    );
    // Move every piece of durable state off its defaults before capturing.
    feed_drift(&fx, &controller, 171);

    let checkpoint = Checkpoint::capture(&fx.service, Some(&controller));
    let manifest = checkpoint.write_atomic(&dir).expect("checkpoint commits");
    assert_eq!(manifest.sequence, 1);
    assert_eq!(manifest.model_version, fx.service.model_version());

    let (restored, loaded_manifest) = Checkpoint::load(&dir).expect("checkpoint loads");
    assert_eq!(loaded_manifest, manifest);
    assert_eq!(restored.pool.len(), fx.service.pool().len());

    // Serving over the restored state is bit-identical to the live service.
    let restored_estimator = Cnt2Crd::new(restored.model, restored.pool);
    let reference = Cnt2Crd::new((*fx.service.model()).clone(), fx.service.pool().to_pool());
    let mut gen = QueryGenerator::new(&fx.db, GeneratorConfig::paper(172));
    for query in gen.generate_queries(20) {
        use crn_estimators::CardinalityEstimator;
        let a = restored_estimator.estimate(&query);
        let b = reference.estimate(&query);
        assert!(a == b, "restored {a} vs live {b} must be bit-identical");
    }

    // The controller's durable state round-trips exactly.
    let online_state = restored.online.expect("controller state captured");
    let fresh_controller = RefreshController::new(
        Arc::clone(&fx.service),
        Box::new(ExecLabeler::new(Arc::new(fx.db.clone()), 2)),
        margin_config(0.0),
    );
    fresh_controller.restore_state(online_state.clone());
    assert_eq!(fresh_controller.checkpoint_state(), online_state);
    assert_eq!(
        fresh_controller.stats().feedback_seen,
        controller.stats().feedback_seen
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The corruption tripwires: an empty directory reports `Missing`, a flipped payload
/// byte reports `Corrupt` (never deserializes garbage into a live pool), and a
/// recommitted checkpoint bumps the sequence and cleans the stale payload up.
#[test]
fn checkpoint_detects_corruption_and_advances_sequences() {
    let dir = test_dir("corrupt");
    assert!(matches!(
        Checkpoint::load(&dir),
        Err(CheckpointError::Missing)
    ));

    let fx = fixture(180);
    let checkpoint = Checkpoint::capture(&fx.service, None);
    let manifest = checkpoint.write_atomic(&dir).expect("commit 1");
    assert_eq!(manifest.sequence, 1);

    // Flip one payload byte: the checksum must catch it at load time.
    let payload_path = dir.join(&manifest.payload);
    let mut bytes = std::fs::read(&payload_path).expect("payload on disk");
    let middle = bytes.len() / 2;
    bytes[middle] ^= 0x20;
    std::fs::write(&payload_path, &bytes).expect("corrupt payload");
    match Checkpoint::load(&dir) {
        Err(CheckpointError::Corrupt { expected, actual }) => assert_ne!(expected, actual),
        other => panic!("corrupted payload must fail the checksum, got {other:?}"),
    }

    // A fresh commit supersedes the corrupt one: sequence advances, the stale payload
    // is cleaned up, and loads work again.
    let manifest2 = checkpoint.write_atomic(&dir).expect("commit 2");
    assert_eq!(manifest2.sequence, 2);
    assert_ne!(manifest2.payload, manifest.payload);
    assert!(
        !payload_path.exists(),
        "stale payload cleaned up post-commit"
    );
    let (_, loaded) = Checkpoint::load(&dir).expect("recommitted checkpoint loads");
    assert_eq!(loaded, manifest2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Supervised refresh-worker recovery: a worker whose every cycle panics (injected
/// `refresh-panic:every1`) is restarted by the supervisor up to its budget, then the
/// lane degrades — the thread exits cleanly, the controller is left unpoisoned, and no
/// half-finished refresh ever reached serving.
#[test]
fn supervised_refresh_worker_restarts_then_degrades() {
    let fx = fixture(130);
    let controller = Arc::new(RefreshController::new(
        Arc::clone(&fx.service),
        Box::new(ExecLabeler::new(Arc::new(fx.db.clone()), 2)),
        margin_config(0.0),
    ));
    // Drift + fresh data: the trigger condition holds permanently, so every restarted
    // incarnation immediately re-enters the panicking cycle.
    feed_drift(&fx, &controller, 131);

    let supervisor = Arc::new(Supervisor::new(
        SupervisorPolicy::default().with_max_restarts(1),
    ));
    let injector = FaultInjector::new(FaultPlan::parse("refresh-panic:every1").expect("plan"));
    let worker = RefreshWorker::spawn_supervised(
        Arc::clone(&controller),
        Duration::from_millis(5),
        Arc::clone(&supervisor),
        Arc::clone(&injector),
    );

    // Budget 1: panic #1 restarts the lane, panic #2 degrades it and the thread exits.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !supervisor.degraded(LANE_REFRESH) {
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never degraded the refresh lane: {} panics",
            supervisor.panics(LANE_REFRESH)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    worker.stop();

    assert_eq!(supervisor.restarts(LANE_REFRESH), 1, "budget of 1 restart");
    assert!(supervisor.panics(LANE_REFRESH) >= 2);
    assert_eq!(injector.arrivals(crn_serve::FaultSite::RefreshCycle), 2);
    assert_eq!(
        fx.service.model_version(),
        1,
        "no half-finished refresh reached serving"
    );
    // The controller survived the panics unpoisoned: a driver-paced cycle still runs.
    let outcome = controller.refresh_if_needed();
    assert!(
        outcome.is_some(),
        "controller still serviceable after chaos"
    );
}
