//! Crash-safe checkpoints: atomically persisted serving state with corruption detection.
//!
//! A long-lived serving process accumulates state that exists nowhere else: the pool
//! entries the maintenance lane upserted, the refreshed model versions the validation
//! gate admitted, and the optimizer trajectory behind them.  A crash without checkpoints
//! silently rolls all of it back to the binary's startup artifacts.  This module
//! persists the full online serving state — pool + model + controller — such that a
//! restore is **bit-identical**: a process restored from a checkpoint serves exactly the
//! estimates (and fine-tunes exactly the parameters) the uninterrupted process would
//! have (pinned by the crash-restore chaos demo in `crn-eval`).
//!
//! Crash-safety is the classic two-phase rename protocol, built on nothing but
//! `std::fs` (the rename is the commit point on every POSIX filesystem):
//!
//! 1. the versioned payload (`checkpoint-<seq>.json`) is written to a temp file in the
//!    same directory, then renamed into place;
//! 2. the [`Manifest`] (`MANIFEST.json`) — naming the payload, its FNV-1a checksum and
//!    sequence number — is written the same way, *after* the payload rename.
//!
//! A crash at any point leaves either the old manifest pointing at the old (intact)
//! payload, or the new manifest pointing at the new (fully renamed) payload — never a
//! manifest naming a half-written file.  A torn or bit-rotted payload is caught at load
//! time by the checksum ([`CheckpointError::Corrupt`]) instead of deserializing garbage
//! into a live pool.
//!
//! The serving integration is [`CheckpointSink`], the `crn-serve`
//! [`CheckpointWriter`](crn_serve::CheckpointWriter) implementation the maintenance
//! lane invokes on its configured cadence.

use crate::controller::{ControllerCheckpoint, RefreshController};
use crn_core::{CrnModel, EstimatorService, QueriesPool};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The on-disk format version (bumped on incompatible layout changes; loads of a
/// different version fail with [`CheckpointError::FormatVersion`] instead of
/// misinterpreting the payload).
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// One full serving-state checkpoint: everything a restore needs for bit-identical
/// serving and training continuation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The writing process's [`CHECKPOINT_FORMAT_VERSION`].
    pub format_version: u32,
    /// The live model version at capture time (restored processes resume their version
    /// counter from here in spirit; the service itself restarts at 1 and the manifest
    /// records the provenance).
    pub model_version: u64,
    /// The live model — parameters *including* Adam moments (they live inside
    /// [`crn_nn::Param`]), so restored fine-tunes continue the optimizer trajectory.
    pub model: CrnModel,
    /// The flattened queries pool (shard-count-agnostic, like
    /// [`ShardedPool::save`](crn_core::ShardedPool::save): sharding is a runtime
    /// serving decision, not a storage property).
    pub pool: QueriesPool,
    /// The refresh controller's durable state, when the process runs one.
    pub online: Option<ControllerCheckpoint>,
}

/// The commit record: names the current payload and carries its checksum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// The writing process's [`CHECKPOINT_FORMAT_VERSION`].
    pub format_version: u32,
    /// File name (within the checkpoint directory) of the committed payload.
    pub payload: String,
    /// FNV-1a checksum of the payload file's exact bytes.
    pub checksum: u64,
    /// The checkpointed model version (surfaced here so operators can see what a
    /// directory holds without parsing the multi-megabyte payload).
    pub model_version: u64,
    /// Monotonic checkpoint sequence number within this directory.
    pub sequence: u64,
}

/// The manifest's file name within a checkpoint directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// (De)serialization failure.
    Serde(serde_json::Error),
    /// The payload's bytes do not match the manifest's checksum (torn write, bit rot,
    /// or manual tampering) — the checkpoint must not be loaded.
    Corrupt {
        /// The checksum the manifest committed.
        expected: u64,
        /// The checksum of the bytes actually on disk.
        actual: u64,
    },
    /// The directory's checkpoint was written by an incompatible format version.
    FormatVersion(u32),
    /// The directory holds no committed checkpoint (no manifest).
    Missing,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Serde(e) => write!(f, "checkpoint serialization error: {e}"),
            CheckpointError::Corrupt { expected, actual } => write!(
                f,
                "checkpoint payload corrupt: manifest checksum {expected:#018x}, on-disk {actual:#018x}"
            ),
            CheckpointError::FormatVersion(version) => write!(
                f,
                "checkpoint format version {version} is not the supported {CHECKPOINT_FORMAT_VERSION}"
            ),
            CheckpointError::Missing => write!(f, "no committed checkpoint (missing manifest)"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Serde(e)
    }
}

/// FNV-1a over the payload bytes: not cryptographic (nothing here defends against an
/// adversary) but catches the failure modes checkpoints actually meet — torn writes,
/// truncation, bit rot — with zero dependencies and one multiply per byte.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Writes `bytes` to `path` atomically: temp file in the same directory (same
/// filesystem, so the rename cannot degrade to copy+delete), then rename.
fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

impl Checkpoint {
    /// Captures the current serving state: the flattened pool and live model from the
    /// service, plus the controller's durable state when one is attached.  The capture
    /// is *not* a single atomic cut across pool and model — each is individually
    /// consistent (snapshot semantics) and a maintenance-lane caller (the cadence hook)
    /// runs between upserts, which is the consistency point that matters.
    pub fn capture(
        service: &EstimatorService<CrnModel>,
        controller: Option<&RefreshController>,
    ) -> Self {
        Checkpoint {
            format_version: CHECKPOINT_FORMAT_VERSION,
            model_version: service.model_version(),
            model: (*service.model()).clone(),
            pool: service.pool().to_pool(),
            online: controller.map(|controller| controller.checkpoint_state()),
        }
    }

    /// Persists this checkpoint into `dir` under the two-phase rename protocol (see the
    /// [module docs](self)), returning the committed [`Manifest`].  Older payload files
    /// are cleaned up best-effort *after* the commit point.
    pub fn write_atomic(&self, dir: impl AsRef<Path>) -> Result<Manifest, CheckpointError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let sequence = match load_manifest(dir) {
            Ok(previous) => previous.sequence + 1,
            Err(_) => 1,
        };
        let payload_name = format!("checkpoint-{sequence}.json");
        let payload = serde_json::to_string(self)?;
        let checksum = fnv1a(payload.as_bytes());
        // Phase 1: the payload lands under its final name, fully written.
        write_atomic_bytes(&dir.join(&payload_name), payload.as_bytes())?;
        // Phase 2: the manifest rename is the commit point.
        let manifest = Manifest {
            format_version: CHECKPOINT_FORMAT_VERSION,
            payload: payload_name.clone(),
            checksum,
            model_version: self.model_version,
            sequence,
        };
        write_atomic_bytes(
            &dir.join(MANIFEST_NAME),
            serde_json::to_string(&manifest)?.as_bytes(),
        )?;
        // Committed: previous payloads (and stray temp files) are garbage now.
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let stale = (name.starts_with("checkpoint-") && name != payload_name)
                    || name.ends_with(".tmp");
                if stale {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(manifest)
    }

    /// Loads the committed checkpoint from `dir`, verifying the manifest's checksum
    /// against the payload bytes before deserializing anything into a live process.
    pub fn load(dir: impl AsRef<Path>) -> Result<(Checkpoint, Manifest), CheckpointError> {
        let dir = dir.as_ref();
        let manifest = load_manifest(dir)?;
        if manifest.format_version != CHECKPOINT_FORMAT_VERSION {
            return Err(CheckpointError::FormatVersion(manifest.format_version));
        }
        let payload = std::fs::read(dir.join(&manifest.payload)).map_err(CheckpointError::Io)?;
        let actual = fnv1a(&payload);
        if actual != manifest.checksum {
            return Err(CheckpointError::Corrupt {
                expected: manifest.checksum,
                actual,
            });
        }
        let text = String::from_utf8(payload).map_err(|e| {
            CheckpointError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e))
        })?;
        let checkpoint: Checkpoint = serde_json::from_str(&text)?;
        if checkpoint.format_version != CHECKPOINT_FORMAT_VERSION {
            return Err(CheckpointError::FormatVersion(checkpoint.format_version));
        }
        Ok((checkpoint, manifest))
    }
}

fn load_manifest(dir: &Path) -> Result<Manifest, CheckpointError> {
    let path = dir.join(MANIFEST_NAME);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(CheckpointError::Missing),
        Err(e) => return Err(CheckpointError::Io(e)),
    };
    Ok(serde_json::from_str(&text)?)
}

/// The serving-side persistence hook: captures and writes a [`Checkpoint`] whenever the
/// maintenance lane's cadence fires (`crn-serve`'s
/// [`CheckpointWriter`](crn_serve::CheckpointWriter)).
pub struct CheckpointSink {
    service: Arc<EstimatorService<CrnModel>>,
    controller: Option<Arc<RefreshController>>,
    dir: PathBuf,
}

impl CheckpointSink {
    /// A sink capturing the service's pool + model into `dir`.
    pub fn new(service: Arc<EstimatorService<CrnModel>>, dir: impl Into<PathBuf>) -> Self {
        CheckpointSink {
            service,
            controller: None,
            dir: dir.into(),
        }
    }

    /// Also captures the refresh controller's durable state.
    pub fn with_controller(mut self, controller: Arc<RefreshController>) -> Self {
        self.controller = Some(controller);
        self
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// One capture-and-commit, returning the committed manifest.
    pub fn write(&self) -> Result<Manifest, CheckpointError> {
        Checkpoint::capture(&self.service, self.controller.as_deref()).write_atomic(&self.dir)
    }
}

impl crn_serve::CheckpointWriter for CheckpointSink {
    fn write_checkpoint(&self) -> Result<(), String> {
        self.write().map(|_| ()).map_err(|e| e.to_string())
    }
}

impl std::fmt::Debug for CheckpointSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSink")
            .field("dir", &self.dir)
            .field("with_controller", &self.controller.is_some())
            .finish()
    }
}
