//! Feedback records and drift detection — the sensing half of the refresh loop.

use crn_query::ast::Query;
use std::collections::VecDeque;

/// The floor applied to cardinalities before forming a q-error (at least one row —
/// matches `crn_eval::metrics::CARDINALITY_FLOOR`).
pub const CARDINALITY_FLOOR: f64 = 1.0;

/// One observed execution: what the runtime served and what the database then measured.
/// This is the unit flowing through the feedback channel (the maintenance lane's
/// [`crn_serve::FeedbackObserver`] forwards exactly these triples).
#[derive(Debug, Clone)]
pub struct FeedbackRecord {
    /// The executed query.
    pub query: Query,
    /// Its true (observed) cardinality.
    pub true_cardinality: u64,
    /// The estimate the live model served for it.
    pub estimate: f64,
}

impl FeedbackRecord {
    /// The record's q-error — the live model's error on this execution.
    pub fn q_error(&self) -> f64 {
        crn_nn::q_error(
            self.estimate.max(CARDINALITY_FLOOR),
            (self.true_cardinality as f64).max(CARDINALITY_FLOOR),
            CARDINALITY_FLOOR,
        )
    }
}

/// A sliding-window drift detector over the live model's q-errors.
///
/// The window holds the most recent `capacity` q-errors; drift is declared when the
/// window is sufficiently full (at least `min_observations`) and its **median** exceeds
/// `threshold`.  The median (not the mean) keeps a single catastrophic outlier from
/// tripping a refresh — drift means the *typical* estimate went bad, which is what
/// fine-tuning can fix.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    window: VecDeque<f64>,
    capacity: usize,
    threshold: f64,
    min_observations: usize,
}

impl DriftDetector {
    /// Creates a detector over a window of `capacity` q-errors declaring drift at
    /// `threshold`, once at least `min_observations` are in the window.
    pub fn new(capacity: usize, threshold: f64, min_observations: usize) -> Self {
        let capacity = capacity.max(1);
        DriftDetector {
            window: VecDeque::with_capacity(capacity),
            capacity,
            threshold,
            min_observations: min_observations.clamp(1, capacity),
        }
    }

    /// Pushes one observed q-error, evicting the oldest beyond the capacity.
    pub fn observe(&mut self, q_error: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(q_error);
    }

    /// The window's median q-error (`None` while empty) — the same median definition
    /// the validation gate uses ([`crn_core::FinalFunction::Median`]), so the trigger
    /// and the gate never disagree on the statistic.
    pub fn median(&self) -> Option<f64> {
        let window: Vec<f64> = self.window.iter().copied().collect();
        crn_core::FinalFunction::Median.apply(&window)
    }

    /// Whether the window currently signals drift.
    pub fn drifted(&self) -> bool {
        self.window.len() >= self.min_observations
            && self.median().is_some_and(|median| median > self.threshold)
    }

    /// Number of q-errors currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns true while no q-error has been observed.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Empties the window — called after a refresh attempt so drift re-arms on
    /// *post-refresh* observations instead of re-tripping on the stale ones.
    pub fn reset(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_q_error_is_symmetric_and_floored() {
        let record = FeedbackRecord {
            query: Query::scan("title"),
            true_cardinality: 100,
            estimate: 25.0,
        };
        assert_eq!(record.q_error(), 4.0);
        let inverse = FeedbackRecord {
            true_cardinality: 25,
            estimate: 100.0,
            ..record.clone()
        };
        assert_eq!(inverse.q_error(), 4.0);
        // Zero truth / zero estimate hit the floor instead of dividing by zero.
        let floored = FeedbackRecord {
            true_cardinality: 0,
            estimate: 0.0,
            ..record
        };
        assert_eq!(floored.q_error(), 1.0);
    }

    #[test]
    fn drift_trips_on_the_median_not_on_outliers() {
        let mut detector = DriftDetector::new(5, 2.0, 3);
        assert!(detector.is_empty());
        assert!(!detector.drifted(), "empty window never drifts");
        detector.observe(1.1);
        detector.observe(1.2);
        assert!(!detector.drifted(), "below min_observations");
        // One catastrophic outlier must not trip the median.
        detector.observe(500.0);
        assert_eq!(detector.len(), 3);
        assert_eq!(detector.median(), Some(1.2));
        assert!(!detector.drifted());
        // A run of typical-bad estimates does.
        detector.observe(6.0);
        detector.observe(8.0);
        assert_eq!(detector.median(), Some(6.0));
        assert!(detector.drifted());
        // The window slides: old small values fall out at capacity.
        detector.observe(9.0);
        assert_eq!(detector.len(), 5);
        assert!(detector.drifted());
        detector.reset();
        assert!(detector.is_empty());
        assert!(!detector.drifted());
    }
}
