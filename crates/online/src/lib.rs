//! `crn-online` — the continual-learning model-refresh subsystem: the layer that turns a
//! trained-then-frozen estimator into a *self-improving* serving system.
//!
//! The paper's §5.2 pool-refresh loop (PR 4's maintenance lane) keeps the **queries
//! pool** fresh, but the CRN model itself stays frozen at train time — exactly the
//! staleness failure mode Adaptive Cardinality Estimation (Ivanov & Bartunov) and
//! ByteCard's production refresh pipeline identify as the gap between a learned
//! estimator and one a DBMS can actually run.  This crate closes the loop for the
//! *model*:
//!
//! 1. **Feedback channel** — the serving runtime's maintenance lane forwards every
//!    applied `(query, true cardinality, estimate)` triple through
//!    [`crn_serve::FeedbackObserver`]; the [`RefreshController`] is such an observer.
//! 2. **Drift detection** — a sliding window over the q-errors of the live estimates
//!    ([`DriftDetector`]): when the window's median exceeds the configured threshold,
//!    the model is considered stale.
//! 3. **Fine-tune trigger** — once drift is detected *and* enough fresh feedback has
//!    accumulated, the controller labels the fresh queries against the current pool
//!    anchors (a [`FeedbackLabeler`]), mixes in reservoir-sampled history
//!    ([`crn_nn::ReplayBuffer`] — the standard catastrophic-forgetting mitigation) and
//!    warm-start fine-tunes a **clone** of the live model
//!    ([`crn_core::CrnModel::fit_incremental`], resuming Adam state) off the serving
//!    path.
//! 4. **Validation gate** — the candidate must *strictly beat* the live snapshot's
//!    median q-error on a held-out probe set (a fraction of the feedback stream that
//!    never enters training).  A failing candidate is discarded and counted
//!    ([`OnlineStats::refreshes_rejected`]) — no silent regressions ever reach serving.
//! 5. **Hot swap** — a passing candidate is published through
//!    [`crn_core::EstimatorService::swap_model`]: an `Arc`-swapped versioned
//!    [`crn_core::ModelSnapshot`], so readers never block and every in-flight batch
//!    completes under exactly one snapshot (swap atomicity — pinned by the proptest in
//!    `crn_core::service`).
//!
//! Refresh cycles run either driver-paced (call
//! [`RefreshController::refresh_if_needed`] at your own cadence — what `repro serve
//! --online --refresh-interval N` does, keeping demos and CI deterministic) or fully in
//! the background on a [`RefreshWorker`] thread.
//!
//! Knob guidance lives in the ROADMAP's "Online refresh" section and in
//! `repro serve --help`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod controller;
pub mod feedback;

pub use checkpoint::{
    Checkpoint, CheckpointError, CheckpointSink, Manifest, CHECKPOINT_FORMAT_VERSION,
};
pub use controller::{
    gate_accepts, ControllerCheckpoint, ExecLabeler, FeedbackLabeler, OnlineConfig, OnlineStats,
    RefreshController, RefreshDecision, RefreshOutcome, RefreshWorker,
};
pub use feedback::{DriftDetector, FeedbackRecord};
