//! The refresh controller: feedback intake, fine-tune trigger, validation gate, hot swap.
//!
//! One [`RefreshController`] sits between the serving runtime's maintenance lane (it is
//! the runtime's [`FeedbackObserver`]) and the live [`EstimatorService`].  Intake is
//! cheap and lock-scoped (the maintenance thread must never stall on training); the
//! expensive refresh cycle — labelling, warm-start fine-tune, probe-set gate — runs on
//! whichever thread calls [`RefreshController::refresh_if_needed`]: a driver at its own
//! cadence, or the background [`RefreshWorker`].

use crate::feedback::{DriftDetector, FeedbackRecord, CARDINALITY_FLOOR};
use crn_core::{Cnt2Crd, CrnModel, EstimatorService, FinalFunction, QueriesPool};
use crn_db::Database;
use crn_estimators::CardinalityEstimator;
use crn_exec::{label_containment_pairs, ContainmentSample};
use crn_nn::{Adam, ReplayBuffer};
use crn_query::ast::Query;
use crn_serve::{FaultInjector, FaultSite, Supervisor, SupervisorPolicy, SupervisorVerdict};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Knobs of the online refresh loop (guidance: ROADMAP "Online refresh").
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Sliding q-error window size of the drift detector.
    pub drift_window: usize,
    /// Median q-error above which the window signals drift.
    pub drift_threshold: f64,
    /// Minimum q-errors in the window before drift can be declared.
    pub min_observations: usize,
    /// Minimum fresh (non-probe) feedback records before a fine-tune can trigger.
    pub min_fresh: usize,
    /// Fraction of the feedback stream routed to the held-out probe set (never trained
    /// on; deterministic stride routing).  0 disables the gate's data source — with an
    /// empty probe set no candidate can pass, so refreshes are effectively off.
    pub probe_fraction: f64,
    /// Most recent probe records kept (the gate evaluates against current traffic).
    pub probe_capacity: usize,
    /// Minimum probe records before a refresh may run (a gate over 2 queries is noise).
    pub min_probe: usize,
    /// Reservoir capacity of the training-history replay buffer.
    pub replay_capacity: usize,
    /// Fraction of each fine-tune corpus drawn from the replay buffer (the rest is the
    /// freshly labelled feedback).  0 disables replay, 0.5 mixes half-and-half.
    pub replay_fraction: f64,
    /// Epochs of each warm-start fine-tune ([`CrnModel::fit_incremental`]).
    pub fine_tune_epochs: usize,
    /// Fine-tune learning rate as a fraction of the model's training rate.  Full-rate
    /// Adam steps on a small fresh corpus overshoot a warm start; 0.2–0.5 adapts
    /// steadily without wrecking what the model already knows.
    pub learning_rate_scale: f64,
    /// Cap on freshly labelled pairs per refresh (labelling executes queries; this
    /// bounds the background-work budget of one cycle).
    pub max_pairs_per_refresh: usize,
    /// Relative margin the validation gate demands: a candidate is applied only when
    /// its probe median beats the live model's by this *fraction* —
    /// `candidate < live * (1 - gate_margin)`.  0 (the default) keeps the original
    /// strictly-better gate; a few percent (e.g. 0.05) buys hysteresis against noisy
    /// probe sets, where a statistically meaningless hair's-width "win" would otherwise
    /// churn the live model.  Clamped to `[0, 1]`.
    pub gate_margin: f64,
    /// Cap on original-training-corpus samples pushed into the replay reservoir at
    /// startup via [`RefreshController::seed_replay_from`] (0, the default, disables
    /// seeding).  Without it the buffer starts empty, so the *first* fine-tune trains
    /// on fresh drift alone and can forget the original workload; seeding makes the
    /// very first cycle mix history like every later one.
    pub seed_replay: usize,
    /// Seed of the controller's deterministic machinery (replay reservoir).
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            drift_window: 32,
            drift_threshold: 3.0,
            min_observations: 16,
            min_fresh: 16,
            probe_fraction: 0.25,
            probe_capacity: 64,
            min_probe: 4,
            replay_capacity: 256,
            replay_fraction: 0.5,
            fine_tune_epochs: 6,
            learning_rate_scale: 0.25,
            max_pairs_per_refresh: 256,
            gate_margin: 0.0,
            seed_replay: 0,
            seed: 42,
        }
    }
}

/// The validation-gate rule, shared by the refresh controller's probe gate and the
/// cluster canary rollout: a candidate is accepted only when its probe median q-error
/// beats the live model's by at least the relative `gate_margin` fraction
/// (`candidate < live * (1 - margin)`; margin is clamped to `[0, 1]`, and 0 keeps the
/// strictly-better rule).
pub fn gate_accepts(live_median: f64, candidate_median: f64, gate_margin: f64) -> bool {
    candidate_median < live_median * (1.0 - gate_margin.clamp(0.0, 1.0))
}

/// Produces labelled containment training pairs for fresh feedback queries — the bridge
/// from `(query, true cardinality)` feedback to the CRN's training format.
///
/// The canonical implementation ([`ExecLabeler`]) pairs each fresh query with the pool
/// anchors sharing its FROM clause (exactly the pairings serving evaluates, §5.3) and
/// labels both containment directions by execution — the same ground-truth source the
/// feedback itself came from, spent as background work off the serving path.
pub trait FeedbackLabeler: Send + Sync {
    /// Labels fresh feedback against the current pool anchors.  `budget` caps how many
    /// pairs to produce (implementations should spread it over the fresh queries).
    fn label(
        &self,
        fresh: &[FeedbackRecord],
        anchors: &QueriesPool,
        budget: usize,
    ) -> Vec<ContainmentSample>;
}

/// The execution-backed [`FeedbackLabeler`]: pairs fresh queries with same-FROM-clause
/// pool anchors (both containment directions, round-robin over the fresh queries so the
/// budget spreads instead of exhausting on the first query) and labels by executing on
/// the given database snapshot.
pub struct ExecLabeler {
    db: Arc<Database>,
    threads: usize,
}

impl ExecLabeler {
    /// Creates the labeler over a database snapshot with a labelling thread budget.
    pub fn new(db: Arc<Database>, threads: usize) -> Self {
        ExecLabeler {
            db,
            threads: threads.max(1),
        }
    }
}

impl FeedbackLabeler for ExecLabeler {
    fn label(
        &self,
        fresh: &[FeedbackRecord],
        anchors: &QueriesPool,
        budget: usize,
    ) -> Vec<ContainmentSample> {
        // Per-fresh-query anchor references, in pool matching order.  The maintenance
        // lane upserts each fed query into the pool before the observer fires, so the
        // query itself usually sits among its own anchors: skip it — a (q, q) pair's
        // label is trivially 1.0 and would burn labelling budget twice per record.
        let per_query: Vec<(&Query, Vec<&Query>)> = fresh
            .iter()
            .map(|record| {
                let matching: Vec<&Query> = anchors
                    .matching(&record.query)
                    .map(|entry| &entry.query)
                    .filter(|anchor| **anchor != record.query)
                    .collect();
                (&record.query, matching)
            })
            .collect();
        // Round-robin across fresh queries up to the budget, cloning only what is
        // emitted.  Both containment directions per pairing: serving consults
        // anchor ⊂% query AND query ⊂% anchor, so the fine-tune must cover both heads.
        let mut pairs: Vec<(Query, Query)> = Vec::new();
        let mut depth = 0usize;
        'fill: loop {
            let mut any = false;
            for (query, query_anchors) in &per_query {
                if let Some(anchor) = query_anchors.get(depth) {
                    any = true;
                    for pair in [
                        ((*anchor).clone(), (*query).clone()),
                        ((*query).clone(), (*anchor).clone()),
                    ] {
                        pairs.push(pair);
                        if pairs.len() >= budget {
                            break 'fill;
                        }
                    }
                }
            }
            if !any {
                break;
            }
            depth += 1;
        }
        label_containment_pairs(&self.db, &pairs, self.threads)
    }
}

/// Why a refresh cycle ended the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshDecision {
    /// The candidate beat the live model on the probe set and was hot-swapped in.
    Applied,
    /// The candidate failed the validation gate and was discarded (counted, never
    /// served).
    RejectedByGate,
    /// The labeler produced no training pairs (e.g. no anchors share the fresh queries'
    /// FROM clauses); nothing was trained.
    NoTrainingPairs,
}

/// The outcome of one refresh cycle (returned by
/// [`RefreshController::refresh_if_needed`] when a cycle ran).
#[derive(Debug, Clone)]
pub struct RefreshOutcome {
    /// What happened.
    pub decision: RefreshDecision,
    /// The live model's median q-error on the held-out probe set at gate time.
    pub live_probe_median: f64,
    /// The candidate's median q-error on the same probe set.
    pub candidate_probe_median: f64,
    /// The model version serving after the cycle (bumped only on `Applied`).
    pub model_version: u64,
    /// Fresh feedback records consumed by the cycle.
    pub fresh_records: usize,
    /// Labelled pairs produced for the fine-tune.
    pub labeled_pairs: usize,
    /// History samples mixed in from the replay buffer.
    pub replayed: usize,
    /// Probe records the gate evaluated on.
    pub probe_records: usize,
    /// The (clamped) relative gate margin the cycle enforced
    /// ([`OnlineConfig::gate_margin`]).
    pub gate_margin: f64,
    /// Near-duplicate anchors merged by the post-swap pool compaction (0 unless the
    /// cycle was [`Applied`](RefreshDecision::Applied)).
    pub pool_compacted: usize,
}

impl RefreshOutcome {
    /// The gate invariant: an applied refresh must have beaten the live model on the
    /// probe set by at least the configured relative margin.  `repro serve --online`
    /// re-checks this per cycle and exits non-zero on violation (the CI tripwire).
    pub fn gate_respected(&self) -> bool {
        match self.decision {
            RefreshDecision::Applied => gate_accepts(
                self.live_probe_median,
                self.candidate_probe_median,
                self.gate_margin,
            ),
            RefreshDecision::RejectedByGate | RefreshDecision::NoTrainingPairs => true,
        }
    }
}

/// Monotonic counters describing a controller's lifetime.  Serializable: they ride
/// along in [`Checkpoint`](crate::Checkpoint)s so a restored process resumes its
/// refresh history instead of starting the counters over.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    /// Feedback records observed (probe + fresh).
    pub feedback_seen: u64,
    /// Records routed to the held-out probe set.
    pub probe_routed: u64,
    /// Times the drift detector's signal (with enough fresh data) started a cycle.
    pub refreshes_attempted: u64,
    /// Cycles whose candidate passed the gate and was hot-swapped.
    pub refreshes_applied: u64,
    /// Cycles whose candidate the gate discarded — counted, never served.
    pub refreshes_rejected: u64,
    /// Cycles that found no labelable training pairs.
    pub refreshes_without_pairs: u64,
    /// The live model version after the most recent cycle (1 = the initial model).
    pub live_model_version: u64,
    /// Gate medians of the most recent cycle (0 until a cycle ran).
    pub last_live_probe_median: f64,
    /// See [`OnlineStats::last_live_probe_median`].
    pub last_candidate_probe_median: f64,
    /// The drift window's current median q-error (serving health at a glance).
    pub window_median: f64,
    /// Near-duplicate anchors merged by post-swap pool compactions, cumulatively.
    pub pool_compacted: u64,
}

/// Mutable controller state behind one mutex (intake is cheap; refresh cycles move the
/// expensive work outside — see the module docs).
struct ControllerState {
    detector: DriftDetector,
    /// Fresh (non-probe) feedback since the last refresh cycle.
    fresh: Vec<FeedbackRecord>,
    /// The held-out probe set: most recent `probe_capacity` probe-routed records.
    probe: Vec<FeedbackRecord>,
    /// Reservoir-sampled training history (labelled pairs of past refreshes).
    replay: ReplayBuffer<ContainmentSample>,
    /// The optimizer state resumed across refreshes (moments travel inside the live
    /// model's parameters; this carries the step count for bias correction).
    adam: Adam,
    /// Deterministic probe routing: every record where `route_count * fraction` crosses
    /// an integer boundary goes to the probe set.
    route_count: u64,
    probe_routed_acc: f64,
    /// True while a refresh cycle is in flight (cycles never run concurrently).
    refreshing: bool,
    stats: OnlineStats,
}

/// The controller's pre-registered observability handles
/// ([`RefreshController::with_obs`]): a live drift-window-median gauge, a fine-tune
/// duration histogram, and the journal for gate / compaction / fine-tune events.
/// Every handle is inert against the default disabled [`crn_obs::Obs`].
struct OnlineObs {
    obs: crn_obs::Obs,
    window_median: crn_obs::Gauge,
    fine_tune_us: crn_obs::HistHandle,
}

impl OnlineObs {
    fn from_obs(obs: crn_obs::Obs) -> Self {
        OnlineObs {
            window_median: obs.gauge("online.drift_window_median"),
            fine_tune_us: obs.hist("online.fine_tune_us"),
            obs,
        }
    }
}

/// The refresh controller — see the [module docs](self).
pub struct RefreshController {
    service: Arc<EstimatorService<CrnModel>>,
    labeler: Box<dyn FeedbackLabeler>,
    config: OnlineConfig,
    state: Mutex<ControllerState>,
    /// Signalled when intake makes a refresh possible (wakes the [`RefreshWorker`]).
    trigger: Condvar,
    /// Observability handles (inert unless wired via
    /// [`with_obs`](RefreshController::with_obs)).
    obs: OnlineObs,
}

impl RefreshController {
    /// Creates the controller over the live service with the given labeler.
    pub fn new(
        service: Arc<EstimatorService<CrnModel>>,
        labeler: Box<dyn FeedbackLabeler>,
        config: OnlineConfig,
    ) -> Self {
        let learning_rate =
            service.model().config().learning_rate * config.learning_rate_scale.max(0.0) as f32;
        let detector = DriftDetector::new(
            config.drift_window,
            config.drift_threshold,
            config.min_observations,
        );
        let stats = OnlineStats {
            live_model_version: service.model_version(),
            ..OnlineStats::default()
        };
        RefreshController {
            state: Mutex::new(ControllerState {
                detector,
                fresh: Vec::new(),
                probe: Vec::new(),
                replay: ReplayBuffer::new(config.replay_capacity, config.seed),
                adam: Adam::new(learning_rate),
                route_count: 0,
                probe_routed_acc: 0.0,
                refreshing: false,
                stats,
            }),
            service,
            labeler,
            config,
            trigger: Condvar::new(),
            obs: OnlineObs::from_obs(crn_obs::Obs::disabled()),
        }
    }

    /// Seeds the replay reservoir from the original training corpus (capped at
    /// [`OnlineConfig::seed_replay`]; a no-op at the default 0).  Call once at startup,
    /// before feedback flows: the very first fine-tune then mixes original-workload
    /// history into its corpus exactly like later cycles mix their banked labels —
    /// without this the first cycle trains on fresh drift alone.  Returns how many
    /// samples were pushed.
    pub fn seed_replay_from(&self, corpus: &[ContainmentSample]) -> usize {
        let cap = self.config.seed_replay;
        if cap == 0 {
            return 0;
        }
        let mut state = self.state.lock().expect("controller state lock");
        let take = corpus.len().min(cap);
        for sample in &corpus[..take] {
            state.replay.push(sample.clone());
        }
        take
    }

    /// Wires the controller's refresh telemetry into `obs`: the live
    /// `online.drift_window_median` gauge, the `online.fine_tune_us` duration
    /// histogram, and journal events for gate decisions, fine-tunes and post-swap pool
    /// compactions.  A disabled `obs` keeps the exact pre-observability behavior.
    pub fn with_obs(mut self, obs: &crn_obs::Obs) -> Self {
        self.obs = OnlineObs::from_obs(obs.clone());
        self
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<EstimatorService<CrnModel>> {
        &self.service
    }

    /// The controller's configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Records one feedback triple (what [`crn_serve::FeedbackObserver::observe`]
    /// forwards).  Cheap: a q-error, a window push and a routing decision under one
    /// short lock — safe to call from the maintenance thread.
    pub fn record(&self, record: FeedbackRecord) {
        let mut state = self.state.lock().expect("controller state lock");
        state.detector.observe(record.q_error());
        state.stats.feedback_seen += 1;
        state.stats.window_median = state.detector.median().unwrap_or(0.0);
        self.obs.window_median.set(state.stats.window_median);
        // Deterministic stride routing: accumulate the fraction and peel a probe record
        // whenever it crosses an integer (e.g. fraction 0.25 -> every 4th record).
        state.route_count += 1;
        state.probe_routed_acc += self.config.probe_fraction.clamp(0.0, 1.0);
        if state.probe_routed_acc >= 1.0 {
            state.probe_routed_acc -= 1.0;
            state.stats.probe_routed += 1;
            if state.probe.len() == self.config.probe_capacity.max(1) {
                state.probe.remove(0);
            }
            state.probe.push(record);
        } else {
            state.fresh.push(record);
        }
        if self.refresh_possible(&state) {
            self.trigger.notify_all();
        }
    }

    /// Whether a refresh cycle would start right now (drift + enough fresh + a viable
    /// probe set + no cycle already in flight).
    fn refresh_possible(&self, state: &ControllerState) -> bool {
        !state.refreshing
            && state.detector.drifted()
            && state.fresh.len() >= self.config.min_fresh
            && state.probe.len() >= self.config.min_probe.max(1)
    }

    /// A point-in-time snapshot of the controller's counters.
    pub fn stats(&self) -> OnlineStats {
        self.state
            .lock()
            .expect("controller state lock")
            .stats
            .clone()
    }

    /// Runs one refresh cycle if the trigger conditions hold, returning its outcome
    /// (`None` when nothing triggered).  The expensive phases — labelling, fine-tune,
    /// probe gate — run on the calling thread with the intake lock *released*, so
    /// serving and feedback intake continue untouched; the concluding hot swap is an
    /// `Arc` pointer swap.
    pub fn refresh_if_needed(&self) -> Option<RefreshOutcome> {
        // Phase 0 — claim the cycle and take its inputs under the intake lock.
        let (fresh, probe, window_median) = {
            let mut state = self.state.lock().expect("controller state lock");
            if !self.refresh_possible(&state) {
                return None;
            }
            state.refreshing = true;
            state.stats.refreshes_attempted += 1;
            let fresh = std::mem::take(&mut state.fresh);
            let probe = state.probe.clone();
            // The median that tripped the cycle — journaled with the gate decision
            // below (the re-arm clears it from the stats before the cycle concludes).
            let window_median = state.stats.window_median;
            (fresh, probe, window_median)
        };
        let outcome = self.run_cycle(&fresh, &probe);
        // Phase 4 — publish the outcome and re-arm.
        let mut state = self.state.lock().expect("controller state lock");
        state.refreshing = false;
        // Re-arm drift on post-refresh observations only (whatever the decision: a
        // rejected candidate should not immediately re-trip on the same stale window).
        state.detector.reset();
        state.stats.window_median = 0.0;
        match outcome.decision {
            RefreshDecision::Applied => state.stats.refreshes_applied += 1,
            RefreshDecision::RejectedByGate => state.stats.refreshes_rejected += 1,
            RefreshDecision::NoTrainingPairs => state.stats.refreshes_without_pairs += 1,
        }
        state.stats.live_model_version = outcome.model_version;
        state.stats.last_live_probe_median = outcome.live_probe_median;
        state.stats.last_candidate_probe_median = outcome.candidate_probe_median;
        state.stats.pool_compacted += outcome.pool_compacted as u64;
        drop(state);
        self.obs.window_median.set(0.0);
        self.obs.obs.record_event(crn_obs::Event::GateDecision {
            decision: match outcome.decision {
                RefreshDecision::Applied => "applied",
                RefreshDecision::RejectedByGate => "rejected_by_gate",
                RefreshDecision::NoTrainingPairs => "no_training_pairs",
            },
            window_median,
        });
        if outcome.pool_compacted > 0 {
            self.obs.obs.record_event(crn_obs::Event::PoolCompaction {
                merged: outcome.pool_compacted,
            });
        }
        Some(outcome)
    }

    /// The cycle body: label, mix, fine-tune, gate, swap.  Runs without the intake lock.
    fn run_cycle(&self, fresh: &[FeedbackRecord], probe: &[FeedbackRecord]) -> RefreshOutcome {
        let gate_margin = self.config.gate_margin.clamp(0.0, 1.0);
        // One flattened pool snapshot for the whole cycle, with every probe query
        // *removed*: the maintenance lane upserts executed queries (including the
        // probe-routed ones) into the pool with their true cardinalities, so a pool
        // entry identical to a probe query would let BOTH models answer it from memory
        // (q-error ≈ 1) and the gate would measure pool recall instead of model
        // quality.  Probe queries are held out of the entire cycle: never an anchor in
        // the gate's evaluations, never a labelling pairing.
        let mut pool = self.service.pool().to_pool();
        for record in probe {
            pool.remove(&record.query);
        }
        let labeled = self
            .labeler
            .label(fresh, &pool, self.config.max_pairs_per_refresh);
        if labeled.is_empty() {
            return RefreshOutcome {
                decision: RefreshDecision::NoTrainingPairs,
                live_probe_median: 0.0,
                candidate_probe_median: 0.0,
                model_version: self.service.model_version(),
                fresh_records: fresh.len(),
                labeled_pairs: 0,
                replayed: 0,
                probe_records: probe.len(),
                gate_margin,
                pool_compacted: 0,
            };
        }

        // Replay mix: draw history so that `replay_fraction` of the corpus is replayed
        // (n_replay = fresh * f / (1 - f)), then bank the fresh labels for future cycles.
        let (replayed, mut adam) = {
            let mut state = self.state.lock().expect("controller state lock");
            let fraction = self.config.replay_fraction.clamp(0.0, 0.9);
            let want = ((labeled.len() as f64) * fraction / (1.0 - fraction)).round() as usize;
            let replayed = state.replay.sample(want);
            for sample in &labeled {
                state.replay.push(sample.clone());
            }
            (replayed, state.adam.clone())
        };
        let mut corpus = labeled.clone();
        corpus.extend(replayed.iter().cloned());

        // Warm-start fine-tune of a clone, off the serving path.  On the very first
        // cycle the clone's Adam moments belong to the initial fit's (discarded)
        // optimizer — reset them once so the fresh step count and the moments agree;
        // later cycles resume the moments their own refreshes produced.
        let live = self.service.model();
        let mut candidate = (*live).clone();
        if adam.step_count == 0 {
            candidate.reset_optimizer_state();
        }
        let fine_tune_started = std::time::Instant::now();
        candidate.fit_incremental(&corpus, &mut adam, self.config.fine_tune_epochs);
        if self.obs.obs.enabled() {
            let duration_us = fine_tune_started.elapsed().as_micros() as u64;
            self.obs.fine_tune_us.record(duration_us);
            self.obs.obs.record_event(crn_obs::Event::FineTune {
                duration_us,
                pairs: corpus.len(),
            });
        }

        // The validation gate: both models on the same probe set over the same pool and
        // serving configuration.  Better by at least the relative margin, or discarded
        // (margin 0 = the original strictly-better gate).
        let live_probe_median = self.probe_median(&live, &pool, probe);
        let candidate_probe_median = self.probe_median(&candidate, &pool, probe);
        if gate_accepts(live_probe_median, candidate_probe_median, gate_margin) {
            let model_version = self.service.swap_model(candidate);
            // The candidate's Adam moments are now live; resume its step count too.
            self.state.lock().expect("controller state lock").adam = adam;
            // The anchor population churns most around an applied refresh — the
            // maintenance lane has been upserting drifted traffic the whole window —
            // so this is the cadence at which near-duplicate anchors accumulate.
            // Compacting here (never on rejected cycles: nothing changed) folds each
            // structural near-duplicate group into its best-retained representative,
            // off the serving path like everything else in the cycle body.
            let pool_compacted = self.service.pool().compact();
            RefreshOutcome {
                decision: RefreshDecision::Applied,
                live_probe_median,
                candidate_probe_median,
                model_version,
                fresh_records: fresh.len(),
                labeled_pairs: labeled.len(),
                replayed: replayed.len(),
                probe_records: probe.len(),
                gate_margin,
                pool_compacted,
            }
        } else {
            // Discard the candidate (and its advanced Adam state — the moments live in
            // the discarded parameters; the retained step count must keep matching the
            // live model's moments).
            RefreshOutcome {
                decision: RefreshDecision::RejectedByGate,
                live_probe_median,
                candidate_probe_median,
                model_version: self.service.model_version(),
                fresh_records: fresh.len(),
                labeled_pairs: labeled.len(),
                replayed: replayed.len(),
                probe_records: probe.len(),
                gate_margin,
                pool_compacted: 0,
            }
        }
    }

    /// Median q-error of one model over the probe set, evaluated through the sequential
    /// `Cnt2Crd` path over the cycle's pool with the service's serving configuration —
    /// bit-identical to what the service itself would serve for these queries under that
    /// model (the parity contract), so the gate measures exactly the serving behaviour.
    fn probe_median(&self, model: &CrnModel, pool: &QueriesPool, probe: &[FeedbackRecord]) -> f64 {
        let estimator =
            Cnt2Crd::new(model.clone(), pool.clone()).with_config(*self.service.config());
        let errors: Vec<f64> = probe
            .iter()
            .map(|record| {
                crn_nn::q_error(
                    estimator.estimate(&record.query).max(CARDINALITY_FLOOR),
                    (record.true_cardinality as f64).max(CARDINALITY_FLOOR),
                    CARDINALITY_FLOOR,
                )
            })
            .collect();
        FinalFunction::Median.apply(&errors).unwrap_or(0.0)
    }

    /// Captures the controller state a [`Checkpoint`](crate::Checkpoint) carries: the
    /// lifetime counters plus the optimizer step count and probe-routing position.  The
    /// transient windows (drift detector, fresh/probe/replay buffers) are deliberately
    /// *not* persisted — they describe recent traffic, which a restored process no
    /// longer has; refilling them from live feedback is both correct and cheap, while a
    /// wrong optimizer step count would silently mis-scale every future fine-tune.
    pub fn checkpoint_state(&self) -> ControllerCheckpoint {
        let state = self.state.lock().expect("controller state lock");
        ControllerCheckpoint {
            stats: state.stats.clone(),
            adam: state.adam.clone(),
            route_count: state.route_count,
            probe_routed_acc: state.probe_routed_acc,
        }
    }

    /// Restores the durable state captured by
    /// [`checkpoint_state`](RefreshController::checkpoint_state) into this (freshly
    /// constructed) controller.  The restored Adam step count must accompany the
    /// restored model's parameters (whose moments travel inside the model itself) —
    /// together they make a restored run's future fine-tunes bit-identical to an
    /// uninterrupted one's.
    pub fn restore_state(&self, checkpoint: ControllerCheckpoint) {
        let mut state = self.state.lock().expect("controller state lock");
        state.stats = checkpoint.stats;
        state.stats.live_model_version = self.service.model_version();
        state.adam = checkpoint.adam;
        state.route_count = checkpoint.route_count;
        state.probe_routed_acc = checkpoint.probe_routed_acc;
    }

    /// Reconciles the controller after a refresh-worker panic: clears the in-flight
    /// cycle flag so future cycles can trigger again (the panicked cycle's taken fresh
    /// records are lost — feedback keeps flowing, the next window refills).  Tolerates
    /// the poisoned lock a mid-cycle panic leaves behind.
    pub fn recover_after_panic(&self) {
        let mut state = match self.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.refreshing = false;
    }

    /// Parks the calling thread until a refresh becomes possible or the timeout elapses
    /// (the [`RefreshWorker`]'s wait primitive).  Returns whether a refresh is possible.
    fn wait_for_trigger(&self, timeout: Duration) -> bool {
        let state = self.state.lock().expect("controller state lock");
        if self.refresh_possible(&state) {
            return true;
        }
        let (state, _timed_out) = self
            .trigger
            .wait_timeout(state, timeout)
            .expect("controller state lock");
        self.refresh_possible(&state)
    }
}

/// The controller's durable state, as carried inside a [`Checkpoint`](crate::Checkpoint):
/// lifetime counters, optimizer step count (the moments live inside the checkpointed
/// model's parameters) and the deterministic probe-routing position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerCheckpoint {
    /// The lifetime counters at capture time.
    pub stats: OnlineStats,
    /// The resumed optimizer (its step count drives Adam's bias correction; restoring
    /// it keeps post-restore fine-tunes bit-identical to an uninterrupted run's).
    pub adam: Adam,
    /// Feedback records routed so far (the probe-routing stride position).
    pub route_count: u64,
    /// The fractional probe-routing accumulator.
    pub probe_routed_acc: f64,
}

impl crn_serve::FeedbackObserver for RefreshController {
    fn observe(&self, query: &Query, true_cardinality: u64, estimate: f64) {
        self.record(FeedbackRecord {
            query: query.clone(),
            true_cardinality,
            estimate,
        });
    }
}

impl std::fmt::Debug for RefreshController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefreshController")
            .field("service", &self.service.name())
            .field("config", &self.config)
            .finish()
    }
}

/// The background trainer: a thread that parks on the controller's trigger and runs
/// refresh cycles as they become possible — model refresh fully off the serving path.
///
/// Dropping (or [`stop`](RefreshWorker::stop)ping) the worker finishes any in-flight
/// cycle and joins the thread.  Drivers that need determinism (demos, CI) skip the
/// worker and pace [`RefreshController::refresh_if_needed`] themselves.
pub struct RefreshWorker {
    stop: Arc<Mutex<bool>>,
    controller: Arc<RefreshController>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RefreshWorker {
    /// Spawns the worker over a shared controller.  `poll_interval` bounds how long the
    /// worker sleeps between trigger checks (it also wakes immediately when intake
    /// signals a possible refresh).  The worker runs under its own default-policy
    /// supervisor; use [`spawn_supervised`](RefreshWorker::spawn_supervised) to budget
    /// it together with a serving runtime's lanes.
    pub fn spawn(controller: Arc<RefreshController>, poll_interval: Duration) -> Self {
        Self::spawn_supervised(
            controller,
            poll_interval,
            Arc::new(Supervisor::new(SupervisorPolicy::default())),
            FaultInjector::none(),
        )
    }

    /// [`spawn`](RefreshWorker::spawn) under an explicit supervisor (typically the
    /// serving runtime's, so all three background lanes budget under one policy and
    /// report in one place) and fault injector (the chaos suite's
    /// [`FaultSite::RefreshCycle`] scripts a panic right before a cycle runs).
    ///
    /// A panicked cycle loses its taken fresh-feedback window, nothing else: the
    /// recovery hook clears the in-flight flag, the supervisor grants a restart within
    /// budget (lane [`crn_serve::LANE_REFRESH`]), and the worker re-enters its loop.
    /// Past the budget the worker stays down — the model stops refreshing, visible in
    /// the supervisor's `degraded` view, while serving continues unharmed.
    pub fn spawn_supervised(
        controller: Arc<RefreshController>,
        poll_interval: Duration,
        supervisor: Arc<Supervisor>,
        injector: Arc<FaultInjector>,
    ) -> Self {
        let stop = Arc::new(Mutex::new(false));
        let handle = {
            let controller = Arc::clone(&controller);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("crn-online-refresh".into())
                .spawn(move || loop {
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                        let stopped = match stop.lock() {
                            Ok(flag) => *flag,
                            Err(poisoned) => *poisoned.into_inner(),
                        };
                        if stopped {
                            return;
                        }
                        if controller.wait_for_trigger(poll_interval) {
                            // Scripted refresh-cycle panic: outside the cycle's own
                            // work, so the injected death exercises exactly the
                            // supervision path.
                            injector.fire(FaultSite::RefreshCycle);
                            controller.refresh_if_needed();
                        }
                    }));
                    match run {
                        Ok(()) => return,
                        Err(_panic) => {
                            controller.recover_after_panic();
                            match supervisor.on_panic(crn_serve::LANE_REFRESH) {
                                SupervisorVerdict::Restart => {
                                    controller.obs.obs.record_event(
                                        crn_obs::Event::SupervisorRestart {
                                            lane: crn_serve::LANE_REFRESH,
                                            restarts: supervisor.restarts(crn_serve::LANE_REFRESH),
                                        },
                                    );
                                    continue;
                                }
                                SupervisorVerdict::Degrade => {
                                    controller
                                        .obs
                                        .obs
                                        .record_event(crn_obs::Event::LaneDegraded {
                                            lane: crn_serve::LANE_REFRESH,
                                        });
                                    return;
                                }
                            }
                        }
                    }
                })
                .expect("spawn refresh worker")
        };
        RefreshWorker {
            stop,
            controller,
            handle: Some(handle),
        }
    }

    /// The shared controller.
    pub fn controller(&self) -> &Arc<RefreshController> {
        &self.controller
    }

    /// Stops the worker: any in-flight cycle completes, then the thread joins.
    pub fn stop(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        *self.stop.lock().expect("stop flag lock") = true;
        // Wake the worker out of its timed park so it observes the flag promptly.
        self.controller.trigger.notify_all();
        if let Some(handle) = self.handle.take() {
            handle.join().expect("refresh worker exits cleanly");
        }
    }
}

impl Drop for RefreshWorker {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_impl();
        }
    }
}
