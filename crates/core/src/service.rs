//! The concurrent estimator service — the serving front-end of the layered subsystem.
//!
//! [`EstimatorService`] accepts a *slice of concurrent queries* (the unit a database
//! front-end would hand over per scheduling tick), and produces one cardinality estimate per
//! query plus a [`ServeStats`] describing how the batch was served.  The three layers:
//!
//! 1. **Storage** — an immutable [`PoolSnapshot`](crate::sharded::PoolSnapshot) of the
//!    [`ShardedPool`]: taken once per `serve` call, shared by every worker, never blocking
//!    concurrent pool maintenance.
//! 2. **Compute** — the queries are grouped by FROM clause (only same-FROM anchors can
//!    participate, §5.3), each `(group × non-empty shard)` becomes one work item on the
//!    persistent [`WorkerPool`], and each work item runs the whole group against the
//!    shard's anchors in one fused batch
//!    ([`ContainmentEstimator::predict_batch_prepared_multi`]) with a per-shard cached
//!    [`prepare_anchors`](ContainmentEstimator::prepare_anchors) state keyed by the shard's
//!    snapshot version.
//! 3. **Merge** — per-shard estimate lists concatenate in canonical shard order, the final
//!    function (median by default) folds them, and queries without any matching anchor fall
//!    back exactly like [`Cnt2Crd`](crate::cnt2crd::Cnt2Crd).
//!
//! # Bit-identical to sequential serving
//!
//! For every query, the service's estimate is **bit-identical** to what the sequential
//! single-query `Cnt2Crd` path returns over the flattened pool, at *any* shard and thread
//! count: per-anchor rates are computed by row-count-independent kernels over forced-CSR
//! featurizations (so shard partitioning cannot re-associate any f32 sum), the merged
//! per-entry list is a permutation of the sequential one, and the final functions sort
//! before folding.  The parity tests below pin shards = 1/2/8.

use crate::cnt2crd::Cnt2CrdConfig;
use crate::pool::from_key;
use crate::sharded::{PoolSnapshot, ShardedPool};
use crn_estimators::{CardinalityEstimator, ContainmentEstimator};
use crn_nn::parallel::WorkerPool;
use crn_query::ast::Query;
use parking_lot::RwLock;
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pre-registered per-phase latency histograms ([`EstimatorService::with_obs`]): one
/// registry lookup each at wiring time, a single-bool guard per `serve` call after.
/// With the default disabled [`crn_obs::Obs`] every handle is inert and `observe` is one
/// predictable branch — the serve path is otherwise unchanged.
struct PhaseHists {
    enabled: bool,
    snapshot_us: crn_obs::HistHandle,
    group_us: crn_obs::HistHandle,
    compute_us: crn_obs::HistHandle,
    merge_us: crn_obs::HistHandle,
    total_us: crn_obs::HistHandle,
}

impl PhaseHists {
    fn from_obs(obs: &crn_obs::Obs) -> Self {
        PhaseHists {
            enabled: obs.enabled(),
            snapshot_us: obs.hist("svc.phase.snapshot_us"),
            group_us: obs.hist("svc.phase.group_us"),
            compute_us: obs.hist("svc.phase.compute_us"),
            merge_us: obs.hist("svc.phase.merge_us"),
            total_us: obs.hist("svc.phase.total_us"),
        }
    }

    /// Feeds one served batch's phase timings into the histograms.
    fn observe(&self, stats: &ServeStats) {
        if !self.enabled {
            return;
        }
        self.snapshot_us
            .record(stats.snapshot_time.as_micros() as u64);
        self.group_us.record(stats.group_time.as_micros() as u64);
        self.compute_us
            .record(stats.compute_time.as_micros() as u64);
        self.merge_us.record(stats.merge_time.as_micros() as u64);
        self.total_us.record(stats.total_time.as_micros() as u64);
    }
}

/// A versioned, immutable view of the served containment model — the model-side analogue
/// of [`PoolSnapshot`].
///
/// The service's live model sits behind an `Arc`-swapped snapshot: readers
/// ([`EstimatorService::serve`]) clone the current `Arc` once per call and compute the
/// *whole* batch against that frozen model, while [`EstimatorService::swap_model`]
/// publishes a successor snapshot with a fresh (monotonically increasing) version.  The
/// version keys the per-shard anchor caches together with the pool shard version, so a
/// hot-swap invalidates exactly the cached encodings the old model produced.
///
/// **Swap-atomicity contract**: every served batch is computed entirely under one model
/// snapshot — never a blend of old and new.  A `serve` call that raced a swap returns
/// either the complete old-model answer or the complete new-model answer, bit-identical
/// to a sequential computation under that model (the swap-atomicity proptest below pins
/// this at shards {1, 4} × workers {1, 4}).
#[derive(Debug)]
pub struct ModelSnapshot<M> {
    model: Arc<M>,
    version: u64,
}

impl<M> ModelSnapshot<M> {
    /// The frozen model.
    pub fn model(&self) -> &Arc<M> {
        &self.model
    }

    /// The snapshot's version (monotonic within the owning service; the initial model is
    /// version 1 and every [`EstimatorService::swap_model`] allocates the next one).
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl<M> Clone for ModelSnapshot<M> {
    fn clone(&self) -> Self {
        ModelSnapshot {
            model: Arc::clone(&self.model),
            version: self.version,
        }
    }
}

/// How one `serve` call was executed: counters per layer plus wall-clock per phase.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Queries in the served slice.
    pub queries: usize,
    /// Distinct FROM-clause groups the slice collapsed into.
    pub groups: usize,
    /// Shards in the pool snapshot.
    pub shards: usize,
    /// Pool entries in the snapshot.
    pub pool_entries: usize,
    /// `(group × non-empty shard)` work items evaluated on the worker pool.
    pub work_items: usize,
    /// Queries answered from the pool (at least one per-entry estimate survived ε).
    pub pool_hits: usize,
    /// Queries answered by the fallback estimator (or the configured default).
    pub fallbacks: usize,
    /// Version of the [`ModelSnapshot`] the whole batch was computed under (0 only in a
    /// default/empty stats value; real serves start at version 1).
    pub model_version: u64,
    /// Taking the pool snapshot.
    pub snapshot_time: Duration,
    /// Grouping queries by FROM clause and planning work items.
    pub group_time: Duration,
    /// Evaluating all work items on the worker pool.
    pub compute_time: Duration,
    /// Merging per-shard results, final functions and fallbacks.
    pub merge_time: Duration,
    /// End-to-end `serve` wall clock.
    pub total_time: Duration,
}

impl ServeStats {
    /// Sum of the four per-phase timings.  Always `<= total_time`: the phases are timed
    /// over disjoint intervals of one `serve` call, so the difference is the (small)
    /// bookkeeping between phases.
    pub fn phase_time(&self) -> Duration {
        self.snapshot_time + self.group_time + self.compute_time + self.merge_time
    }

    /// Folds another call's stats into this one: counters and timings add, while
    /// `shards`/`pool_entries` take the other call's values (they describe the latest
    /// snapshot, not a running total).  This is how multi-batch drivers — `repro serve`
    /// and the async runtime's scheduler — aggregate a whole run's serving profile.
    pub fn accumulate(&mut self, other: &ServeStats) {
        self.queries += other.queries;
        self.groups += other.groups;
        self.work_items += other.work_items;
        self.pool_hits += other.pool_hits;
        self.fallbacks += other.fallbacks;
        self.snapshot_time += other.snapshot_time;
        self.group_time += other.group_time;
        self.compute_time += other.compute_time;
        self.merge_time += other.merge_time;
        self.total_time += other.total_time;
        self.shards = other.shards;
        self.pool_entries = other.pool_entries;
        self.model_version = other.model_version;
    }

    /// One-line human-readable rendering (used by `repro serve`).
    pub fn render(&self) -> String {
        format!(
            "{} queries in {} groups over {} shards ({} entries, model v{}): {} work items, \
             {} pool hits, {} fallbacks | snapshot {:.1?} group {:.1?} compute {:.1?} \
             merge {:.1?} total {:.1?}",
            self.queries,
            self.groups,
            self.shards,
            self.pool_entries,
            self.model_version,
            self.work_items,
            self.pool_hits,
            self.fallbacks,
            self.snapshot_time,
            self.group_time,
            self.compute_time,
            self.merge_time,
            self.total_time,
        )
    }
}

/// One `serve` call's result: the per-query estimates (in input order) and the stats.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// One cardinality estimate per input query, in input order.
    pub estimates: Vec<f64>,
    /// How the batch was served.
    pub stats: ServeStats,
    /// The [`PoolSnapshot::version`] of the pool snapshot the whole batch was computed
    /// under (the model version is in [`ServeStats::model_version`]).  Together they name
    /// the exact `(pool, model)` pairing of every estimate in this response — the key a
    /// cross-window estimate cache files results under, so maintenance upserts and model
    /// hot-swaps invalidate by construction.
    pub pool_version: u64,
    /// Indices (into `estimates`) that were answered by a *degraded* path — e.g. a
    /// distributed backend's coordinator-side fallback after losing the worker that
    /// owned the query's shards.  Always empty for the in-process
    /// [`EstimatorService`]: its fallbacks are the technique's own §5.2 semantics, not a
    /// fidelity loss.  Consumers (the serving runtime) tag these tickets
    /// `EstimateSource::Degraded` and keep them out of version-keyed caches.
    pub degraded: Vec<usize>,
}

/// The un-folded result of the service's layered plan ([`EstimatorService::
/// serve_entry_lists`]): per-query per-entry estimate lists in canonical shard order,
/// before the final function folds them.  A distributed coordinator gathers these
/// lists from shard-owning workers and folds them with [`fold_entry_lists`] — the fold
/// is the one shared definition, so the distributed estimate is bit-identical to the
/// single-process one.
#[derive(Debug, Clone)]
pub struct EntryLists {
    /// Per input query (in input order), the ε-surviving per-entry estimates,
    /// concatenated across shards in canonical shard order (within a shard: entry
    /// order).
    pub per_query: Vec<Vec<f64>>,
    /// How the plan was executed (fold-time counters `pool_hits`/`fallbacks` are still
    /// zero; [`fold_entry_lists`] fills them).
    pub stats: ServeStats,
    /// The pool snapshot version the lists were computed under.
    pub pool_version: u64,
}

/// Groups a query slice by FROM clause in deterministic order (sorted by key — the
/// `BTreeMap` iteration order every serving layer uses): one `(from_key, input query
/// indices)` entry per distinct FROM clause.  This is the group→shard plan a
/// distributed coordinator scatters: each group only needs the shards whose anchors
/// match its key.
pub fn plan_groups(queries: &[Query]) -> Vec<(String, Vec<usize>)> {
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (index, query) in queries.iter().enumerate() {
        groups.entry(from_key(query)).or_default().push(index);
    }
    groups.into_iter().collect()
}

/// Folds per-query per-entry estimate lists through the technique's final function —
/// the **one shared definition** of the pool-hit / fallback decision, used by the
/// in-process serve paths and by the distributed coordinator's gather.  A query whose
/// list survives the final function is a pool hit (`value.max(0.0)`); an empty list
/// falls back to the configured estimator (or the flat default), exactly like
/// [`Cnt2Crd`](crate::cnt2crd::Cnt2Crd).  Increments `stats.pool_hits` /
/// `stats.fallbacks`.
pub fn fold_entry_lists(
    config: &Cnt2CrdConfig,
    fallback: Option<&(dyn CardinalityEstimator + Send + Sync)>,
    per_query: &[Vec<f64>],
    queries: &[Query],
    stats: &mut ServeStats,
) -> Vec<f64> {
    per_query
        .iter()
        .zip(queries)
        .map(
            |(entry_estimates, query)| match config.final_function.apply(entry_estimates) {
                Some(value) => {
                    stats.pool_hits += 1;
                    value.max(0.0)
                }
                None => {
                    stats.fallbacks += 1;
                    match fallback {
                        Some(fallback) => fallback.estimate(query),
                        None => config.default_estimate,
                    }
                }
            },
        )
        .collect()
}

/// A per-shard cached anchor serving state, valid for one `(pool shard version, model
/// version)` pairing: pool maintenance invalidates exactly the shards it touched, and a
/// model hot-swap invalidates every entry the old model encoded.
struct CachedShardAnchors {
    pool_version: u64,
    model_version: u64,
    state: Option<Arc<dyn Any + Send + Sync>>,
}

/// The concurrent serving front-end over a containment model and a sharded queries pool.
///
/// The service owns its storage ([`ShardedPool`] — concurrent maintenance via
/// [`EstimatorService::pool`] is visible to the next `serve` call), its *model* (an
/// `Arc`-swapped [`ModelSnapshot`] — [`EstimatorService::swap_model`] hot-swaps an
/// improved model without pausing traffic; readers never block) and shares a persistent
/// [`WorkerPool`] with whatever else the process runs (training, other services).
pub struct EstimatorService<M> {
    /// The live model snapshot.  Readers clone the `Arc` under the read lock (a pointer
    /// swap's worth of contention) and serve whole batches against the frozen snapshot;
    /// [`EstimatorService::swap_model`] publishes successors.
    model: RwLock<Arc<ModelSnapshot<M>>>,
    /// Source of fresh model versions (the initial model is version 1).
    next_model_version: AtomicU64,
    pool: ShardedPool,
    workers: WorkerPool,
    config: Cnt2CrdConfig,
    fallback: Option<Box<dyn CardinalityEstimator + Send + Sync>>,
    name: String,
    /// Per-`(shard, FROM-clause)` anchor serving state, keyed by the shard's snapshot
    /// version *and* the model version (see [`CachedShardAnchors`]).
    prepared: Mutex<BTreeMap<(usize, String), CachedShardAnchors>>,
    /// Per-phase latency histograms (inert unless wired via
    /// [`with_obs`](EstimatorService::with_obs)).
    phase_hists: PhaseHists,
}

impl<M: ContainmentEstimator + Send + Sync> EstimatorService<M> {
    /// Builds the service from a containment model, a sharded pool and a worker pool.
    pub fn new(model: M, pool: ShardedPool, workers: WorkerPool) -> Self {
        let name = format!("EstimatorService({})", model.name());
        EstimatorService {
            model: RwLock::new(Arc::new(ModelSnapshot {
                model: Arc::new(model),
                version: 1,
            })),
            next_model_version: AtomicU64::new(2),
            pool,
            workers,
            config: Cnt2CrdConfig::default(),
            fallback: None,
            name,
            prepared: Mutex::new(BTreeMap::new()),
            phase_hists: PhaseHists::from_obs(&crn_obs::Obs::disabled()),
        }
    }

    /// Wires the service's per-phase timings (snapshot / group / compute / merge /
    /// total, µs) into `obs` as `svc.phase.*` histograms.  With a disabled `obs` this
    /// is a no-op wiring: the serve path keeps its exact pre-observability behavior.
    pub fn with_obs(mut self, obs: &crn_obs::Obs) -> Self {
        self.phase_hists = PhaseHists::from_obs(obs);
        self
    }

    /// Overrides the Cnt2Crd configuration (final function, ε, default estimate).
    pub fn with_config(mut self, config: Cnt2CrdConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the fallback cardinality estimator used when no pool entry matches a query's
    /// FROM clause (§5.2: "we can always rely on the known basic cardinality estimation
    /// models").
    pub fn with_fallback(mut self, fallback: Box<dyn CardinalityEstimator + Send + Sync>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// The service's name ("EstimatorService(<model>)").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current model snapshot (hold it as long as needed; swaps publish successors).
    pub fn model_snapshot(&self) -> Arc<ModelSnapshot<M>> {
        Arc::clone(&self.model.read())
    }

    /// The currently served containment model (the current snapshot's model).
    pub fn model(&self) -> Arc<M> {
        Arc::clone(&self.model.read().model)
    }

    /// The version of the currently served model snapshot.
    pub fn model_version(&self) -> u64 {
        self.model.read().version
    }

    /// Hot-swaps the served model: publishes a new [`ModelSnapshot`] with the next
    /// version and returns that version.  In-flight `serve` calls finish entirely under
    /// the snapshot they took (swap atomicity — no batch ever blends models); calls that
    /// take their snapshot after the swap serve the new model.  Stale per-shard anchor
    /// caches are invalidated lazily by the version key, exactly like pool maintenance.
    pub fn swap_model(&self, model: M) -> u64 {
        // Allocate the version under the write lock: with it outside, two racing swaps
        // could publish in the opposite order of their version draws, leaving an older
        // model live under a non-monotonic version.
        let mut live = self.model.write();
        let version = self.next_model_version.fetch_add(1, Ordering::Relaxed);
        *live = Arc::new(ModelSnapshot {
            model: Arc::new(model),
            version,
        });
        version
    }

    /// The sharded queries pool (insert/remove here between `serve` calls — snapshots in
    /// flight are unaffected).
    pub fn pool(&self) -> &ShardedPool {
        &self.pool
    }

    /// The technique's configuration.
    pub fn config(&self) -> &Cnt2CrdConfig {
        &self.config
    }

    /// Serves a slice of concurrent queries: one estimate per query, in input order, plus
    /// the per-layer stats.  See the module docs for the execution plan.
    pub fn serve(&self, queries: &[Query]) -> ServeResponse {
        if self.config.top_k > 0 {
            return self.serve_top_k(queries);
        }
        let started = Instant::now();
        let EntryLists {
            per_query,
            mut stats,
            pool_version,
        } = self.serve_entry_lists(queries);

        // Fold each query's concatenated list through the final function — the shared
        // definition in `fold_entry_lists`, so a distributed gather folds identically.
        let merge_started = Instant::now();
        let estimates = fold_entry_lists(
            &self.config,
            self.fallback.as_deref(),
            &per_query,
            queries,
            &mut stats,
        );
        stats.merge_time += merge_started.elapsed();
        stats.total_time = started.elapsed();
        self.phase_hists.observe(&stats);
        ServeResponse {
            estimates,
            stats,
            pool_version,
            degraded: Vec::new(),
        }
    }

    /// Layers 1–3 of the full-scan plan, stopping just short of the final-function fold:
    /// one ε-filtered per-entry estimate list per query, concatenated in canonical shard
    /// order.  This is the distributed-serving seam — a shard-owning worker runs exactly
    /// this over its own (sub)pool, the coordinator concatenates workers' lists in
    /// canonical shard order and folds with [`fold_entry_lists`], and the result is
    /// bit-identical to a single-process [`serve`](EstimatorService::serve).
    pub fn serve_entry_lists(&self, queries: &[Query]) -> EntryLists {
        let started = Instant::now();
        let mut stats = ServeStats {
            queries: queries.len(),
            ..ServeStats::default()
        };

        // Layer 1 — storage and model: one immutable snapshot of each for the whole
        // batch.  Taking both up front is the swap-atomicity contract: however the pool
        // or model is refreshed concurrently, every estimate below comes from exactly
        // this (pool, model) pairing.
        let snapshot = self.pool.snapshot();
        let model = self.model_snapshot();
        stats.shards = snapshot.num_shards();
        stats.pool_entries = snapshot.len();
        stats.model_version = model.version;
        stats.snapshot_time = started.elapsed();

        // Layer 2a — plan: group queries by FROM clause (deterministic group order),
        // then one work item per (group, shard with matching anchors).
        let group_started = Instant::now();
        let groups = plan_groups(queries);
        stats.groups = groups.len();
        let mut work_items: Vec<(usize, usize)> = Vec::new(); // (group index, shard index)
        for (group_index, (key, _)) in groups.iter().enumerate() {
            for shard in 0..snapshot.num_shards() {
                if snapshot.shard(shard).matching_key(key).next().is_some() {
                    work_items.push((group_index, shard));
                }
            }
        }
        stats.work_items = work_items.len();
        stats.group_time = group_started.elapsed();

        // Layer 2b — compute: every work item runs its whole group against one shard's
        // anchors in a single fused multi-query batch.  Work items are independent; the
        // worker pool hands them out dynamically and returns them in item order.
        let compute_started = Instant::now();
        let per_item: Vec<Vec<Vec<f64>>> = self.workers.run_sharded(work_items.len(), |item| {
            let (group_index, shard) = work_items[item];
            let (key, query_indices) = &groups[group_index];
            self.evaluate_group_on_shard(&snapshot, &model, key, query_indices, queries, shard)
        });
        stats.compute_time = compute_started.elapsed();

        // Layer 3 (concatenation half) — per-query estimate lists concatenate in
        // canonical shard order (work items are sorted by (group, shard) and returned in
        // item order).
        let merge_started = Instant::now();
        let mut per_query: Vec<Vec<f64>> = vec![Vec::new(); queries.len()];
        for ((group_index, _), item_estimates) in work_items.iter().zip(per_item) {
            let (_, query_indices) = &groups[*group_index];
            for (&query_index, estimates) in query_indices.iter().zip(item_estimates) {
                per_query[query_index].extend(estimates);
            }
        }
        stats.merge_time = merge_started.elapsed();
        stats.total_time = started.elapsed();
        EntryLists {
            per_query,
            stats,
            pool_version: snapshot.version(),
        }
    }

    /// The top-K serving plan (`config.top_k > 0`): one work item per **query** instead of
    /// per (FROM-clause group, shard).  Each item ranks the query's matching anchors across
    /// all shards by featurization-space similarity ([`PoolSnapshot::matching_top_k`] — a
    /// deterministic total order, so the result is identical at any shard/thread count) and
    /// runs only the best `k` through the containment heads, bounding per-query model cost
    /// by `k` regardless of pool size.
    ///
    /// The per-shard prepared-anchor cache is deliberately bypassed: its slots are keyed
    /// per (shard, FROM clause), but top-K anchor sets vary per query.  Estimates are *not*
    /// bit-identical to the full scan — they are gated by the q-error parity budget the
    /// pool-scale sweep enforces.  `top_k == 0` never reaches this path, which is what
    /// keeps the default configuration bit-identical to the pre-tier service.
    fn serve_top_k(&self, queries: &[Query]) -> ServeResponse {
        let started = Instant::now();
        let mut stats = ServeStats {
            queries: queries.len(),
            ..ServeStats::default()
        };

        // Layer 1 — one immutable (pool, model) pairing for the whole batch, exactly as in
        // the full-scan plan (swap atomicity is mode-independent).
        let snapshot = self.pool.snapshot();
        let model = self.model_snapshot();
        stats.shards = snapshot.num_shards();
        stats.pool_entries = snapshot.len();
        stats.model_version = model.version;
        stats.snapshot_time = started.elapsed();

        // Layer 2a — plan: the unit of work is the query itself (anchor sets are
        // query-dependent, so there is nothing to fuse across a FROM group); groups are
        // still reported for stats continuity.
        let group_started = Instant::now();
        stats.groups = queries
            .iter()
            .map(from_key)
            .collect::<std::collections::BTreeSet<String>>()
            .len();
        stats.work_items = queries.len();
        stats.group_time = group_started.elapsed();

        // Layer 2b — compute: rank, then evaluate the ≤ k survivors.
        let compute_started = Instant::now();
        let k = self.config.top_k;
        let per_query: Vec<Vec<f64>> = self.workers.run_sharded(queries.len(), |index| {
            let query = &queries[index];
            let ranked = snapshot.matching_top_k(query, k);
            if ranked.is_empty() {
                return Vec::new();
            }
            let anchors: Vec<&Query> = ranked.iter().map(|(_, entry)| &entry.query).collect();
            let rates = model.model.predict_batch(&anchors, query);
            ranked
                .iter()
                .zip(rates)
                .filter_map(|(&(_, entry), (x_rate, y_rate))| {
                    self.config
                        .entry_estimate(entry.cardinality, x_rate, y_rate)
                })
                .collect()
        });
        stats.compute_time = compute_started.elapsed();

        // Layer 3 — fold each query's ranked-entry estimates through the final function.
        let merge_started = Instant::now();
        let estimates = fold_entry_lists(
            &self.config,
            self.fallback.as_deref(),
            &per_query,
            queries,
            &mut stats,
        );
        stats.merge_time = merge_started.elapsed();
        stats.total_time = started.elapsed();
        self.phase_hists.observe(&stats);
        ServeResponse {
            estimates,
            stats,
            pool_version: snapshot.version(),
            degraded: Vec::new(),
        }
    }

    /// The `(pool version, model version)` pairing a `serve` issued right now would
    /// compute under — what a cross-window estimate cache probes with at batch-build
    /// time.  Both versions are monotonic (maintenance swaps and
    /// [`swap_model`](EstimatorService::swap_model) only ever publish larger ones), so a
    /// cached estimate filed under the versions its own response reported
    /// ([`ServeResponse::pool_version`], [`ServeStats::model_version`]) matches a probe
    /// only when neither the pool nor the model has changed since it was computed —
    /// version-keyed invalidation, exactly the per-shard anchor caches' discipline.
    pub fn serving_versions(&self) -> (u64, u64) {
        (self.pool.snapshot().version(), self.model_version())
    }

    /// Convenience single-query entry point (a one-element `serve`).
    pub fn estimate_one(&self, query: &Query) -> f64 {
        self.serve(std::slice::from_ref(query)).estimates[0]
    }

    /// The service's degraded answer for one query: the configured fallback estimator if
    /// one is installed, else the flat default estimate — exactly what `serve` resolves
    /// a query to when no pool entry survives the ε-filter.  The serving runtime uses
    /// this to answer tickets whose batch panicked (tagged `Degraded`): a reduced-
    /// fidelity estimate within budget instead of a hang or an error.  Deliberately
    /// avoids the pool/model/worker-pool machinery — the paths a mid-batch panic may
    /// have been caused by.
    pub fn fallback_estimate(&self, query: &Query) -> f64 {
        match &self.fallback {
            Some(fallback) => fallback.estimate(query),
            None => self.config.default_estimate,
        }
    }

    /// One work item: a FROM-clause group of queries against one shard's matching anchors,
    /// computed under one model snapshot (the one `serve` took for the whole batch).
    /// Returns per-query (in group order) per-entry estimate lists, ε-filtered.
    fn evaluate_group_on_shard(
        &self,
        snapshot: &PoolSnapshot,
        model: &ModelSnapshot<M>,
        key: &str,
        query_indices: &[usize],
        queries: &[Query],
        shard: usize,
    ) -> Vec<Vec<f64>> {
        let shard_storage = snapshot.shard(shard);
        let mut anchors: Vec<&Query> = Vec::new();
        let mut cardinalities: Vec<u64> = Vec::new();
        for entry in shard_storage.matching_key(key) {
            anchors.push(&entry.query);
            cardinalities.push(entry.cardinality);
        }
        let group_queries: Vec<&Query> = query_indices.iter().map(|&i| &queries[i]).collect();
        let prepared = self.prepared_for_shard(snapshot, model, shard, key, &anchors);
        // A model with nothing to precompute still goes through the multi-query entry
        // point: the default implementation ignores the (dummy) state and loops the
        // unprepared batch path.
        static NO_STATE: () = ();
        let state: &(dyn Any + Send + Sync) = match &prepared {
            Some(state) => state.as_ref(),
            None => &NO_STATE,
        };
        let per_query_rates =
            model
                .model
                .predict_batch_prepared_multi(state, &anchors, &group_queries);
        per_query_rates
            .into_iter()
            .map(|rates| {
                cardinalities
                    .iter()
                    .zip(rates)
                    .filter_map(|(&cardinality, (x_rate, y_rate))| {
                        // The one shared definition of a per-entry estimate — the
                        // bit-parity contract with sequential serving depends on it.
                        self.config.entry_estimate(cardinality, x_rate, y_rate)
                    })
                    .collect()
            })
            .collect()
    }

    /// Returns (building on first use) the model's serving state for one shard's anchors of
    /// one FROM clause, keyed by the shard's snapshot version *and* the model snapshot's
    /// version — maintenance that replaced the shard invalidates exactly these entries,
    /// and a model hot-swap invalidates every entry the old model encoded (a stale cache
    /// here would serve old-model anchor encodings through the new model's head: the
    /// stale-cache-after-swap regression test below pins this).
    fn prepared_for_shard(
        &self,
        snapshot: &PoolSnapshot,
        model: &ModelSnapshot<M>,
        shard: usize,
        key: &str,
        anchors: &[&Query],
    ) -> Option<Arc<dyn Any + Send + Sync>> {
        let pool_version = snapshot.shard_version(shard);
        let model_version = model.version;
        let cache_key = (shard, key.to_string());
        if let Some(cached) = self.prepared.lock().expect("not poisoned").get(&cache_key) {
            if cached.pool_version == pool_version && cached.model_version == model_version {
                return cached.state.clone();
            }
        }
        // Build outside the lock (see `Cnt2Crd::prepared_for`): racing builders produce
        // equivalent states and the first insert wins.
        let state: Option<Arc<dyn Any + Send + Sync>> =
            model.model.prepare_anchors(anchors).map(Arc::from);
        let mut cache = self.prepared.lock().expect("not poisoned");
        let entry = cache.entry(cache_key).or_insert(CachedShardAnchors {
            pool_version,
            model_version,
            state: state.clone(),
        });
        let stale = entry.pool_version != pool_version || entry.model_version != model_version;
        // Replace only a *strictly older* entry: while an old-snapshot serve drains
        // concurrently with a new-snapshot one, the old reader must not downgrade the
        // cache the new readers key on (both versions are monotonic, so lexicographic
        // (model, pool) order is "older").
        if stale && (entry.model_version, entry.pool_version) < (model_version, pool_version) {
            *entry = CachedShardAnchors {
                pool_version,
                model_version,
                state: state.clone(),
            };
            return state;
        }
        if stale {
            // Our state is valid for *our* snapshot even though the cache keeps a newer
            // entry; serve with it rather than the mismatched cached one.
            return state;
        }
        entry.state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnt2crd::Cnt2Crd;
    use crate::crd2cnt::Crd2Cnt;
    use crate::model::CrnModel;
    use crate::pool::QueriesPool;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};
    use crn_db::Database;
    use crn_estimators::{PostgresEstimator, TrueCardinality};
    use crn_exec::label_containment_pairs;
    use crn_nn::TrainConfig;
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    fn trained_crn(db: &Database, seed: u64) -> CrnModel {
        let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
        let pairs = gen.generate_pairs(30, 120);
        let samples = label_containment_pairs(db, &pairs, 4);
        let mut crn = CrnModel::new(db, TrainConfig::fast_test());
        crn.fit(&samples);
        crn
    }

    fn workload(db: &Database, seed: u64, count: usize) -> Vec<Query> {
        let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
        gen.generate_queries(count)
    }

    /// The acceptance-criterion parity pin: at shards = 1/2/8 (and several thread counts)
    /// the service's estimate for every query is **bit-identical** to the sequential
    /// single-query `Cnt2Crd::per_entry_estimates` path over the same (flattened) pool —
    /// for the trained CRN model (fused batched GEMM serving) and for the oracle pipeline
    /// (default trait serving).
    #[test]
    fn service_is_bit_identical_to_sequential_cnt2crd() {
        let db = generate_imdb(&ImdbConfig::tiny(80));
        let pool = QueriesPool::generate(&db, 60, 2, 80);
        let queries = workload(&db, 81, 30);
        let crn = trained_crn(&db, 81);

        let sequential_crn = Cnt2Crd::new(crn.clone(), pool.clone())
            .with_fallback(Box::new(PostgresEstimator::analyze(&db)));
        let sequential_oracle = Cnt2Crd::new(Crd2Cnt::new(TrueCardinality::new(&db)), pool.clone());
        let expected_crn: Vec<f64> = queries.iter().map(|q| sequential_crn.estimate(q)).collect();
        let expected_oracle: Vec<f64> = queries
            .iter()
            .map(|q| sequential_oracle.estimate(q))
            .collect();
        let mut covered = 0usize;
        for shards in [1usize, 2, 8] {
            for threads in [1usize, 4] {
                let workers = WorkerPool::shared(threads);
                let service = EstimatorService::new(
                    crn.clone(),
                    ShardedPool::from_pool(&pool, shards),
                    workers.clone(),
                )
                .with_fallback(Box::new(PostgresEstimator::analyze(&db)));
                let response = service.serve(&queries);
                assert_eq!(response.estimates.len(), queries.len());
                for (index, (actual, expected)) in
                    response.estimates.iter().zip(&expected_crn).enumerate()
                {
                    assert!(
                        actual == expected,
                        "CRN shards={shards} threads={threads} query {index}: \
                         service {actual} vs sequential {expected}"
                    );
                }
                covered += response.stats.pool_hits;
                assert_eq!(
                    response.stats.pool_hits + response.stats.fallbacks,
                    queries.len()
                );

                let oracle_service = EstimatorService::new(
                    Crd2Cnt::new(TrueCardinality::new(&db)),
                    ShardedPool::from_pool(&pool, shards),
                    workers,
                );
                let oracle_response = oracle_service.serve(&queries);
                for (index, (actual, expected)) in oracle_response
                    .estimates
                    .iter()
                    .zip(&expected_oracle)
                    .enumerate()
                {
                    assert!(
                        actual == expected,
                        "oracle shards={shards} threads={threads} query {index}: \
                         service {actual} vs sequential {expected}"
                    );
                }
            }
        }
        assert!(covered > 5, "the pool should cover several test queries");
    }

    /// `Cnt2Crd::with_serving` (canonical-hash anchor shards on the persistent pool) must
    /// produce a bit-exact permutation of the unsharded per-entry list — and therefore a
    /// bit-identical final estimate.
    #[test]
    fn sharded_cnt2crd_is_a_bit_exact_permutation_of_unsharded() {
        let db = generate_imdb(&ImdbConfig::tiny(82));
        let pool = QueriesPool::generate(&db, 60, 2, 82);
        let queries = workload(&db, 83, 20);
        let crn = trained_crn(&db, 83);
        let unsharded = Cnt2Crd::new(crn.clone(), pool.clone());
        for shards in [2usize, 8] {
            let sharded =
                Cnt2Crd::new(crn.clone(), pool.clone()).with_serving(shards, WorkerPool::shared(4));
            for query in &queries {
                let mut expected = unsharded.per_entry_estimates(query);
                let mut actual = sharded.per_entry_estimates(query);
                assert_eq!(expected.len(), actual.len(), "same anchors survive ε");
                expected.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                actual.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                assert_eq!(expected, actual, "shards = {shards}, query {query}");
                assert!(
                    crn_estimators::CardinalityEstimator::estimate(&unsharded, query)
                        == crn_estimators::CardinalityEstimator::estimate(&sharded, query),
                    "estimates must be bit-identical"
                );
            }
        }
    }

    /// The fused multi-query serving of the CRN model must be bit-identical, per query, to
    /// the single-query prepared path.
    #[test]
    fn fused_group_serving_matches_single_query_serving() {
        use crn_estimators::ContainmentEstimator;
        let db = generate_imdb(&ImdbConfig::tiny(84));
        let crn = trained_crn(&db, 84);
        let pool = QueriesPool::generate(&db, 40, 1, 84);
        let scan = Query::scan(tables::TITLE);
        let anchors: Vec<&Query> = pool.matching(&scan).map(|e| &e.query).collect();
        assert!(anchors.len() >= 2, "fixture needs anchors");
        let queries = workload(&db, 85, 12);
        let group: Vec<&Query> = queries
            .iter()
            .filter(|q| q.tables() == scan.tables())
            .chain(std::iter::once(&scan))
            .collect();
        let prepared = crn.prepare_anchors(&anchors).expect("anchors prepare");
        let multi = crn.predict_batch_prepared_multi(prepared.as_ref(), &anchors, &group);
        assert_eq!(multi.len(), group.len());
        for (query, rates) in group.iter().zip(&multi) {
            let single = crn.predict_batch_prepared(prepared.as_ref(), &anchors, query);
            assert_eq!(
                rates, &single,
                "fused group rates must match single-query rates"
            );
        }
        // Empty cases short-circuit.
        assert!(crn
            .predict_batch_prepared_multi(prepared.as_ref(), &[], &group)
            .iter()
            .all(|rates| rates.is_empty()));
        assert!(crn
            .predict_batch_prepared_multi(prepared.as_ref(), &anchors, &[])
            .is_empty());
    }

    /// Pool maintenance between `serve` calls: new snapshots (and shard versions) are
    /// picked up, stale per-shard anchor caches are invalidated, and in-flight semantics
    /// stay exactly the sequential ones.
    #[test]
    fn maintenance_between_serves_invalidates_per_shard_caches() {
        let db = generate_imdb(&ImdbConfig::tiny(86));
        let pool = QueriesPool::generate(&db, 50, 1, 86);
        let crn = trained_crn(&db, 86);
        let queries = workload(&db, 87, 15);
        let service = EstimatorService::new(
            crn.clone(),
            ShardedPool::from_pool(&pool, 4),
            WorkerPool::shared(2),
        );
        // Warm the caches.
        let first = service.serve(&queries);
        assert_eq!(first.estimates.len(), queries.len());

        // Mutate: drop every anchor of the first query's FROM clause, add one back.
        let victim = &queries[0];
        let victims: Vec<Query> = pool
            .matching(victim)
            .map(|entry| entry.query.clone())
            .collect();
        assert!(!victims.is_empty(), "fixture covers the victim query");
        let mut updated = pool.clone();
        for query in &victims {
            assert!(service.pool().remove(query).is_some());
            updated.remove(query);
        }
        assert!(service.pool().insert(victims[0].clone(), 123));
        updated.insert(victims[0].clone(), 123);

        // The next serve must agree bit-for-bit with the sequential path over the updated
        // pool — a stale anchor cache (pre-removal encodings) would break this.
        let sequential = Cnt2Crd::new(crn, updated);
        let second = service.serve(&queries);
        for (index, (actual, query)) in second.estimates.iter().zip(&queries).enumerate() {
            let expected = crn_estimators::CardinalityEstimator::estimate(&sequential, query);
            assert!(
                *actual == expected,
                "query {index} after maintenance: service {actual} vs sequential {expected}"
            );
        }
    }

    /// Stats bookkeeping: groups, work items, hits and fallbacks add up, and the fallback
    /// estimator is consulted exactly when no pool entry matches.
    #[test]
    fn serve_stats_and_fallbacks_add_up() {
        let db = generate_imdb(&ImdbConfig::tiny(88));
        let crn = trained_crn(&db, 88);
        // A pool covering only `title` scans.
        let mut pool = QueriesPool::new();
        pool.insert(Query::scan(tables::TITLE), 100);
        let service =
            EstimatorService::new(crn, ShardedPool::from_pool(&pool, 4), WorkerPool::shared(2))
                .with_fallback(Box::new(PostgresEstimator::analyze(&db)));
        assert!(service.name().starts_with("EstimatorService("));
        let queries = vec![
            Query::scan(tables::TITLE),
            Query::scan(tables::TITLE),
            Query::scan(tables::MOVIE_COMPANIES),
        ];
        let response = service.serve(&queries);
        let stats = &response.stats;
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.groups, 2, "two distinct FROM clauses");
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.pool_entries, 1);
        assert_eq!(stats.work_items, 1, "only the covered group hits a shard");
        assert_eq!(stats.pool_hits + stats.fallbacks, 3);
        assert!(stats.fallbacks >= 1, "the uncovered FROM clause falls back");
        let expected_fallback = PostgresEstimator::analyze(&db).estimate(&queries[2]);
        assert_eq!(response.estimates[2], expected_fallback);
        assert!(stats.total_time >= stats.compute_time);
        assert!(stats.render().contains("3 queries in 2 groups"));
        // Single-query convenience agrees with the batch path.
        assert_eq!(service.estimate_one(&queries[0]), response.estimates[0]);
        // An empty slice is a no-op.
        let empty = service.serve(&[]);
        assert!(empty.estimates.is_empty());
        assert_eq!(empty.stats.work_items, 0);
    }

    /// The empty-pool fallback path: every query falls back (to the configured default
    /// estimate without a fallback estimator), no work items are planned, and the timings
    /// stay monotone (every phase fits inside the total).
    #[test]
    fn serve_stats_on_an_empty_pool_are_all_fallbacks() {
        let db = generate_imdb(&ImdbConfig::tiny(95));
        let crn = trained_crn(&db, 95);
        // `workload` expands each initial query with perturbed variants, so count what it
        // actually produced.
        let queries = workload(&db, 96, 9);
        let total = queries.len();
        let service = EstimatorService::new(crn, ShardedPool::new(4), WorkerPool::shared(2));
        let response = service.serve(&queries);
        let stats = &response.stats;
        assert_eq!(stats.queries, total);
        assert_eq!(stats.pool_entries, 0);
        assert_eq!(stats.work_items, 0, "an empty pool plans no work");
        assert_eq!(stats.pool_hits, 0);
        assert_eq!(stats.fallbacks, total, "every query falls back");
        let default = service.config().default_estimate;
        assert!(response.estimates.iter().all(|&e| e == default));
        assert!(
            stats.total_time >= stats.phase_time(),
            "phases are disjoint sub-intervals of the total"
        );
    }

    /// The no-matching-anchors fallback path: a pool that covers *other* FROM clauses
    /// plans no work for the uncovered group, and the configured fallback estimator (not
    /// the default) answers.
    #[test]
    fn serve_stats_when_no_anchor_matches_use_the_fallback_estimator() {
        let db = generate_imdb(&ImdbConfig::tiny(97));
        let crn = trained_crn(&db, 97);
        let mut pool = QueriesPool::new();
        pool.insert(Query::scan(tables::TITLE), 100);
        pool.insert(Query::scan(tables::CAST_INFO), 60);
        let service =
            EstimatorService::new(crn, ShardedPool::from_pool(&pool, 4), WorkerPool::shared(2))
                .with_fallback(Box::new(PostgresEstimator::analyze(&db)));
        // Neither query's FROM clause is covered by the pool.
        let queries = vec![
            Query::scan(tables::MOVIE_COMPANIES),
            Query::scan(tables::MOVIE_INFO),
        ];
        let response = service.serve(&queries);
        let stats = &response.stats;
        assert_eq!(stats.pool_entries, 2);
        assert_eq!(stats.work_items, 0, "no shard matches either FROM clause");
        assert_eq!(stats.pool_hits, 0);
        assert_eq!(stats.fallbacks, 2);
        let fallback = PostgresEstimator::analyze(&db);
        for (query, estimate) in queries.iter().zip(&response.estimates) {
            assert_eq!(*estimate, fallback.estimate(query));
        }
        assert!(stats.total_time >= stats.phase_time());
    }

    /// The all-duplicates batch: one FROM-clause group, per-query results bit-identical,
    /// and hit/fallback counters that add up to the (duplicated) query count.  Also pins
    /// `accumulate`: counters add and timings stay monotone across folds.
    #[test]
    fn serve_stats_on_all_duplicate_batches_and_accumulate_are_monotone() {
        let db = generate_imdb(&ImdbConfig::tiny(98));
        let pool = QueriesPool::generate(&db, 40, 1, 98);
        let crn = trained_crn(&db, 98);
        let service =
            EstimatorService::new(crn, ShardedPool::from_pool(&pool, 4), WorkerPool::shared(2));
        let covered = pool.entries()[0].query.clone();
        let queries: Vec<Query> = std::iter::repeat_with(|| covered.clone()).take(8).collect();
        let response = service.serve(&queries);
        let stats = &response.stats;
        assert_eq!(stats.queries, 8);
        assert_eq!(stats.groups, 1, "duplicates collapse into one group");
        assert_eq!(stats.pool_hits + stats.fallbacks, 8);
        assert_eq!(stats.pool_hits, 8, "the pool covers its own entry");
        assert!(response
            .estimates
            .iter()
            .all(|&e| e == response.estimates[0]));
        assert!(stats.total_time >= stats.phase_time());

        // Accumulation is monotone: every counter and timing of the running total is
        // >= its value after the previous fold.
        let mut total = ServeStats::default();
        let mut last_queries = 0usize;
        let mut last_total_time = Duration::ZERO;
        for _ in 0..3 {
            let stats = service.serve(&queries).stats;
            total.accumulate(&stats);
            assert!(total.queries > last_queries);
            assert!(total.total_time >= last_total_time);
            assert!(total.total_time >= total.phase_time());
            last_queries = total.queries;
            last_total_time = total.total_time;
        }
        assert_eq!(total.queries, 24);
        assert_eq!(total.pool_hits + total.fallbacks, 24);
        assert_eq!(
            total.shards, 4,
            "accumulate keeps the latest snapshot shape"
        );
        assert_eq!(total.pool_entries, pool.len());
    }

    /// Concurrent `serve` callers share the worker pool and the caches without interfering:
    /// every caller gets the bit-exact sequential answer.
    #[test]
    fn concurrent_serve_calls_agree_with_sequential() {
        let db = generate_imdb(&ImdbConfig::tiny(89));
        let pool = QueriesPool::generate(&db, 50, 1, 89);
        let crn = trained_crn(&db, 89);
        let queries = workload(&db, 90, 12);
        let sequential = Cnt2Crd::new(crn.clone(), pool.clone());
        let expected: Vec<f64> = queries
            .iter()
            .map(|q| crn_estimators::CardinalityEstimator::estimate(&sequential, q))
            .collect();
        let service =
            EstimatorService::new(crn, ShardedPool::from_pool(&pool, 4), WorkerPool::shared(3));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..3 {
                        let response = service.serve(&queries);
                        assert_eq!(response.estimates, expected);
                    }
                });
            }
        });
    }

    /// The stale-cache-after-swap regression test: a model hot-swap must invalidate
    /// exactly the per-shard anchor caches the old model encoded.  With the cache keyed
    /// on the pool shard version only, the post-swap serve would push old-model anchor
    /// encodings through the new model's containment head and silently drift from the
    /// sequential path.
    #[test]
    fn hot_swap_invalidates_anchor_caches_exactly() {
        let db = generate_imdb(&ImdbConfig::tiny(99));
        let pool = QueriesPool::generate(&db, 50, 1, 99);
        let queries = workload(&db, 100, 15);
        let model_a = trained_crn(&db, 99);
        let model_b = trained_crn(&db, 101);
        let expected = |model: &CrnModel| -> Vec<f64> {
            let sequential = Cnt2Crd::new(model.clone(), pool.clone());
            queries
                .iter()
                .map(|q| crn_estimators::CardinalityEstimator::estimate(&sequential, q))
                .collect()
        };
        let expected_a = expected(&model_a);
        let expected_b = expected(&model_b);
        assert_ne!(expected_a, expected_b, "fixture models must disagree");

        let service = EstimatorService::new(
            model_a.clone(),
            ShardedPool::from_pool(&pool, 4),
            WorkerPool::shared(2),
        );
        assert_eq!(service.model_version(), 1);
        // Warm every per-shard anchor cache under model A.
        let first = service.serve(&queries);
        assert_eq!(first.estimates, expected_a);
        assert_eq!(first.stats.model_version, 1);

        // Hot-swap to B: the warmed caches are for A's encodings and must not be served.
        let version_b = service.swap_model(model_b.clone());
        assert_eq!(version_b, 2);
        assert_eq!(service.model_version(), 2);
        let second = service.serve(&queries);
        assert_eq!(
            second.estimates, expected_b,
            "post-swap serving must be bit-identical to sequential serving under the new model"
        );
        assert_eq!(second.stats.model_version, version_b);

        // Swap back to A: again no stale reuse (now of B's cached encodings), and the
        // version keeps moving forward.
        let version_a_again = service.swap_model(model_a.clone());
        assert_eq!(version_a_again, 3);
        let third = service.serve(&queries);
        assert_eq!(third.estimates, expected_a);
        assert_eq!(third.stats.model_version, version_a_again);

        // Pool maintenance composes with model versioning: an upsert bumps the touched
        // shard's pool version and the next serve agrees bit-for-bit with the sequential
        // path over the updated pool under the current model.
        let victim = pool.entries()[0].clone();
        service
            .pool()
            .upsert(victim.query.clone(), victim.cardinality + 17);
        let mut updated = pool.clone();
        updated.upsert(victim.query, victim.cardinality + 17);
        let sequential = Cnt2Crd::new(model_a, updated);
        let fourth = service.serve(&queries);
        assert_eq!(fourth.stats.model_version, version_a_again);
        for (index, (actual, query)) in fourth.estimates.iter().zip(&queries).enumerate() {
            let expected = crn_estimators::CardinalityEstimator::estimate(&sequential, query);
            assert!(
                *actual == expected,
                "query {index} after upsert+swap: service {actual} vs sequential {expected}"
            );
        }
    }
}

#[cfg(test)]
mod swap_proptests {
    //! Swap atomicity under concurrent serve + refresh: every served batch's estimates
    //! must match **exactly one** model snapshot (old or new) — never a blend — at
    //! shards {1, 4} × workers {1, 4}.  The reported `ServeStats::model_version` must
    //! name that snapshot.

    use super::*;
    use crate::cnt2crd::Cnt2Crd;
    use crate::model::CrnModel;
    use crate::pool::QueriesPool;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use crn_db::Database;
    use crn_exec::label_containment_pairs;
    use crn_nn::TrainConfig;
    use crn_query::generator::{GeneratorConfig, QueryGenerator};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;
    use std::sync::OnceLock;

    /// Everything the (expensive) fixture provides: two differently-trained models, a
    /// pool, a workload, and the per-model sequential expectations.
    struct SwapFixture {
        model_a: CrnModel,
        model_b: CrnModel,
        pool: QueriesPool,
        queries: Vec<Query>,
        expected_a: Vec<f64>,
        expected_b: Vec<f64>,
    }

    fn trained(db: &Database, seed: u64) -> CrnModel {
        let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
        let pairs = gen.generate_pairs(30, 100);
        let samples = label_containment_pairs(db, &pairs, 4);
        let mut crn = CrnModel::new(db, TrainConfig::fast_test());
        crn.fit(&samples);
        crn
    }

    fn fixture() -> &'static SwapFixture {
        static FIXTURE: OnceLock<SwapFixture> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let db = generate_imdb(&ImdbConfig::tiny(110));
            let pool = QueriesPool::generate(&db, 50, 1, 110);
            let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(111));
            let queries = gen.generate_queries(18);
            let model_a = trained(&db, 110);
            let model_b = trained(&db, 112);
            let expected = |model: &CrnModel| -> Vec<f64> {
                let sequential = Cnt2Crd::new(model.clone(), pool.clone());
                queries
                    .iter()
                    .map(|q| crn_estimators::CardinalityEstimator::estimate(&sequential, q))
                    .collect()
            };
            let expected_a = expected(&model_a);
            let expected_b = expected(&model_b);
            assert_ne!(expected_a, expected_b, "fixture models must disagree");
            SwapFixture {
                model_a,
                model_b,
                pool,
                queries,
                expected_a,
                expected_b,
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Random swap cadences against a continuously serving thread: every response is
        /// bit-identical to the sequential computation under the single snapshot its
        /// `model_version` names.
        #[test]
        fn concurrent_serve_and_refresh_never_blend_snapshots(seed in 0u64..10_000) {
            let fx = fixture();
            let mut rng = StdRng::seed_from_u64(seed);
            for shards in [1usize, 4] {
                for threads in [1usize, 4] {
                    let service = EstimatorService::new(
                        fx.model_a.clone(),
                        ShardedPool::from_pool(&fx.pool, shards),
                        WorkerPool::shared(threads),
                    );
                    // version -> the expected estimates of the model it serves.
                    let mut by_version: BTreeMap<u64, &Vec<f64>> = BTreeMap::new();
                    by_version.insert(1, &fx.expected_a);
                    let swaps = rng.gen_range(1usize..4);
                    let swap_pauses: Vec<u64> =
                        (0..swaps).map(|_| rng.gen_range(0u64..400)).collect();
                    let serves = rng.gen_range(3usize..7);
                    let responses = std::thread::scope(|scope| {
                        let server = {
                            let service = &service;
                            let queries = &fx.queries;
                            scope.spawn(move || {
                                (0..serves)
                                    .map(|_| {
                                        let response = service.serve(queries);
                                        (response.stats.model_version, response.estimates)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        };
                        // The refresher: alternate B/A swaps with random pauses, exactly
                        // what the online controller's hot-swap does under live traffic.
                        for (index, pause) in swap_pauses.iter().enumerate() {
                            std::thread::sleep(std::time::Duration::from_micros(*pause));
                            let (model, expected) = if index % 2 == 0 {
                                (fx.model_b.clone(), &fx.expected_b)
                            } else {
                                (fx.model_a.clone(), &fx.expected_a)
                            };
                            let version = service.swap_model(model);
                            by_version.insert(version, expected);
                        }
                        server.join().expect("serving thread")
                    });
                    for (index, (version, estimates)) in responses.iter().enumerate() {
                        let expected = by_version.get(version).unwrap_or_else(|| {
                            panic!("serve {index} reported unknown model version {version}")
                        });
                        prop_assert!(
                            estimates == *expected,
                            "shards={shards} threads={threads} serve {index}: a batch \
                             must match exactly the snapshot its version names (v{version})"
                        );
                    }
                }
            }
        }
    }
}
