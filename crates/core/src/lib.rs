//! `crn-core` — the paper's primary contribution: learned containment rates and the
//! containment-based cardinality estimation technique.
//!
//! * [`featurize`] — the shared-format vector featurization of query pairs (§3.2.1, Table 1);
//! * [`model`] — the CRN model: per-query set encoders, average pooling, the `Expand`
//!   combination and the containment head, trained on the q-error objective (§3.2–3.3);
//! * [`crd2cnt`] — `Crd2Cnt(M)`: any cardinality estimator as a containment estimator (§4.1);
//! * [`pool`] — the queries pool of previously executed queries with true cardinalities
//!   (§5.2), layered as [`pool::PoolShard`] storage units behind the classic
//!   [`QueriesPool`] facade;
//! * [`sharded`] — the sharded pool: N canonical-hash shards behind an immutable-snapshot
//!   API, the storage layer of the concurrent serving subsystem;
//! * [`cnt2crd`] — `Cnt2Crd(M)`: the queries-pool cardinality estimation technique with its
//!   Median/Mean/TrimmedMean final functions (§5.1, §5.3, Figure 8), optionally sharded
//!   over a persistent worker pool;
//! * [`service`] — the concurrent serving front-end: FROM-clause-grouped fused batches of
//!   concurrent queries against a shared pool snapshot, with per-layer stats;
//! * [`improved`] — `Improved(M) = Cnt2Crd(Crd2Cnt(M))`, the drop-in improvement of existing
//!   estimators (§7).
//!
//! # Quick start
//!
//! ```
//! use crn_core::{Cnt2Crd, Crd2Cnt, CrnModel, QueriesPool};
//! use crn_db::imdb::{generate_imdb, ImdbConfig};
//! use crn_estimators::{CardinalityEstimator, ContainmentEstimator, PostgresEstimator};
//! use crn_nn::TrainConfig;
//! use crn_query::Query;
//!
//! let db = generate_imdb(&ImdbConfig::tiny(1));
//!
//! // An (untrained) CRN model already exposes the containment-rate API.
//! let crn = CrnModel::new(&db, TrainConfig::fast_test());
//! let scan = Query::scan("title");
//! let rate = crn.estimate_containment(&scan, &scan);
//! assert!((0.0..=1.0).contains(&rate));
//!
//! // The full cardinality pipeline: containment model + queries pool.
//! let pool = QueriesPool::generate(&db, 30, 1, 7);
//! let estimator = Cnt2Crd::new(Crd2Cnt::new(PostgresEstimator::analyze(&db)), pool);
//! assert!(estimator.estimate(&scan) >= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cnt2crd;
pub mod compound;
pub mod crd2cnt;
pub mod featurize;
pub mod improved;
pub mod model;
pub mod persist;
pub mod pool;
pub mod service;
pub mod sharded;

pub use cnt2crd::{Cnt2Crd, Cnt2CrdConfig, FinalFunction};
pub use compound::CompoundQuery;
pub use crd2cnt::Crd2Cnt;
pub use featurize::CrnFeaturizer;
pub use improved::ImprovedEstimator;
pub use model::{CrnModel, CrnOptions, ExpandMode, Pooling, RATE_FLOOR};
pub use persist::PersistError;
pub use pool::{
    anchor_score, feature_signature, from_key, query_hash, PoolEntry, PoolShard, QueriesPool,
    DEFAULT_RETENTION_WEIGHT,
};
pub use service::{
    fold_entry_lists, plan_groups, EntryLists, EstimatorService, ModelSnapshot, ServeResponse,
    ServeStats,
};
pub use sharded::{PoolSnapshot, ShardedPool};
