//! The `Crd2Cnt` transformation: any cardinality estimator becomes a containment-rate
//! estimator (paper §4.1.1).
//!
//! Given a cardinality estimation model `M` and a query pair `(Q1, Q2)` with identical FROM
//! clauses, the containment rate is estimated as
//!
//! ```text
//! Q1 ⊂% Q2  ≈  M(|Q1 ∩ Q2|) / M(|Q1|)
//! ```
//!
//! where `Q1 ∩ Q2` is the intersection query (same SELECT/FROM, conjunction of both WHERE
//! clauses).  By definition the rate is 0 when `M(|Q1|)` is 0.  This is how the paper converts
//! PostgreSQL and MSCN into the `Crd2Cnt(PostgreSQL)` / `Crd2Cnt(MSCN)` baselines of §4.3.

use crn_estimators::{CardinalityEstimator, ContainmentEstimator};
use crn_query::ast::Query;

/// Wraps a cardinality estimator as a containment-rate estimator.
pub struct Crd2Cnt<M> {
    inner: M,
    name: String,
}

impl<M: CardinalityEstimator> Crd2Cnt<M> {
    /// Wraps the given cardinality estimator.
    pub fn new(inner: M) -> Self {
        let name = format!("Crd2Cnt({})", inner.name());
        Crd2Cnt { inner, name }
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwraps the inner estimator.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: CardinalityEstimator> ContainmentEstimator for Crd2Cnt<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate_containment(&self, q1: &Query, q2: &Query) -> f64 {
        let Some(intersection) = q1.intersect(q2) else {
            // Containment is undefined across different FROM clauses; 0 is the conservative
            // answer (no rows of Q1 can appear in Q2's result).
            return 0.0;
        };
        let card_q1 = self.inner.estimate(q1);
        if card_q1 <= 0.0 {
            return 0.0;
        }
        let card_intersection = self.inner.estimate(&intersection);
        (card_intersection / card_q1).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};
    use crn_db::schema::ColumnRef;
    use crn_db::value::CompareOp;
    use crn_estimators::{PostgresEstimator, TrueCardinality};
    use crn_exec::Executor;
    use crn_query::ast::Predicate;
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    #[test]
    fn oracle_through_crd2cnt_reproduces_exact_rates() {
        // Feeding the exact-cardinality oracle through Crd2Cnt must give exact containment
        // rates — this validates the transformation itself.
        let db = generate_imdb(&ImdbConfig::tiny(33));
        let oracle = Crd2Cnt::new(TrueCardinality::new(&db));
        let exec = Executor::new(&db);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(33));
        for (q1, q2) in gen.generate_pairs(20, 60) {
            let estimated = oracle.estimate_containment(&q1, &q2);
            let truth = exec.containment_rate(&q1, &q2).unwrap();
            assert!(
                (estimated - truth).abs() < 1e-9,
                "oracle transformation must be exact: {estimated} vs {truth} for {q1} / {q2}"
            );
        }
        assert_eq!(oracle.name(), "Crd2Cnt(TrueCardinality)");
    }

    #[test]
    fn different_from_clauses_yield_zero() {
        let db = generate_imdb(&ImdbConfig::tiny(34));
        let estimator = Crd2Cnt::new(PostgresEstimator::analyze(&db));
        let a = Query::scan(tables::TITLE);
        let b = Query::scan(tables::CAST_INFO);
        assert_eq!(estimator.estimate_containment(&a, &b), 0.0);
    }

    #[test]
    fn postgres_through_crd2cnt_sees_full_containment_of_identical_queries() {
        let db = generate_imdb(&ImdbConfig::tiny(35));
        let estimator = Crd2Cnt::new(PostgresEstimator::analyze(&db));
        let q = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                ColumnRef::new(tables::TITLE, "production_year"),
                CompareOp::Gt,
                1990,
            )],
        );
        // Q ∩ Q = Q, so any consistent estimator reports a rate of exactly 1.
        let rate = estimator.estimate_containment(&q, &q);
        assert!((rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rates_are_non_negative_on_random_pairs() {
        let db = generate_imdb(&ImdbConfig::tiny(36));
        let estimator = Crd2Cnt::new(PostgresEstimator::analyze(&db));
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(36));
        for (q1, q2) in gen.generate_pairs(15, 40) {
            let rate = estimator.estimate_containment(&q1, &q2);
            assert!(rate >= 0.0 && rate.is_finite());
        }
    }
}
