//! The queries pool: previously executed queries with their actual cardinalities (paper §5.2).
//!
//! The pool is envisioned as an additional DBMS component: a compact record of queries that
//! have already been executed (or were executed ahead of time by a generator) together with
//! their true result cardinalities — *not* their results.  The `Cnt2Crd` cardinality
//! estimation technique matches a new query against every pool entry with the same FROM
//! clause, so the pool is indexed by FROM-clause table set.
//!
//! Storage is layered (the serving subsystem's storage layer):
//!
//! * [`PoolShard`] — the actual storage unit: entries plus the FROM-clause and
//!   canonical-hash indexes over them.  One shard is exactly the former monolithic pool.
//! * [`QueriesPool`] — the classic single-owner API, now a thin facade over **one** shard;
//!   `generate`/`truncated`/persist round-trips are unchanged.
//! * [`crate::sharded::ShardedPool`] — N shards keyed by canonical query hash behind an
//!   immutable-snapshot API, the storage the concurrent
//!   [`crate::service::EstimatorService`] reads.

use crn_db::database::Database;
use crn_exec::Executor;
use crn_query::ast::Query;
use crn_query::generator::{GeneratorConfig, QueryGenerator};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

/// The retention weight every anchor starts with (and the weight a query absent from the
/// weight side-car reports).  Feedback moves weights *down* from here toward the q-error
/// signal, so an anchor that keeps producing bad estimates sinks below fresh ones.
pub const DEFAULT_RETENTION_WEIGHT: f64 = 1.0;

/// EMA decay of the retention weight: `w ← DECAY·w + (1 − DECAY)·signal` with
/// `signal = 1 / max(q_error, 1)`.  At 0.7 an anchor needs a few consecutive bad
/// estimates to sink — one outlier execution cannot evict a good anchor.
const RETENTION_DECAY: f64 = 0.7;

/// One pool entry: a previously executed query and its actual cardinality.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolEntry {
    /// The executed query.
    pub query: Query,
    /// Its true result cardinality.
    pub cardinality: u64,
}

/// One shard of queries-pool storage: a slice of the entries with the FROM-clause index and
/// the duplicate (canonical-hash) index over exactly those entries.
///
/// A shard is the unit the serving layer evaluates in parallel: every shard's `matching`
/// list is a disjoint subset of the pool-wide matching list, and concatenating the per-shard
/// lists in canonical shard order reproduces a full scan.  [`QueriesPool`] is one shard
/// behind the classic API; [`crate::sharded::ShardedPool`] distributes entries over many
/// shards by canonical query hash.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PoolShard {
    entries: Vec<PoolEntry>,
    /// Index from FROM-clause key (tables joined by `,`) to entry positions.  String keys keep
    /// the pool JSON-serializable (§5.2 envisions it as durable DBMS meta information).
    by_from: BTreeMap<String, Vec<usize>>,
    /// Index from canonical query hash to entry positions: duplicate detection on insert is
    /// O(1) expected instead of a linear scan over the whole shard, so bulk construction of a
    /// shard of `n` entries is O(n) expected rather than O(n²).  Hash collisions are resolved
    /// by comparing the (few) colliding entries for real equality.
    ///
    /// Never serialized: `DefaultHasher`'s algorithm is not guaranteed stable across Rust
    /// releases, so a persisted index could silently disagree with the hashes a newer binary
    /// computes.  It is rebuilt after loading ([`PoolShard::rebuild_hash_index`]) and
    /// lazily on the first mutation of a deserialized shard.
    #[serde(skip)]
    by_hash: HashMap<u64, Vec<usize>>,
    /// Per-entry similarity signatures ([`feature_signature`]), aligned with `entries` and
    /// maintained incrementally on every insert/remove, so the top-K scoring pass never
    /// re-featurizes resident anchors.  Unserialized for the same hash-stability reason as
    /// `by_hash`; rebuilt lazily on the first mutation of a deserialized shard (reads fall
    /// back to on-the-fly signatures while the side-car is out of sync).
    #[serde(skip)]
    signatures: Vec<Vec<u64>>,
    /// Per-entry retention weights, aligned with `entries` (see
    /// [`PoolShard::record_feedback`]).  Soft serving state: never persisted — a reloaded
    /// pool starts every anchor back at [`DEFAULT_RETENTION_WEIGHT`].
    #[serde(skip)]
    weights: Vec<f64>,
}

impl PartialEq for PoolShard {
    /// Shards are equal when their entries are (both indexes are deterministic functions
    /// of the entry sequence; the signature/weight side-cars are unserialized soft state).
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

/// The canonical hash of a query within one process ([`std::collections::hash_map::DefaultHasher`]
/// is unkeyed, so every pool agrees), used by the duplicate index, as the
/// [`crate::sharded::ShardedPool`] routing key, and by the serving runtime as the
/// dedupe key when coalescing duplicate in-window requests.  Never persist it (the
/// algorithm is not guaranteed stable across Rust releases).
pub fn query_hash(query: &Query) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    query.hash(&mut hasher);
    hasher.finish()
}

/// The featurization-space similarity signature of a query: a sorted multiset of feature
/// hashes — one per join clause, and per predicate both the exact predicate and its bare
/// column.  [`anchor_score`] is the multiset-intersection size of two signatures, so an
/// anchor scores 1 for every shared join, 1 for every predicate on a shared column and 2
/// when the predicate matches exactly — the cheap scoring pass the top-K anchor selection
/// runs ahead of the exact containment heads.  Like [`query_hash`], never persist it.
pub fn feature_signature(query: &Query) -> Vec<u64> {
    fn feature<T: Hash>(tag: u8, value: &T) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        tag.hash(&mut hasher);
        value.hash(&mut hasher);
        hasher.finish()
    }
    let mut features = Vec::with_capacity(query.joins().len() + 2 * query.predicates().len());
    for join in query.joins() {
        features.push(feature(0, join));
    }
    for predicate in query.predicates() {
        features.push(feature(1, predicate));
        features.push(feature(2, &predicate.column));
    }
    features.sort_unstable();
    features
}

/// Multiset-intersection size of two sorted feature signatures (two-pointer merge).
fn shared_features(a: &[u64], b: &[u64]) -> u64 {
    let (mut i, mut j, mut shared) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    shared
}

/// The similarity score of a pool anchor against an incoming query: a pure, deterministic
/// integer function of the two queries (see [`feature_signature`] for the weighting).
/// Entries sharing no join, predicate or predicate column score 0.
pub fn anchor_score(anchor: &Query, query: &Query) -> u64 {
    shared_features(&feature_signature(anchor), &feature_signature(query))
}

/// The top-K ranking order over `(score, entry)` pairs: score **descending**, ties broken
/// by the anchor query's `Ord` **ascending**.  Pool entries have distinct queries (the
/// duplicate index guarantees it), so this is a *total* order — which is what makes the
/// per-shard top-K selections merge into the same global top-K at any shard count.
pub(crate) fn rank_order(a: &(u64, &PoolEntry), b: &(u64, &PoolEntry)) -> Ordering {
    b.0.cmp(&a.0).then_with(|| a.1.query.cmp(&b.1.query))
}

/// The structural shape of a query: FROM clause, join clauses, and the predicate
/// `(column, op)` pairs with the compared constants stripped.  Two anchors with equal
/// structure keys are "near duplicates" — the unit [`PoolShard::compact`] merges.
pub(crate) fn structure_key(query: &Query) -> String {
    let shape: Vec<_> = query
        .predicates()
        .iter()
        .map(|p| (&p.column, &p.op))
        .collect();
    format!("{:?}|{:?}|{:?}", query.tables(), query.joins(), shape)
}

impl PoolShard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        PoolShard::default()
    }

    /// Rebuilds the (unserialized) duplicate-detection index from the entries.
    pub(crate) fn rebuild_hash_index(&mut self) {
        self.by_hash.clear();
        for (index, entry) in self.entries.iter().enumerate() {
            self.by_hash
                .entry(query_hash(&entry.query))
                .or_default()
                .push(index);
        }
    }

    /// Restores the hash index of a deserialized shard before the first mutation (the index
    /// is never persisted).
    fn ensure_hash_index(&mut self) {
        if self.by_hash.is_empty() && !self.entries.is_empty() {
            self.rebuild_hash_index();
        }
    }

    /// Restores the (unserialized) signature/weight side-cars of a deserialized shard: the
    /// per-entry alignment makes staleness unambiguous — a length mismatch with `entries`
    /// means the side-car was dropped by serialization and is rebuilt wholesale.
    fn ensure_sidecars(&mut self) {
        if self.signatures.len() != self.entries.len() {
            self.signatures = self
                .entries
                .iter()
                .map(|entry| feature_signature(&entry.query))
                .collect();
        }
        if self.weights.len() != self.entries.len() {
            self.weights = vec![DEFAULT_RETENTION_WEIGHT; self.entries.len()];
        }
    }

    /// Adds an executed query with its actual cardinality; returns whether the entry was new.
    ///
    /// Duplicate queries are ignored (the shard keeps the first recorded cardinality).
    pub fn insert(&mut self, query: Query, cardinality: u64) -> bool {
        self.ensure_hash_index();
        self.ensure_sidecars();
        let hash = query_hash(&query);
        if let Some(indices) = self.by_hash.get(&hash) {
            if indices.iter().any(|&i| self.entries[i].query == query) {
                return false;
            }
        }
        let index = self.entries.len();
        self.by_hash.entry(hash).or_default().push(index);
        self.by_from
            .entry(from_key(&query))
            .or_default()
            .push(index);
        self.signatures.push(feature_signature(&query));
        self.weights.push(DEFAULT_RETENTION_WEIGHT);
        self.entries.push(PoolEntry { query, cardinality });
        true
    }

    /// Removes a previously inserted query, returning its recorded cardinality (`None` when
    /// the query is not in the shard).
    ///
    /// Removal keeps both indexes exact: the entry positions above the removed one shift
    /// down by one, so every stored index is rewritten and FROM-clause / hash buckets that
    /// become empty are dropped (so [`PoolShard::num_from_clauses`] and
    /// [`PoolShard::matching`] never see ghosts).  The duplicate index stays consistent
    /// with a linear-scan oracle under arbitrary insert/remove/reload interleavings — the
    /// property tests below pin this.
    pub fn remove(&mut self, query: &Query) -> Option<u64> {
        self.ensure_hash_index();
        self.ensure_sidecars();
        let hash = query_hash(query);
        let position = self
            .by_hash
            .get(&hash)?
            .iter()
            .copied()
            .find(|&index| self.entries[index].query == *query)?;
        let removed = self.entries.remove(position);
        self.signatures.remove(position);
        self.weights.remove(position);
        let fix_indices = |indices: &mut Vec<usize>| {
            indices.retain(|&index| index != position);
            for index in indices.iter_mut() {
                if *index > position {
                    *index -= 1;
                }
            }
            !indices.is_empty()
        };
        self.by_hash.retain(|_, indices| fix_indices(indices));
        self.by_from.retain(|_, indices| fix_indices(indices));
        Some(removed.cardinality)
    }

    /// Inserts the query or refreshes its recorded cardinality, returning the replaced
    /// cardinality (`None` when the query was new).
    ///
    /// Observable semantics are **exactly** remove-then-insert: a refreshed entry moves to
    /// the end of the shard's insertion order (the proptests pin this against the
    /// remove+insert oracle).  A refreshed entry keeps its accumulated retention weight —
    /// fresh truth does not absolve an anchor the feedback stream has marked bad.  The
    /// point of the dedicated entry point is one level up —
    /// [`crate::sharded::ShardedPool::upsert`] turns what used to be *two* copy-on-write
    /// snapshot swaps into one, which is what the serving runtime's maintenance lane
    /// (refreshing completed queries' true cardinalities) hammers.
    pub fn upsert(&mut self, query: Query, cardinality: u64) -> Option<u64> {
        let kept_weight = self.retention_weight(&query);
        let replaced = self.remove(&query);
        self.insert(query, cardinality);
        if replaced.is_some() {
            if let Some(weight) = self.weights.last_mut() {
                *weight = kept_weight;
            }
        }
        replaced
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// Entries whose FROM clause matches the given query's FROM clause (§5.3: only those can
    /// participate in the Cnt2Crd estimation), in insertion order.
    ///
    /// Returns an iterator rather than an allocated `Vec`: this lookup sits on the per-query
    /// serving hot path, where the caller either folds over the entries directly or packs
    /// them into its own batch layout anyway.
    pub fn matching<'a>(&'a self, query: &Query) -> impl Iterator<Item = &'a PoolEntry> {
        self.matching_key(&from_key(query))
    }

    /// [`PoolShard::matching`] by pre-computed FROM-clause key (the serving layer groups
    /// concurrent queries by this key and resolves it once per group, not once per query).
    pub fn matching_key<'a>(&'a self, key: &str) -> impl Iterator<Item = &'a PoolEntry> {
        self.by_from
            .get(key)
            .into_iter()
            .flatten()
            .map(move |&i| &self.entries[i])
    }

    /// Number of distinct FROM clauses covered by the shard.
    pub fn num_from_clauses(&self) -> usize {
        self.by_from.len()
    }

    /// The distinct FROM-clause keys of this shard (used by snapshots to form the union
    /// across shards).
    pub fn from_keys(&self) -> impl Iterator<Item = &str> {
        self.by_from.keys().map(|k| k.as_str())
    }

    /// Position of the query in `entries`, via the duplicate index when it is built and by
    /// linear scan otherwise (read-only callers cannot lazily rebuild the index).
    fn position_of(&self, query: &Query) -> Option<usize> {
        if self.by_hash.is_empty() {
            return self.entries.iter().position(|entry| entry.query == *query);
        }
        self.by_hash
            .get(&query_hash(query))?
            .iter()
            .copied()
            .find(|&index| self.entries[index].query == *query)
    }

    /// The current retention weight of an anchor ([`DEFAULT_RETENTION_WEIGHT`] when the
    /// query is absent or the weight side-car has not been rebuilt since deserialization).
    pub fn retention_weight(&self, query: &Query) -> f64 {
        if self.weights.len() != self.entries.len() {
            return DEFAULT_RETENTION_WEIGHT;
        }
        self.position_of(query)
            .map(|index| self.weights[index])
            .unwrap_or(DEFAULT_RETENTION_WEIGHT)
    }

    /// Folds an observed estimation q-error for this anchor into its retention weight
    /// (`w ← 0.7·w + 0.3·(1/max(q_error, 1))`), returning whether the anchor is resident.
    ///
    /// A perfectly calibrated anchor (q-error 1) holds weight 1; an anchor that keeps
    /// producing order-of-magnitude errors decays toward 0 and becomes the first eviction
    /// victim.  `max` with 1 also absorbs NaN q-errors from degenerate feedback.
    pub fn record_feedback(&mut self, query: &Query, q_error: f64) -> bool {
        self.ensure_hash_index();
        self.ensure_sidecars();
        let Some(position) = self.position_of(query) else {
            return false;
        };
        let signal = 1.0 / q_error.max(1.0);
        let weight = &mut self.weights[position];
        *weight = RETENTION_DECAY * *weight + (1.0 - RETENTION_DECAY) * signal;
        true
    }

    /// Removes and returns the anchor with the lowest retention weight (ties broken by the
    /// query's `Ord`, so eviction is deterministic).  `None` on an empty shard.
    pub fn evict_lowest_weight(&mut self) -> Option<Query> {
        self.ensure_sidecars();
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| {
                self.weights[*i]
                    .total_cmp(&self.weights[*j])
                    .then_with(|| a.query.cmp(&b.query))
            })?
            .1
            .query
            .clone();
        self.remove(&victim);
        Some(victim)
    }

    /// Merges near-duplicate anchors: entries with the same structural shape (FROM clause,
    /// joins, and predicate `(column, op)` pairs — compared constants ignored) collapse to
    /// the one with the highest retention weight (ties broken by the smallest query), in
    /// original insertion order.  Returns the number of entries removed.
    ///
    /// Rebuilds the indexes and side-cars wholesale — O(n), not O(n²) of repeated removes.
    pub fn compact(&mut self) -> usize {
        self.ensure_sidecars();
        let mut keep_by_shape: BTreeMap<String, usize> = BTreeMap::new();
        for (index, entry) in self.entries.iter().enumerate() {
            match keep_by_shape.entry(structure_key(&entry.query)) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(index);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let kept = *slot.get();
                    let better = match self.weights[index].total_cmp(&self.weights[kept]) {
                        Ordering::Greater => true,
                        Ordering::Less => false,
                        Ordering::Equal => self.entries[index].query < self.entries[kept].query,
                    };
                    if better {
                        slot.insert(index);
                    }
                }
            }
        }
        let removed = self.entries.len() - keep_by_shape.len();
        if removed == 0 {
            return 0;
        }
        let mut keep_mask = vec![false; self.entries.len()];
        for index in keep_by_shape.into_values() {
            keep_mask[index] = true;
        }
        self.apply_keep_mask(&keep_mask);
        removed
    }

    /// Entries paired with their current retention weights, in insertion order
    /// ([`DEFAULT_RETENTION_WEIGHT`] throughout when the side-car is stale after a
    /// deserialization).  The cross-shard compaction scan in [`crate::sharded`] reads
    /// this without forcing a side-car rebuild on a shared snapshot.
    pub(crate) fn entries_with_weights(&self) -> impl Iterator<Item = (&PoolEntry, f64)> + '_ {
        let aligned = self.weights.len() == self.entries.len();
        self.entries.iter().enumerate().map(move |(index, entry)| {
            let weight = if aligned {
                self.weights[index]
            } else {
                DEFAULT_RETENTION_WEIGHT
            };
            (entry, weight)
        })
    }

    /// Drops every entry for which `keep` returns false, preserving insertion order of the
    /// survivors.  Returns the number removed.  One O(n) rebuild like [`PoolShard::compact`]
    /// — this is the per-shard apply step of the pool-wide compaction in [`crate::sharded`],
    /// where the winner set is chosen across *all* shards.
    pub(crate) fn retain_queries(&mut self, mut keep: impl FnMut(&Query) -> bool) -> usize {
        self.ensure_sidecars();
        let keep_mask: Vec<bool> = self.entries.iter().map(|e| keep(&e.query)).collect();
        let removed = keep_mask.iter().filter(|kept| !**kept).count();
        if removed == 0 {
            return 0;
        }
        self.apply_keep_mask(&keep_mask);
        removed
    }

    /// Rebuilds entries, side-cars and both indexes keeping exactly the masked positions
    /// (side-cars must be aligned — callers run `ensure_sidecars` first).
    fn apply_keep_mask(&mut self, keep_mask: &[bool]) {
        let old_entries = std::mem::take(&mut self.entries);
        let old_signatures = std::mem::take(&mut self.signatures);
        let old_weights = std::mem::take(&mut self.weights);
        for (index, ((entry, signature), weight)) in old_entries
            .into_iter()
            .zip(old_signatures)
            .zip(old_weights)
            .enumerate()
        {
            if keep_mask[index] {
                self.entries.push(entry);
                self.signatures.push(signature);
                self.weights.push(weight);
            }
        }
        self.by_from.clear();
        for (index, entry) in self.entries.iter().enumerate() {
            self.by_from
                .entry(from_key(&entry.query))
                .or_default()
                .push(index);
        }
        self.rebuild_hash_index();
    }

    /// The `k` same-FROM anchors most similar to the query, ranked by [`rank_order`]
    /// (score descending, ties by anchor `Ord`).  With fewer than `k` matching anchors this
    /// is a ranked permutation of [`PoolShard::matching`]; `k == 0` selects nothing.
    pub fn matching_top_k<'a>(&'a self, query: &Query, k: usize) -> Vec<(u64, &'a PoolEntry)> {
        self.matching_top_k_scored(&from_key(query), &feature_signature(query), k)
    }

    /// [`PoolShard::matching_top_k`] by pre-computed FROM-clause key and query signature
    /// (the serving layer featurizes each incoming query exactly once, then probes every
    /// shard).  Scoring reads the incremental signature side-car when it is aligned and
    /// falls back to on-the-fly featurization right after a deserialization.
    ///
    /// Cost is O(bucket) scoring + O(bucket) selection + O(k log k) ranking — independent
    /// of total shard size and, for the selection, of the bucket's sort order.
    pub fn matching_top_k_scored<'a>(
        &'a self,
        key: &str,
        signature: &[u64],
        k: usize,
    ) -> Vec<(u64, &'a PoolEntry)> {
        if k == 0 {
            return Vec::new();
        }
        let Some(indices) = self.by_from.get(key) else {
            return Vec::new();
        };
        let aligned = self.signatures.len() == self.entries.len();
        let mut scored: Vec<(u64, &PoolEntry)> = indices
            .iter()
            .map(|&i| {
                let entry = &self.entries[i];
                let score = if aligned {
                    shared_features(&self.signatures[i], signature)
                } else {
                    shared_features(&feature_signature(&entry.query), signature)
                };
                (score, entry)
            })
            .collect();
        if k < scored.len() {
            scored.select_nth_unstable_by(k - 1, rank_order);
            scored.truncate(k);
        }
        scored.sort_unstable_by(rank_order);
        scored
    }
}

/// A pool of previously executed queries, indexed by FROM clause.
///
/// This is the classic single-owner API: a thin facade over exactly one [`PoolShard`] (the
/// one-shard mode of the layered storage).  Its serialized form is the shard itself, so
/// pools persisted before the storage split load unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueriesPool {
    shard: PoolShard,
}

impl Serialize for QueriesPool {
    fn to_content(&self) -> serde::content::Content {
        // The facade serializes as its single shard — the exact pre-split JSON shape.
        self.shard.to_content()
    }
}

impl Deserialize for QueriesPool {
    fn from_content(content: &serde::content::Content) -> Result<Self, serde::de::Error> {
        PoolShard::from_content(content).map(|shard| QueriesPool { shard })
    }
}

impl QueriesPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        QueriesPool::default()
    }

    /// Rebuilds the (unserialized) duplicate-detection index from the entries.
    pub(crate) fn rebuild_hash_index(&mut self) {
        self.shard.rebuild_hash_index();
    }

    /// The single storage shard behind this facade.
    pub fn as_shard(&self) -> &PoolShard {
        &self.shard
    }

    /// Consumes the facade, returning its storage shard.
    pub fn into_shard(self) -> PoolShard {
        self.shard
    }

    /// Wraps an existing shard in the single-owner API.
    pub fn from_shard(shard: PoolShard) -> Self {
        QueriesPool { shard }
    }

    /// Adds an executed query with its actual cardinality.
    ///
    /// Duplicate queries are ignored (the pool keeps the first recorded cardinality).
    pub fn insert(&mut self, query: Query, cardinality: u64) {
        self.shard.insert(query, cardinality);
    }

    /// Removes a previously inserted query, returning its recorded cardinality (`None` when
    /// the query is not in the pool).  See [`PoolShard::remove`] for the index-consistency
    /// contract.
    pub fn remove(&mut self, query: &Query) -> Option<u64> {
        self.shard.remove(query)
    }

    /// Inserts the query or refreshes its recorded cardinality (remove-then-insert
    /// semantics, see [`PoolShard::upsert`]), returning the replaced cardinality.
    pub fn upsert(&mut self, query: Query, cardinality: u64) -> Option<u64> {
        self.shard.upsert(query, cardinality)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.shard.len()
    }

    /// Returns true when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.shard.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[PoolEntry] {
        self.shard.entries()
    }

    /// Entries whose FROM clause matches the given query's FROM clause (§5.3: only those can
    /// participate in the Cnt2Crd estimation), in insertion order, without allocating.
    pub fn matching<'a>(&'a self, query: &Query) -> impl Iterator<Item = &'a PoolEntry> {
        self.shard.matching(query)
    }

    /// Number of distinct FROM clauses covered by the pool.
    pub fn num_from_clauses(&self) -> usize {
        self.shard.num_from_clauses()
    }

    /// Restricts the pool to at most `limit` entries, keeping the distribution across FROM
    /// clauses as even as possible (used by the pool-size sweep of Table 14).
    pub fn truncated(&self, limit: usize) -> QueriesPool {
        let mut result = QueriesPool::new();
        if limit == 0 {
            return result;
        }
        // Round-robin over FROM clauses so every clause keeps coverage.
        let mut cursors: Vec<(usize, &Vec<usize>)> =
            self.shard.by_from.values().map(|v| (0usize, v)).collect();
        'outer: loop {
            let mut progressed = false;
            for (cursor, indices) in cursors.iter_mut() {
                if *cursor < indices.len() {
                    let entry = &self.shard.entries[indices[*cursor]];
                    result.insert(entry.query.clone(), entry.cardinality);
                    *cursor += 1;
                    progressed = true;
                    if result.len() >= limit {
                        break 'outer;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        result
    }

    /// Builds a synthetic pool by generating queries over every possible FROM clause and
    /// executing them (paper §5.2's "generate in advance" approach and §6.2's experimental
    /// pool: "equally distributed among all the possible FROM clauses over the database").
    ///
    /// `size` is the total number of pool entries; `max_joins` bounds the FROM clauses
    /// considered (0..=max_joins joins).
    pub fn generate(db: &Database, size: usize, max_joins: usize, seed: u64) -> QueriesPool {
        let mut generator =
            QueryGenerator::new(db, GeneratorConfig::with_max_joins(seed, max_joins));
        let executor = Executor::new(db);
        let mut pool = QueriesPool::new();
        // Spread the budget uniformly over join counts, then over generated FROM clauses.
        let per_join = (size / (max_joins + 1)).max(1);
        for joins in 0..=max_joins {
            let queries = generator.generate_initial_with_joins(per_join * 2, joins);
            let mut taken = 0usize;
            for query in queries {
                if taken >= per_join || pool.len() >= size {
                    break;
                }
                let cardinality = executor.cardinality(&query);
                if pool.shard.insert(query, cardinality) {
                    taken += 1;
                }
            }
            if pool.len() >= size {
                break;
            }
        }
        // Always include the predicate-free queries ("SELECT * FROM ... WHERE TRUE", §5.2) so
        // that every FROM clause has at least one guaranteed non-empty match.
        let from_clauses: BTreeSet<BTreeSet<String>> = pool
            .entries()
            .iter()
            .map(|e| e.query.tables().clone())
            .collect();
        for tables in from_clauses {
            let scan_like = pool
                .entries()
                .iter()
                .find(|e| e.query.tables() == &tables && e.query.predicates().is_empty());
            if scan_like.is_none() {
                // Re-create the empty-predicate query for this FROM clause by stripping an
                // existing entry's predicates.
                if let Some(entry) = pool.entries().iter().find(|e| e.query.tables() == &tables) {
                    let stripped = Query::new(
                        entry.query.tables().iter().cloned(),
                        entry.query.joins().to_vec(),
                        [],
                    );
                    let cardinality = executor.cardinality(&stripped);
                    pool.insert(stripped, cardinality);
                }
            }
        }
        pool
    }
}

/// Canonical string key of a query's FROM clause (tables are already sorted in the AST).
/// Shared with the Cnt2Crd serving cache, whose per-FROM-clause anchor groups must match
/// [`QueriesPool::matching`]'s grouping exactly — and with the distributed coordinator's
/// group→shard plan, which routes each FROM group to the shards whose anchors match it.
pub fn from_key(query: &Query) -> String {
    query
        .tables()
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};

    #[test]
    fn insert_and_match_by_from_clause() {
        let mut pool = QueriesPool::new();
        assert!(pool.is_empty());
        let title_scan = Query::scan(tables::TITLE);
        let cast_scan = Query::scan(tables::CAST_INFO);
        pool.insert(title_scan.clone(), 100);
        pool.insert(cast_scan.clone(), 50);
        pool.insert(title_scan.clone(), 999); // duplicate: ignored
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.num_from_clauses(), 2);
        let matches: Vec<&PoolEntry> = pool.matching(&title_scan).collect();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].cardinality, 100);
        assert_eq!(pool.matching(&Query::scan(tables::MOVIE_INFO)).count(), 0);
    }

    #[test]
    fn bulk_insert_deduplicates_through_the_hash_index() {
        let db = generate_imdb(&ImdbConfig::tiny(47));
        let mut gen =
            crn_query::generator::QueryGenerator::new(&db, GeneratorConfig::with_max_joins(47, 2));
        let queries = gen.generate_queries(300);
        let mut pool = QueriesPool::new();
        for (i, q) in queries.iter().enumerate() {
            pool.insert(q.clone(), i as u64);
        }
        let unique: std::collections::HashSet<&Query> = queries.iter().collect();
        assert_eq!(
            pool.len(),
            unique.len(),
            "pool keeps exactly the distinct queries"
        );
        // Re-inserting the whole workload changes nothing.
        let before = pool.len();
        for q in &queries {
            pool.insert(q.clone(), 999_999);
        }
        assert_eq!(pool.len(), before);
        assert!(pool.entries().iter().all(|e| e.cardinality != 999_999));
    }

    #[test]
    fn remove_deletes_entries_and_prunes_indexes() {
        let mut pool = QueriesPool::new();
        let title_scan = Query::scan(tables::TITLE);
        let cast_scan = Query::scan(tables::CAST_INFO);
        pool.insert(title_scan.clone(), 100);
        pool.insert(cast_scan.clone(), 50);
        assert_eq!(pool.remove(&title_scan), Some(100));
        assert_eq!(pool.remove(&title_scan), None, "already removed");
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.matching(&title_scan).count(), 0);
        assert_eq!(pool.num_from_clauses(), 1, "empty FROM buckets are dropped");
        // The surviving entry's shifted index still resolves.
        assert_eq!(pool.matching(&cast_scan).next().unwrap().cardinality, 50);
        // Remove-then-reinsert works (the tombstone really is gone from the hash index).
        pool.insert(title_scan.clone(), 77);
        assert_eq!(pool.matching(&title_scan).next().unwrap().cardinality, 77);
        assert_eq!(pool.remove(&cast_scan), Some(50));
        assert_eq!(pool.remove(&cast_scan), None);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn upsert_refreshes_cardinality_with_remove_insert_semantics() {
        let mut pool = QueriesPool::new();
        let title_scan = Query::scan(tables::TITLE);
        let cast_scan = Query::scan(tables::CAST_INFO);
        assert_eq!(pool.upsert(title_scan.clone(), 100), None, "new entry");
        pool.insert(cast_scan.clone(), 50);
        // A refresh replaces the cardinality (insert would keep the first) and moves the
        // entry to the end of the insertion order, exactly like remove-then-insert.
        assert_eq!(pool.upsert(title_scan.clone(), 123), Some(100));
        assert_eq!(pool.len(), 2);
        assert_eq!(
            pool.matching(&title_scan).next().unwrap().cardinality,
            123,
            "upsert replaces the recorded cardinality"
        );
        assert_eq!(pool.entries().last().unwrap().query, title_scan);
        // The oracle comparison in miniature: remove+insert on a clone agrees exactly.
        let mut oracle = QueriesPool::new();
        oracle.insert(title_scan.clone(), 100);
        oracle.insert(cast_scan, 50);
        oracle.remove(&title_scan);
        oracle.insert(title_scan, 123);
        assert_eq!(pool, oracle);
    }

    #[test]
    fn duplicate_detection_survives_serialization() {
        let db = generate_imdb(&ImdbConfig::tiny(48));
        let pool = QueriesPool::generate(&db, 20, 1, 48);
        let dir = std::env::temp_dir().join("crn_pool_dedup_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.json");
        pool.save(&path).expect("save succeeds");
        let mut loaded = QueriesPool::load(&path).expect("load succeeds");
        std::fs::remove_file(&path).ok();
        let before = loaded.len();
        // The hash index round-trips, so re-inserting existing queries is still a no-op.
        for entry in pool.entries().to_vec() {
            loaded.insert(entry.query, entry.cardinality + 1);
        }
        assert_eq!(loaded.len(), before);
        assert_eq!(&loaded, &pool);
    }

    #[test]
    fn generated_pool_covers_all_join_counts_and_is_exact() {
        let db = generate_imdb(&ImdbConfig::tiny(44));
        let pool = QueriesPool::generate(&db, 60, 2, 44);
        assert!(
            pool.len() >= 30,
            "pool should be reasonably filled: {}",
            pool.len()
        );
        let executor = Executor::new(&db);
        // Cardinalities stored in the pool are the true ones.
        for entry in pool.entries().iter().take(10) {
            assert_eq!(entry.cardinality, executor.cardinality(&entry.query));
        }
        // All join counts from 0 to 2 appear.
        for joins in 0..=2 {
            assert!(
                pool.entries().iter().any(|e| e.query.num_joins() == joins),
                "missing join count {joins}"
            );
        }
    }

    #[test]
    fn generated_pool_contains_predicate_free_queries() {
        let db = generate_imdb(&ImdbConfig::tiny(45));
        let pool = QueriesPool::generate(&db, 40, 2, 45);
        let from_clauses: BTreeSet<_> = pool
            .entries()
            .iter()
            .map(|e| e.query.tables().clone())
            .collect();
        for tables in from_clauses {
            assert!(
                pool.entries()
                    .iter()
                    .any(|e| e.query.tables() == &tables && e.query.predicates().is_empty()),
                "FROM clause {tables:?} lacks a predicate-free entry"
            );
        }
    }

    #[test]
    fn truncation_keeps_from_clause_coverage() {
        let db = generate_imdb(&ImdbConfig::tiny(46));
        let pool = QueriesPool::generate(&db, 80, 2, 46);
        let truncated = pool.truncated(20);
        assert!(truncated.len() <= 20);
        // Round-robin truncation keeps at least one entry from each of the first FROM clauses.
        assert!(truncated.num_from_clauses() >= pool.num_from_clauses().min(20) / 2);
        assert_eq!(pool.truncated(0).len(), 0);
        assert_eq!(pool.truncated(usize::MAX).len(), pool.len());
    }

    #[test]
    fn facade_exposes_its_single_shard() {
        let mut pool = QueriesPool::new();
        pool.insert(Query::scan(tables::TITLE), 9);
        assert_eq!(pool.as_shard().len(), 1);
        assert_eq!(pool.as_shard().from_keys().count(), 1);
        let rebuilt = QueriesPool::from_shard(pool.clone().into_shard());
        assert_eq!(rebuilt, pool);
    }

    fn title_pred(column: &str, op: crn_db::value::CompareOp, value: i64) -> Query {
        Query::new(
            [tables::TITLE.to_string()],
            [],
            [crn_query::ast::Predicate::new(
                crn_db::schema::ColumnRef::new(tables::TITLE, column),
                op,
                value,
            )],
        )
    }

    #[test]
    fn top_k_ranks_by_shared_features_with_query_order_tie_break() {
        use crn_db::value::CompareOp;
        let mut shard = PoolShard::new();
        let probe = title_pred("production_year", CompareOp::Eq, 1990);
        // Exact predicate match (joins the column match): the strongest anchor.
        let exact = title_pred("production_year", CompareOp::Eq, 1990);
        // Same column, different literal: a weaker anchor.
        let same_column = title_pred("production_year", CompareOp::Eq, 2001);
        // Unrelated column: weakest (only probed via the FROM clause).
        let unrelated = title_pred("kind_id", CompareOp::Le, 3);
        shard.insert(unrelated.clone(), 5);
        shard.insert(same_column.clone(), 7);
        shard.insert(exact.clone(), 9);
        assert!(anchor_score(&exact, &probe) > anchor_score(&same_column, &probe));
        assert!(anchor_score(&same_column, &probe) > anchor_score(&unrelated, &probe));

        assert!(
            shard.matching_top_k(&probe, 0).is_empty(),
            "k=0 selects none"
        );
        let top = shard.matching_top_k(&probe, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1.query, exact);
        assert_eq!(top[1].1.query, same_column);
        // k past the bucket returns the whole bucket, still rank-ordered.
        let all = shard.matching_top_k(&probe, 10);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].1.query, unrelated);
        // Equal scores fall back to ascending query order — a total order, because
        // pool queries are distinct.
        let tie_a = title_pred("kind_id", CompareOp::Le, 1);
        let tie_b = title_pred("kind_id", CompareOp::Le, 2);
        let mut tie_shard = PoolShard::new();
        tie_shard.insert(tie_b.clone(), 1);
        tie_shard.insert(tie_a.clone(), 1);
        let ranked = tie_shard.matching_top_k(&probe, 2);
        assert_eq!(
            ranked[0].0, ranked[1].0,
            "identical structure, identical score"
        );
        assert!(ranked[0].1.query < ranked[1].1.query);
    }

    #[test]
    fn feedback_moves_retention_weights_and_eviction_takes_the_worst() {
        use crn_db::value::CompareOp;
        let good = title_pred("production_year", CompareOp::Eq, 1990);
        let bad = title_pred("production_year", CompareOp::Eq, 1991);
        let mut shard = PoolShard::new();
        shard.insert(good.clone(), 10);
        shard.insert(bad.clone(), 20);
        assert_eq!(shard.retention_weight(&good), DEFAULT_RETENTION_WEIGHT);
        // Perfect feedback (q-error 1) keeps the weight at 1; terrible feedback sinks it.
        assert!(shard.record_feedback(&good, 1.0));
        assert!(shard.record_feedback(&bad, 100.0));
        assert!(
            !shard.record_feedback(&Query::scan(tables::TITLE), 2.0),
            "absent query"
        );
        assert_eq!(shard.retention_weight(&good), DEFAULT_RETENTION_WEIGHT);
        assert!(shard.retention_weight(&bad) < shard.retention_weight(&good));
        // NaN q-error is clamped, never poisoning the weight.
        assert!(shard.record_feedback(&bad, f64::NAN));
        assert!(shard.retention_weight(&bad).is_finite());
        assert_eq!(shard.evict_lowest_weight(), Some(bad));
        assert_eq!(shard.len(), 1);
        assert_eq!(shard.matching(&good).count(), 1, "indexes survive eviction");
        // All-default weights: the tie breaks on ascending query order.
        let mut ties = PoolShard::new();
        let a = title_pred("kind_id", CompareOp::Le, 1);
        let b = title_pred("kind_id", CompareOp::Le, 2);
        ties.insert(b.clone(), 1);
        ties.insert(a.clone(), 1);
        assert_eq!(ties.evict_lowest_weight(), Some(a.min(b)));
    }

    #[test]
    fn compaction_merges_structural_near_duplicates_keeping_the_best_retained() {
        use crn_db::value::CompareOp;
        let mut shard = PoolShard::new();
        // Three literal-only variants of one structure, plus one distinct structure.
        let v1 = title_pred("production_year", CompareOp::Eq, 1990);
        let v2 = title_pred("production_year", CompareOp::Eq, 1991);
        let v3 = title_pred("production_year", CompareOp::Eq, 1992);
        let other = title_pred("kind_id", CompareOp::Le, 3);
        for (query, cardinality) in [(&v1, 10u64), (&v2, 11), (&v3, 12), (&other, 13)] {
            shard.insert(query.clone(), cardinality);
        }
        // v2 has the best feedback record of its group; v1/v3 sank.
        assert!(shard.record_feedback(&v1, 50.0));
        assert!(shard.record_feedback(&v3, 50.0));
        assert_eq!(shard.compact(), 2, "two near-duplicates merged away");
        assert_eq!(shard.len(), 2);
        assert_eq!(
            shard.matching(&v2).count(),
            2,
            "v2 and other share the FROM clause"
        );
        assert_eq!(shard.matching(&v2).next().unwrap().cardinality, 11);
        assert!(shard.matching(&other).any(|e| e.query == other));
        // Idempotent once every structure is unique; the shard still accepts inserts.
        assert_eq!(shard.compact(), 0);
        shard.insert(v1.clone(), 99);
        assert_eq!(shard.len(), 3);
        // Equal weights inside a group: the smallest query survives.
        let mut ties = PoolShard::new();
        ties.insert(v2.clone(), 2);
        ties.insert(v1.clone(), 1);
        assert_eq!(ties.compact(), 1);
        assert_eq!(ties.entries()[0].query, v1.clone().min(v2));
    }
}

#[cfg(test)]
pub(crate) mod index_proptests {
    //! Property tests of the canonical-hash duplicate index: under random interleavings of
    //! insert / remove / serialization reload, the indexed pool must agree operation by
    //! operation with a brute-force oracle that scans linearly (the O(n²) semantics the
    //! index replaced).

    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::OnceLock;

    /// A brute-force pool with the exact same semantics: first insert wins, removal shifts,
    /// membership by full query equality via linear scan.
    #[derive(Default)]
    pub(crate) struct OraclePool {
        pub(crate) entries: Vec<(Query, u64)>,
    }

    impl OraclePool {
        pub(crate) fn insert(&mut self, query: Query, cardinality: u64) {
            if !self.entries.iter().any(|(q, _)| *q == query) {
                self.entries.push((query, cardinality));
            }
        }

        pub(crate) fn remove(&mut self, query: &Query) -> Option<u64> {
            let position = self.entries.iter().position(|(q, _)| q == query)?;
            Some(self.entries.remove(position).1)
        }

        pub(crate) fn matching(&self, query: &Query) -> Vec<(&Query, u64)> {
            let key = from_key(query);
            self.entries
                .iter()
                .filter(|(q, _)| from_key(q) == key)
                .map(|(q, c)| (q, *c))
                .collect()
        }

        pub(crate) fn num_from_clauses(&self) -> usize {
            self.entries
                .iter()
                .map(|(q, _)| from_key(q))
                .collect::<std::collections::BTreeSet<String>>()
                .len()
        }
    }

    /// A fixed universe of candidate queries with plenty of duplicates-by-construction, so
    /// random op sequences actually hit the duplicate and ghost-bucket paths.
    pub(crate) fn query_universe() -> &'static Vec<Query> {
        static UNIVERSE: OnceLock<Vec<Query>> = OnceLock::new();
        UNIVERSE.get_or_init(|| {
            let db = generate_imdb(&ImdbConfig::tiny(60));
            let mut gen = QueryGenerator::new(&db, GeneratorConfig::with_max_joins(60, 2));
            gen.generate_queries(24)
        })
    }

    fn assert_pools_agree(pool: &QueriesPool, oracle: &OraclePool) -> Result<(), String> {
        prop_assert_eq!(pool.len(), oracle.entries.len());
        // Same entries in the same (insertion, shifted-by-removal) order.
        for (entry, (query, cardinality)) in pool.entries().iter().zip(&oracle.entries) {
            prop_assert_eq!(&entry.query, query);
            prop_assert_eq!(entry.cardinality, *cardinality);
        }
        // FROM-clause lookups agree for every universe query, and no ghost clauses linger.
        for query in query_universe() {
            let via_index: Vec<(&Query, u64)> = pool
                .matching(query)
                .map(|e| (&e.query, e.cardinality))
                .collect();
            prop_assert_eq!(via_index, oracle.matching(query));
        }
        prop_assert_eq!(pool.num_from_clauses(), oracle.num_from_clauses());
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random insert/remove/reload interleavings: the indexed pool and the linear-scan
        /// oracle agree on every returned value and on the full observable state.
        #[test]
        fn insert_remove_reload_agree_with_scan_oracle(seed in 0u64..10_000) {
            let universe = query_universe();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pool = QueriesPool::new();
            let mut oracle = OraclePool::default();
            for op in 0..40 {
                let query = universe[rng.gen_range(0..universe.len())].clone();
                match rng.gen_range(0..10u32) {
                    // Inserts dominate so the pool actually grows.
                    0..=5 => {
                        let cardinality = rng.gen_range(0..1000u64);
                        pool.insert(query.clone(), cardinality);
                        oracle.insert(query, cardinality);
                    }
                    6..=8 => {
                        let (mine, theirs) = (pool.remove(&query), oracle.remove(&query));
                        prop_assert!(
                            mine == theirs,
                            "op {op}: remove returned {mine:?}, oracle {theirs:?}"
                        );
                    }
                    _ => {
                        // Serialization reload: drops the (unserialized) hash index, which
                        // must lazily rebuild on the next mutation.
                        let json = serde_json::to_string(&pool)
                            .map_err(|e| format!("serialize: {e}"))?;
                        pool = serde_json::from_str(&json)
                            .map_err(|e| format!("deserialize: {e}"))?;
                    }
                }
                assert_pools_agree(&pool, &oracle)?;
            }
        }
    }
}
