//! The queries pool: previously executed queries with their actual cardinalities (paper §5.2).
//!
//! The pool is envisioned as an additional DBMS component: a compact record of queries that
//! have already been executed (or were executed ahead of time by a generator) together with
//! their true result cardinalities — *not* their results.  The `Cnt2Crd` cardinality
//! estimation technique matches a new query against every pool entry with the same FROM
//! clause, so the pool is indexed by FROM-clause table set.
//!
//! Storage is layered (the serving subsystem's storage layer):
//!
//! * [`PoolShard`] — the actual storage unit: entries plus the FROM-clause and
//!   canonical-hash indexes over them.  One shard is exactly the former monolithic pool.
//! * [`QueriesPool`] — the classic single-owner API, now a thin facade over **one** shard;
//!   `generate`/`truncated`/persist round-trips are unchanged.
//! * [`crate::sharded::ShardedPool`] — N shards keyed by canonical query hash behind an
//!   immutable-snapshot API, the storage the concurrent
//!   [`crate::service::EstimatorService`] reads.

use crn_db::database::Database;
use crn_exec::Executor;
use crn_query::ast::Query;
use crn_query::generator::{GeneratorConfig, QueryGenerator};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

/// One pool entry: a previously executed query and its actual cardinality.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolEntry {
    /// The executed query.
    pub query: Query,
    /// Its true result cardinality.
    pub cardinality: u64,
}

/// One shard of queries-pool storage: a slice of the entries with the FROM-clause index and
/// the duplicate (canonical-hash) index over exactly those entries.
///
/// A shard is the unit the serving layer evaluates in parallel: every shard's `matching`
/// list is a disjoint subset of the pool-wide matching list, and concatenating the per-shard
/// lists in canonical shard order reproduces a full scan.  [`QueriesPool`] is one shard
/// behind the classic API; [`crate::sharded::ShardedPool`] distributes entries over many
/// shards by canonical query hash.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolShard {
    entries: Vec<PoolEntry>,
    /// Index from FROM-clause key (tables joined by `,`) to entry positions.  String keys keep
    /// the pool JSON-serializable (§5.2 envisions it as durable DBMS meta information).
    by_from: BTreeMap<String, Vec<usize>>,
    /// Index from canonical query hash to entry positions: duplicate detection on insert is
    /// O(1) expected instead of a linear scan over the whole shard, so bulk construction of a
    /// shard of `n` entries is O(n) expected rather than O(n²).  Hash collisions are resolved
    /// by comparing the (few) colliding entries for real equality.
    ///
    /// Never serialized: `DefaultHasher`'s algorithm is not guaranteed stable across Rust
    /// releases, so a persisted index could silently disagree with the hashes a newer binary
    /// computes.  It is rebuilt after loading ([`PoolShard::rebuild_hash_index`]) and
    /// lazily on the first mutation of a deserialized shard.
    #[serde(skip)]
    by_hash: HashMap<u64, Vec<usize>>,
}

/// The canonical hash of a query within one process ([`std::collections::hash_map::DefaultHasher`]
/// is unkeyed, so every pool agrees), used by the duplicate index, as the
/// [`crate::sharded::ShardedPool`] routing key, and by the serving runtime as the
/// dedupe key when coalescing duplicate in-window requests.  Never persist it (the
/// algorithm is not guaranteed stable across Rust releases).
pub fn query_hash(query: &Query) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    query.hash(&mut hasher);
    hasher.finish()
}

impl PoolShard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        PoolShard::default()
    }

    /// Rebuilds the (unserialized) duplicate-detection index from the entries.
    pub(crate) fn rebuild_hash_index(&mut self) {
        self.by_hash.clear();
        for (index, entry) in self.entries.iter().enumerate() {
            self.by_hash
                .entry(query_hash(&entry.query))
                .or_default()
                .push(index);
        }
    }

    /// Restores the hash index of a deserialized shard before the first mutation (the index
    /// is never persisted).
    fn ensure_hash_index(&mut self) {
        if self.by_hash.is_empty() && !self.entries.is_empty() {
            self.rebuild_hash_index();
        }
    }

    /// Adds an executed query with its actual cardinality; returns whether the entry was new.
    ///
    /// Duplicate queries are ignored (the shard keeps the first recorded cardinality).
    pub fn insert(&mut self, query: Query, cardinality: u64) -> bool {
        self.ensure_hash_index();
        let hash = query_hash(&query);
        if let Some(indices) = self.by_hash.get(&hash) {
            if indices.iter().any(|&i| self.entries[i].query == query) {
                return false;
            }
        }
        let index = self.entries.len();
        self.by_hash.entry(hash).or_default().push(index);
        self.by_from
            .entry(from_key(&query))
            .or_default()
            .push(index);
        self.entries.push(PoolEntry { query, cardinality });
        true
    }

    /// Removes a previously inserted query, returning its recorded cardinality (`None` when
    /// the query is not in the shard).
    ///
    /// Removal keeps both indexes exact: the entry positions above the removed one shift
    /// down by one, so every stored index is rewritten and FROM-clause / hash buckets that
    /// become empty are dropped (so [`PoolShard::num_from_clauses`] and
    /// [`PoolShard::matching`] never see ghosts).  The duplicate index stays consistent
    /// with a linear-scan oracle under arbitrary insert/remove/reload interleavings — the
    /// property tests below pin this.
    pub fn remove(&mut self, query: &Query) -> Option<u64> {
        self.ensure_hash_index();
        let hash = query_hash(query);
        let position = self
            .by_hash
            .get(&hash)?
            .iter()
            .copied()
            .find(|&index| self.entries[index].query == *query)?;
        let removed = self.entries.remove(position);
        let fix_indices = |indices: &mut Vec<usize>| {
            indices.retain(|&index| index != position);
            for index in indices.iter_mut() {
                if *index > position {
                    *index -= 1;
                }
            }
            !indices.is_empty()
        };
        self.by_hash.retain(|_, indices| fix_indices(indices));
        self.by_from.retain(|_, indices| fix_indices(indices));
        Some(removed.cardinality)
    }

    /// Inserts the query or refreshes its recorded cardinality, returning the replaced
    /// cardinality (`None` when the query was new).
    ///
    /// Observable semantics are **exactly** remove-then-insert: a refreshed entry moves to
    /// the end of the shard's insertion order (the proptests pin this against the
    /// remove+insert oracle).  The point of the dedicated entry point is one level up —
    /// [`crate::sharded::ShardedPool::upsert`] turns what used to be *two* copy-on-write
    /// snapshot swaps into one, which is what the serving runtime's maintenance lane
    /// (refreshing completed queries' true cardinalities) hammers.
    pub fn upsert(&mut self, query: Query, cardinality: u64) -> Option<u64> {
        let replaced = self.remove(&query);
        self.insert(query, cardinality);
        replaced
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// Entries whose FROM clause matches the given query's FROM clause (§5.3: only those can
    /// participate in the Cnt2Crd estimation), in insertion order.
    ///
    /// Returns an iterator rather than an allocated `Vec`: this lookup sits on the per-query
    /// serving hot path, where the caller either folds over the entries directly or packs
    /// them into its own batch layout anyway.
    pub fn matching<'a>(&'a self, query: &Query) -> impl Iterator<Item = &'a PoolEntry> {
        self.matching_key(&from_key(query))
    }

    /// [`PoolShard::matching`] by pre-computed FROM-clause key (the serving layer groups
    /// concurrent queries by this key and resolves it once per group, not once per query).
    pub fn matching_key<'a>(&'a self, key: &str) -> impl Iterator<Item = &'a PoolEntry> {
        self.by_from
            .get(key)
            .into_iter()
            .flatten()
            .map(move |&i| &self.entries[i])
    }

    /// Number of distinct FROM clauses covered by the shard.
    pub fn num_from_clauses(&self) -> usize {
        self.by_from.len()
    }

    /// The distinct FROM-clause keys of this shard (used by snapshots to form the union
    /// across shards).
    pub fn from_keys(&self) -> impl Iterator<Item = &str> {
        self.by_from.keys().map(|k| k.as_str())
    }
}

/// A pool of previously executed queries, indexed by FROM clause.
///
/// This is the classic single-owner API: a thin facade over exactly one [`PoolShard`] (the
/// one-shard mode of the layered storage).  Its serialized form is the shard itself, so
/// pools persisted before the storage split load unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueriesPool {
    shard: PoolShard,
}

impl Serialize for QueriesPool {
    fn to_content(&self) -> serde::content::Content {
        // The facade serializes as its single shard — the exact pre-split JSON shape.
        self.shard.to_content()
    }
}

impl Deserialize for QueriesPool {
    fn from_content(content: &serde::content::Content) -> Result<Self, serde::de::Error> {
        PoolShard::from_content(content).map(|shard| QueriesPool { shard })
    }
}

impl QueriesPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        QueriesPool::default()
    }

    /// Rebuilds the (unserialized) duplicate-detection index from the entries.
    pub(crate) fn rebuild_hash_index(&mut self) {
        self.shard.rebuild_hash_index();
    }

    /// The single storage shard behind this facade.
    pub fn as_shard(&self) -> &PoolShard {
        &self.shard
    }

    /// Consumes the facade, returning its storage shard.
    pub fn into_shard(self) -> PoolShard {
        self.shard
    }

    /// Wraps an existing shard in the single-owner API.
    pub fn from_shard(shard: PoolShard) -> Self {
        QueriesPool { shard }
    }

    /// Adds an executed query with its actual cardinality.
    ///
    /// Duplicate queries are ignored (the pool keeps the first recorded cardinality).
    pub fn insert(&mut self, query: Query, cardinality: u64) {
        self.shard.insert(query, cardinality);
    }

    /// Removes a previously inserted query, returning its recorded cardinality (`None` when
    /// the query is not in the pool).  See [`PoolShard::remove`] for the index-consistency
    /// contract.
    pub fn remove(&mut self, query: &Query) -> Option<u64> {
        self.shard.remove(query)
    }

    /// Inserts the query or refreshes its recorded cardinality (remove-then-insert
    /// semantics, see [`PoolShard::upsert`]), returning the replaced cardinality.
    pub fn upsert(&mut self, query: Query, cardinality: u64) -> Option<u64> {
        self.shard.upsert(query, cardinality)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.shard.len()
    }

    /// Returns true when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.shard.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[PoolEntry] {
        self.shard.entries()
    }

    /// Entries whose FROM clause matches the given query's FROM clause (§5.3: only those can
    /// participate in the Cnt2Crd estimation), in insertion order, without allocating.
    pub fn matching<'a>(&'a self, query: &Query) -> impl Iterator<Item = &'a PoolEntry> {
        self.shard.matching(query)
    }

    /// Number of distinct FROM clauses covered by the pool.
    pub fn num_from_clauses(&self) -> usize {
        self.shard.num_from_clauses()
    }

    /// Restricts the pool to at most `limit` entries, keeping the distribution across FROM
    /// clauses as even as possible (used by the pool-size sweep of Table 14).
    pub fn truncated(&self, limit: usize) -> QueriesPool {
        let mut result = QueriesPool::new();
        if limit == 0 {
            return result;
        }
        // Round-robin over FROM clauses so every clause keeps coverage.
        let mut cursors: Vec<(usize, &Vec<usize>)> =
            self.shard.by_from.values().map(|v| (0usize, v)).collect();
        'outer: loop {
            let mut progressed = false;
            for (cursor, indices) in cursors.iter_mut() {
                if *cursor < indices.len() {
                    let entry = &self.shard.entries[indices[*cursor]];
                    result.insert(entry.query.clone(), entry.cardinality);
                    *cursor += 1;
                    progressed = true;
                    if result.len() >= limit {
                        break 'outer;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        result
    }

    /// Builds a synthetic pool by generating queries over every possible FROM clause and
    /// executing them (paper §5.2's "generate in advance" approach and §6.2's experimental
    /// pool: "equally distributed among all the possible FROM clauses over the database").
    ///
    /// `size` is the total number of pool entries; `max_joins` bounds the FROM clauses
    /// considered (0..=max_joins joins).
    pub fn generate(db: &Database, size: usize, max_joins: usize, seed: u64) -> QueriesPool {
        let mut generator =
            QueryGenerator::new(db, GeneratorConfig::with_max_joins(seed, max_joins));
        let executor = Executor::new(db);
        let mut pool = QueriesPool::new();
        // Spread the budget uniformly over join counts, then over generated FROM clauses.
        let per_join = (size / (max_joins + 1)).max(1);
        for joins in 0..=max_joins {
            let queries = generator.generate_initial_with_joins(per_join * 2, joins);
            let mut taken = 0usize;
            for query in queries {
                if taken >= per_join || pool.len() >= size {
                    break;
                }
                let cardinality = executor.cardinality(&query);
                if pool.shard.insert(query, cardinality) {
                    taken += 1;
                }
            }
            if pool.len() >= size {
                break;
            }
        }
        // Always include the predicate-free queries ("SELECT * FROM ... WHERE TRUE", §5.2) so
        // that every FROM clause has at least one guaranteed non-empty match.
        let from_clauses: BTreeSet<BTreeSet<String>> = pool
            .entries()
            .iter()
            .map(|e| e.query.tables().clone())
            .collect();
        for tables in from_clauses {
            let scan_like = pool
                .entries()
                .iter()
                .find(|e| e.query.tables() == &tables && e.query.predicates().is_empty());
            if scan_like.is_none() {
                // Re-create the empty-predicate query for this FROM clause by stripping an
                // existing entry's predicates.
                if let Some(entry) = pool.entries().iter().find(|e| e.query.tables() == &tables) {
                    let stripped = Query::new(
                        entry.query.tables().iter().cloned(),
                        entry.query.joins().to_vec(),
                        [],
                    );
                    let cardinality = executor.cardinality(&stripped);
                    pool.insert(stripped, cardinality);
                }
            }
        }
        pool
    }
}

/// Canonical string key of a query's FROM clause (tables are already sorted in the AST).
/// Shared with the Cnt2Crd serving cache, whose per-FROM-clause anchor groups must match
/// [`QueriesPool::matching`]'s grouping exactly.
pub(crate) fn from_key(query: &Query) -> String {
    query
        .tables()
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};

    #[test]
    fn insert_and_match_by_from_clause() {
        let mut pool = QueriesPool::new();
        assert!(pool.is_empty());
        let title_scan = Query::scan(tables::TITLE);
        let cast_scan = Query::scan(tables::CAST_INFO);
        pool.insert(title_scan.clone(), 100);
        pool.insert(cast_scan.clone(), 50);
        pool.insert(title_scan.clone(), 999); // duplicate: ignored
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.num_from_clauses(), 2);
        let matches: Vec<&PoolEntry> = pool.matching(&title_scan).collect();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].cardinality, 100);
        assert_eq!(pool.matching(&Query::scan(tables::MOVIE_INFO)).count(), 0);
    }

    #[test]
    fn bulk_insert_deduplicates_through_the_hash_index() {
        let db = generate_imdb(&ImdbConfig::tiny(47));
        let mut gen =
            crn_query::generator::QueryGenerator::new(&db, GeneratorConfig::with_max_joins(47, 2));
        let queries = gen.generate_queries(300);
        let mut pool = QueriesPool::new();
        for (i, q) in queries.iter().enumerate() {
            pool.insert(q.clone(), i as u64);
        }
        let unique: std::collections::HashSet<&Query> = queries.iter().collect();
        assert_eq!(
            pool.len(),
            unique.len(),
            "pool keeps exactly the distinct queries"
        );
        // Re-inserting the whole workload changes nothing.
        let before = pool.len();
        for q in &queries {
            pool.insert(q.clone(), 999_999);
        }
        assert_eq!(pool.len(), before);
        assert!(pool.entries().iter().all(|e| e.cardinality != 999_999));
    }

    #[test]
    fn remove_deletes_entries_and_prunes_indexes() {
        let mut pool = QueriesPool::new();
        let title_scan = Query::scan(tables::TITLE);
        let cast_scan = Query::scan(tables::CAST_INFO);
        pool.insert(title_scan.clone(), 100);
        pool.insert(cast_scan.clone(), 50);
        assert_eq!(pool.remove(&title_scan), Some(100));
        assert_eq!(pool.remove(&title_scan), None, "already removed");
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.matching(&title_scan).count(), 0);
        assert_eq!(pool.num_from_clauses(), 1, "empty FROM buckets are dropped");
        // The surviving entry's shifted index still resolves.
        assert_eq!(pool.matching(&cast_scan).next().unwrap().cardinality, 50);
        // Remove-then-reinsert works (the tombstone really is gone from the hash index).
        pool.insert(title_scan.clone(), 77);
        assert_eq!(pool.matching(&title_scan).next().unwrap().cardinality, 77);
        assert_eq!(pool.remove(&cast_scan), Some(50));
        assert_eq!(pool.remove(&cast_scan), None);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn upsert_refreshes_cardinality_with_remove_insert_semantics() {
        let mut pool = QueriesPool::new();
        let title_scan = Query::scan(tables::TITLE);
        let cast_scan = Query::scan(tables::CAST_INFO);
        assert_eq!(pool.upsert(title_scan.clone(), 100), None, "new entry");
        pool.insert(cast_scan.clone(), 50);
        // A refresh replaces the cardinality (insert would keep the first) and moves the
        // entry to the end of the insertion order, exactly like remove-then-insert.
        assert_eq!(pool.upsert(title_scan.clone(), 123), Some(100));
        assert_eq!(pool.len(), 2);
        assert_eq!(
            pool.matching(&title_scan).next().unwrap().cardinality,
            123,
            "upsert replaces the recorded cardinality"
        );
        assert_eq!(pool.entries().last().unwrap().query, title_scan);
        // The oracle comparison in miniature: remove+insert on a clone agrees exactly.
        let mut oracle = QueriesPool::new();
        oracle.insert(title_scan.clone(), 100);
        oracle.insert(cast_scan, 50);
        oracle.remove(&title_scan);
        oracle.insert(title_scan, 123);
        assert_eq!(pool, oracle);
    }

    #[test]
    fn duplicate_detection_survives_serialization() {
        let db = generate_imdb(&ImdbConfig::tiny(48));
        let pool = QueriesPool::generate(&db, 20, 1, 48);
        let dir = std::env::temp_dir().join("crn_pool_dedup_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.json");
        pool.save(&path).expect("save succeeds");
        let mut loaded = QueriesPool::load(&path).expect("load succeeds");
        std::fs::remove_file(&path).ok();
        let before = loaded.len();
        // The hash index round-trips, so re-inserting existing queries is still a no-op.
        for entry in pool.entries().to_vec() {
            loaded.insert(entry.query, entry.cardinality + 1);
        }
        assert_eq!(loaded.len(), before);
        assert_eq!(&loaded, &pool);
    }

    #[test]
    fn generated_pool_covers_all_join_counts_and_is_exact() {
        let db = generate_imdb(&ImdbConfig::tiny(44));
        let pool = QueriesPool::generate(&db, 60, 2, 44);
        assert!(
            pool.len() >= 30,
            "pool should be reasonably filled: {}",
            pool.len()
        );
        let executor = Executor::new(&db);
        // Cardinalities stored in the pool are the true ones.
        for entry in pool.entries().iter().take(10) {
            assert_eq!(entry.cardinality, executor.cardinality(&entry.query));
        }
        // All join counts from 0 to 2 appear.
        for joins in 0..=2 {
            assert!(
                pool.entries().iter().any(|e| e.query.num_joins() == joins),
                "missing join count {joins}"
            );
        }
    }

    #[test]
    fn generated_pool_contains_predicate_free_queries() {
        let db = generate_imdb(&ImdbConfig::tiny(45));
        let pool = QueriesPool::generate(&db, 40, 2, 45);
        let from_clauses: BTreeSet<_> = pool
            .entries()
            .iter()
            .map(|e| e.query.tables().clone())
            .collect();
        for tables in from_clauses {
            assert!(
                pool.entries()
                    .iter()
                    .any(|e| e.query.tables() == &tables && e.query.predicates().is_empty()),
                "FROM clause {tables:?} lacks a predicate-free entry"
            );
        }
    }

    #[test]
    fn truncation_keeps_from_clause_coverage() {
        let db = generate_imdb(&ImdbConfig::tiny(46));
        let pool = QueriesPool::generate(&db, 80, 2, 46);
        let truncated = pool.truncated(20);
        assert!(truncated.len() <= 20);
        // Round-robin truncation keeps at least one entry from each of the first FROM clauses.
        assert!(truncated.num_from_clauses() >= pool.num_from_clauses().min(20) / 2);
        assert_eq!(pool.truncated(0).len(), 0);
        assert_eq!(pool.truncated(usize::MAX).len(), pool.len());
    }

    #[test]
    fn facade_exposes_its_single_shard() {
        let mut pool = QueriesPool::new();
        pool.insert(Query::scan(tables::TITLE), 9);
        assert_eq!(pool.as_shard().len(), 1);
        assert_eq!(pool.as_shard().from_keys().count(), 1);
        let rebuilt = QueriesPool::from_shard(pool.clone().into_shard());
        assert_eq!(rebuilt, pool);
    }
}

#[cfg(test)]
pub(crate) mod index_proptests {
    //! Property tests of the canonical-hash duplicate index: under random interleavings of
    //! insert / remove / serialization reload, the indexed pool must agree operation by
    //! operation with a brute-force oracle that scans linearly (the O(n²) semantics the
    //! index replaced).

    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::OnceLock;

    /// A brute-force pool with the exact same semantics: first insert wins, removal shifts,
    /// membership by full query equality via linear scan.
    #[derive(Default)]
    pub(crate) struct OraclePool {
        pub(crate) entries: Vec<(Query, u64)>,
    }

    impl OraclePool {
        pub(crate) fn insert(&mut self, query: Query, cardinality: u64) {
            if !self.entries.iter().any(|(q, _)| *q == query) {
                self.entries.push((query, cardinality));
            }
        }

        pub(crate) fn remove(&mut self, query: &Query) -> Option<u64> {
            let position = self.entries.iter().position(|(q, _)| q == query)?;
            Some(self.entries.remove(position).1)
        }

        pub(crate) fn matching(&self, query: &Query) -> Vec<(&Query, u64)> {
            let key = from_key(query);
            self.entries
                .iter()
                .filter(|(q, _)| from_key(q) == key)
                .map(|(q, c)| (q, *c))
                .collect()
        }

        pub(crate) fn num_from_clauses(&self) -> usize {
            self.entries
                .iter()
                .map(|(q, _)| from_key(q))
                .collect::<std::collections::BTreeSet<String>>()
                .len()
        }
    }

    /// A fixed universe of candidate queries with plenty of duplicates-by-construction, so
    /// random op sequences actually hit the duplicate and ghost-bucket paths.
    pub(crate) fn query_universe() -> &'static Vec<Query> {
        static UNIVERSE: OnceLock<Vec<Query>> = OnceLock::new();
        UNIVERSE.get_or_init(|| {
            let db = generate_imdb(&ImdbConfig::tiny(60));
            let mut gen = QueryGenerator::new(&db, GeneratorConfig::with_max_joins(60, 2));
            gen.generate_queries(24)
        })
    }

    fn assert_pools_agree(pool: &QueriesPool, oracle: &OraclePool) -> Result<(), String> {
        prop_assert_eq!(pool.len(), oracle.entries.len());
        // Same entries in the same (insertion, shifted-by-removal) order.
        for (entry, (query, cardinality)) in pool.entries().iter().zip(&oracle.entries) {
            prop_assert_eq!(&entry.query, query);
            prop_assert_eq!(entry.cardinality, *cardinality);
        }
        // FROM-clause lookups agree for every universe query, and no ghost clauses linger.
        for query in query_universe() {
            let via_index: Vec<(&Query, u64)> = pool
                .matching(query)
                .map(|e| (&e.query, e.cardinality))
                .collect();
            prop_assert_eq!(via_index, oracle.matching(query));
        }
        prop_assert_eq!(pool.num_from_clauses(), oracle.num_from_clauses());
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random insert/remove/reload interleavings: the indexed pool and the linear-scan
        /// oracle agree on every returned value and on the full observable state.
        #[test]
        fn insert_remove_reload_agree_with_scan_oracle(seed in 0u64..10_000) {
            let universe = query_universe();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pool = QueriesPool::new();
            let mut oracle = OraclePool::default();
            for op in 0..40 {
                let query = universe[rng.gen_range(0..universe.len())].clone();
                match rng.gen_range(0..10u32) {
                    // Inserts dominate so the pool actually grows.
                    0..=5 => {
                        let cardinality = rng.gen_range(0..1000u64);
                        pool.insert(query.clone(), cardinality);
                        oracle.insert(query, cardinality);
                    }
                    6..=8 => {
                        let (mine, theirs) = (pool.remove(&query), oracle.remove(&query));
                        prop_assert!(
                            mine == theirs,
                            "op {op}: remove returned {mine:?}, oracle {theirs:?}"
                        );
                    }
                    _ => {
                        // Serialization reload: drops the (unserialized) hash index, which
                        // must lazily rebuild on the next mutation.
                        let json = serde_json::to_string(&pool)
                            .map_err(|e| format!("serialize: {e}"))?;
                        pool = serde_json::from_str(&json)
                            .map_err(|e| format!("deserialize: {e}"))?;
                    }
                }
                assert_pools_agree(&pool, &oracle)?;
            }
        }
    }
}
