//! Model persistence: serialize trained models and queries pools to disk.
//!
//! The paper reports that the serialized CRN model is roughly 1.5 MB (§3.5.3) and envisions
//! the queries pool as durable DBMS meta information (§5.2).  This module provides the
//! corresponding save/load functionality using a self-describing JSON encoding (small models,
//! readability over compactness).

use crate::model::CrnModel;
use crate::pool::QueriesPool;
use crate::sharded::ShardedPool;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Errors produced while persisting or loading models.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// (De)serialization failure.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

fn save_json<T: Serialize>(value: &T, path: &Path) -> Result<(), PersistError> {
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), value)?;
    Ok(())
}

fn load_json<T: DeserializeOwned>(path: &Path) -> Result<T, PersistError> {
    let file = File::open(path)?;
    Ok(serde_json::from_reader(BufReader::new(file))?)
}

impl CrnModel {
    /// Serializes the trained model (weights, featurizer, configuration) to a JSON file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save_json(self, path.as_ref())
    }

    /// Loads a model previously written by [`CrnModel::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load_json(path.as_ref())
    }
}

impl QueriesPool {
    /// Serializes the queries pool to a JSON file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save_json(self, path.as_ref())
    }

    /// Loads a queries pool previously written by [`QueriesPool::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let mut pool: QueriesPool = load_json(path.as_ref())?;
        // The duplicate-detection hash index is never persisted (hash algorithm stability
        // across toolchains is not guaranteed); rebuild it for the running binary.
        pool.rebuild_hash_index();
        Ok(pool)
    }
}

impl ShardedPool {
    /// Serializes the pool to a JSON file by flattening the current snapshot into the
    /// single-shard format — the durable form is shard-count-agnostic, so a pool saved at
    /// one shard count loads at any other (sharding is a runtime serving decision, not a
    /// storage property).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.to_pool().save(path)
    }

    /// Loads a pool previously written by [`ShardedPool::save`] (or [`QueriesPool::save`] —
    /// the formats are identical) and re-routes its entries over `num_shards` shards.
    pub fn load(path: impl AsRef<Path>, num_shards: usize) -> Result<Self, PersistError> {
        Ok(ShardedPool::from_pool(
            &QueriesPool::load(path)?,
            num_shards,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use crn_nn::TrainConfig;
    use crn_query::Query;

    #[test]
    fn crn_model_round_trips_through_disk() {
        let db = generate_imdb(&ImdbConfig::tiny(71));
        let model = CrnModel::new(&db, TrainConfig::fast_test());
        let dir = std::env::temp_dir().join("crn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save(&path).expect("save succeeds");
        let loaded = CrnModel::load(&path).expect("load succeeds");
        // Identical parameters mean identical predictions.
        let q1 = Query::scan("title");
        let q2 = Query::scan("title");
        assert_eq!(model.predict(&q1, &q2), loaded.predict(&q1, &q2));
        assert_eq!(model.num_params(), loaded.num_params());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn queries_pool_round_trips_through_disk() {
        let db = generate_imdb(&ImdbConfig::tiny(72));
        let pool = QueriesPool::generate(&db, 20, 1, 72);
        let dir = std::env::temp_dir().join("crn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.json");
        pool.save(&path).expect("save succeeds");
        let loaded = QueriesPool::load(&path).expect("load succeeds");
        assert_eq!(pool.len(), loaded.len());
        assert_eq!(pool.entries(), loaded.entries());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_pool_round_trips_across_shard_counts() {
        let db = generate_imdb(&ImdbConfig::tiny(73));
        let pool = QueriesPool::generate(&db, 30, 1, 73);
        let sharded = ShardedPool::from_pool(&pool, 4);
        let dir = std::env::temp_dir().join("crn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sharded_pool.json");
        sharded.save(&path).expect("save succeeds");
        // The durable form is shard-count-agnostic: load at a different count.
        let reloaded = ShardedPool::load(&path, 2).expect("load succeeds");
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.num_shards(), 2);
        assert_eq!(reloaded.len(), pool.len());
        // Same entry set, and the classic loader reads the same file.
        let mut original: Vec<String> = pool.entries().iter().map(|e| format!("{e:?}")).collect();
        let mut roundtrip: Vec<String> = reloaded
            .to_pool()
            .entries()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect();
        original.sort();
        roundtrip.sort();
        assert_eq!(original, roundtrip);
    }

    #[test]
    fn loading_a_missing_file_reports_io_error() {
        let err = CrnModel::load("/nonexistent/path/model.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
    }
}
