//! CRN featurization: queries as sets of vectors in one shared format (paper §3.2.1, Table 1).
//!
//! Every element of the sets `T` (tables), `J` (joins) and `P` (predicates) is encoded as a
//! vector of the same dimension `L = #T + 3·#C + #O + 1`, segmented as:
//!
//! | segment | width | used by | content |
//! |---------|-------|---------|---------|
//! | `T-seg` | `#T`  | tables  | one-hot table id |
//! | `J1-seg`| `#C`  | joins   | one-hot id of the first join column |
//! | `J2-seg`| `#C`  | joins   | one-hot id of the second join column |
//! | `C-seg` | `#C`  | predicates | one-hot id of the predicate column |
//! | `O-seg` | `#O`  | predicates | one-hot id of the operator |
//! | `V-seg` | `1`   | predicates | literal normalized to `[0,1]` by the column's min/max |
//!
//! The shared format is a deliberate design choice of the paper: "the queries tables, joins
//! and column predicates are inseparable, hence treating each set individually using different
//! neural networks may disorientate the model" — the `ablation_shared_format` experiment
//! quantifies it against MSCN-style separate formats.

use crn_db::database::Database;
use crn_db::schema::ColumnRef;
use crn_db::value::CompareOp;
use crn_nn::Matrix;
use crn_query::ast::Query;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The CRN featurizer: stable table/column numbering plus column value ranges, captured from
/// the database snapshot at construction time (so the featurizer stays valid without keeping
/// the database borrowed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrnFeaturizer {
    num_tables: usize,
    num_columns: usize,
    num_operators: usize,
    table_index: HashMap<String, usize>,
    /// Keyed by `"table.column"` (string keys keep the featurizer JSON-serializable).
    column_index: HashMap<String, usize>,
    column_ranges: HashMap<String, (i64, i64)>,
}

impl CrnFeaturizer {
    /// Builds the featurizer from a database snapshot.
    pub fn new(db: &Database) -> Self {
        let schema = db.schema();
        let mut table_index = HashMap::new();
        let mut column_index = HashMap::new();
        let mut column_ranges = HashMap::new();
        for (t_idx, table) in schema.tables().iter().enumerate() {
            table_index.insert(table.name.clone(), t_idx);
            for column in &table.columns {
                let column_ref = ColumnRef::new(&table.name, &column.name);
                let global = schema
                    .global_column_index(&column_ref)
                    .expect("declared column");
                column_index.insert(column_key(&column_ref), global);
                if let Some(range) = db.column_min_max(&column_ref) {
                    column_ranges.insert(column_key(&column_ref), range);
                }
            }
        }
        CrnFeaturizer {
            num_tables: schema.num_tables(),
            num_columns: schema.num_columns(),
            num_operators: CompareOp::ALL.len(),
            table_index,
            column_index,
            column_ranges,
        }
    }

    /// Number of tables `#T`.
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Number of columns `#C`.
    pub fn num_columns(&self) -> usize {
        self.num_columns
    }

    /// Number of predicate operators `#O`.
    pub fn num_operators(&self) -> usize {
        self.num_operators
    }

    /// The shared vector dimension `L = #T + 3·#C + #O + 1`.
    pub fn vector_dim(&self) -> usize {
        self.num_tables + 3 * self.num_columns + self.num_operators + 1
    }

    /// Offset of the `J1-seg` segment.
    fn j1_offset(&self) -> usize {
        self.num_tables
    }

    /// Offset of the `J2-seg` segment.
    fn j2_offset(&self) -> usize {
        self.num_tables + self.num_columns
    }

    /// Offset of the `C-seg` segment.
    fn c_offset(&self) -> usize {
        self.num_tables + 2 * self.num_columns
    }

    /// Offset of the `O-seg` segment.
    fn o_offset(&self) -> usize {
        self.num_tables + 3 * self.num_columns
    }

    /// Offset of the `V-seg` segment (a single slot).
    fn v_offset(&self) -> usize {
        self.num_tables + 3 * self.num_columns + self.num_operators
    }

    /// Featurizes a query into its set of vectors `V` (one row per element of `T ∪ J ∪ P`).
    ///
    /// A query always has at least one table, so the resulting matrix has at least one row.
    pub fn featurize(&self, query: &Query) -> Matrix {
        let dim = self.vector_dim();
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(
            query.tables().len() + query.joins().len() + query.predicates().len(),
        );

        for table in query.tables() {
            let mut row = vec![0.0f32; dim];
            if let Some(&idx) = self.table_index.get(table) {
                row[idx] = 1.0;
            }
            rows.push(row);
        }
        for join in query.joins() {
            let mut row = vec![0.0f32; dim];
            if let Some(idx) = self.global_column(&join.left) {
                row[self.j1_offset() + idx] = 1.0;
            }
            if let Some(idx) = self.global_column(&join.right) {
                row[self.j2_offset() + idx] = 1.0;
            }
            rows.push(row);
        }
        for predicate in query.predicates() {
            let mut row = vec![0.0f32; dim];
            if let Some(idx) = self.global_column(&predicate.column) {
                row[self.c_offset() + idx] = 1.0;
            }
            row[self.o_offset() + predicate.op.index()] = 1.0;
            row[self.v_offset()] = self.normalize_literal(&predicate.column, predicate.value);
            rows.push(row);
        }

        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in &rows {
            data.extend_from_slice(row);
        }
        Matrix::from_vec(rows.len(), dim, data)
    }

    /// Featurizes both queries of a pair.
    pub fn featurize_pair(&self, q1: &Query, q2: &Query) -> (Matrix, Matrix) {
        (self.featurize(q1), self.featurize(q2))
    }

    fn global_column(&self, column: &ColumnRef) -> Option<usize> {
        self.column_index.get(&column_key(column)).copied()
    }

    /// Normalizes a literal into `[0, 1]` using the column's min/max values in the database.
    pub fn normalize_literal(&self, column: &ColumnRef, value: i64) -> f32 {
        match self.column_ranges.get(&column_key(column)) {
            Some(&(lo, hi)) if hi > lo => {
                (((value - lo) as f64 / (hi - lo) as f64).clamp(0.0, 1.0)) as f32
            }
            _ => 0.5,
        }
    }
}

/// The string key `"table.column"` used for the featurizer's internal maps.
fn column_key(column: &ColumnRef) -> String {
    format!("{}.{}", column.table, column.column)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};
    use crn_query::ast::{JoinClause, Predicate};

    fn db() -> Database {
        generate_imdb(&ImdbConfig::tiny(8))
    }

    fn example_query() -> Query {
        Query::new(
            [tables::TITLE.to_string(), tables::CAST_INFO.to_string()],
            [JoinClause::new(
                ColumnRef::new(tables::TITLE, "id"),
                ColumnRef::new(tables::CAST_INFO, "movie_id"),
            )],
            [
                Predicate::new(ColumnRef::new(tables::TITLE, "kind_id"), CompareOp::Eq, 2),
                Predicate::new(
                    ColumnRef::new(tables::CAST_INFO, "role_id"),
                    CompareOp::Lt,
                    5,
                ),
            ],
        )
    }

    #[test]
    fn vector_dimension_matches_formula() {
        let db = db();
        let feat = CrnFeaturizer::new(&db);
        let expected =
            db.schema().num_tables() + 3 * db.schema().num_columns() + CompareOp::ALL.len() + 1;
        assert_eq!(feat.vector_dim(), expected);
        assert_eq!(feat.num_tables(), 6);
        assert_eq!(feat.num_columns(), db.schema().num_columns());
        assert_eq!(feat.num_operators(), 6);
    }

    #[test]
    fn featurization_has_one_row_per_set_element() {
        let db = db();
        let feat = CrnFeaturizer::new(&db);
        let q = example_query();
        let v = feat.featurize(&q);
        assert_eq!(v.rows(), 2 + 1 + 2);
        assert_eq!(v.cols(), feat.vector_dim());
    }

    #[test]
    fn table_vectors_only_use_the_table_segment() {
        let db = db();
        let feat = CrnFeaturizer::new(&db);
        let v = feat.featurize(&Query::scan(tables::TITLE));
        assert_eq!(v.rows(), 1);
        let row = v.row(0);
        // Exactly one bit set, inside T-seg.
        let non_zero: Vec<usize> = row
            .iter()
            .enumerate()
            .filter(|(_, &x)| x != 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(non_zero.len(), 1);
        assert!(non_zero[0] < feat.num_tables());
    }

    #[test]
    fn join_vectors_use_both_join_segments() {
        let db = db();
        let feat = CrnFeaturizer::new(&db);
        let q = example_query();
        let v = feat.featurize(&q);
        // Row layout: tables first (2), then joins (1), then predicates (2).
        let join_row = v.row(2);
        let non_zero: Vec<usize> = join_row
            .iter()
            .enumerate()
            .filter(|(_, &x)| x != 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(non_zero.len(), 2, "both join columns one-hot encoded");
        assert!(non_zero[0] >= feat.num_tables());
        assert!(non_zero[1] < feat.num_tables() + 2 * feat.num_columns());
    }

    #[test]
    fn predicate_vectors_use_column_operator_and_value_segments() {
        let db = db();
        let feat = CrnFeaturizer::new(&db);
        let q = example_query();
        let v = feat.featurize(&q);
        let pred_row = v.row(3);
        let c_offset = feat.num_tables() + 2 * feat.num_columns();
        let o_offset = feat.num_tables() + 3 * feat.num_columns();
        let v_offset = o_offset + feat.num_operators();
        let column_bits = pred_row[c_offset..o_offset]
            .iter()
            .filter(|&&x| x != 0.0)
            .count();
        let op_bits = pred_row[o_offset..v_offset]
            .iter()
            .filter(|&&x| x != 0.0)
            .count();
        assert_eq!(column_bits, 1);
        assert_eq!(op_bits, 1);
        assert!((0.0..=1.0).contains(&pred_row[v_offset]));
        // Nothing outside those segments is set for predicate rows.
        assert!(pred_row[..c_offset].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identical_queries_have_identical_featurizations() {
        let db = db();
        let feat = CrnFeaturizer::new(&db);
        let q = example_query();
        let (a, b) = feat.featurize_pair(&q, &q.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn literal_normalization_is_clamped() {
        let db = db();
        let feat = CrnFeaturizer::new(&db);
        let column = ColumnRef::new(tables::TITLE, "production_year");
        let (lo, hi) = db.column_min_max(&column).unwrap();
        assert_eq!(feat.normalize_literal(&column, lo - 100), 0.0);
        assert_eq!(feat.normalize_literal(&column, hi + 100), 1.0);
        assert_eq!(
            feat.normalize_literal(&ColumnRef::new("none", "none"), 0),
            0.5
        );
    }
}
