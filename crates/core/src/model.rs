//! The CRN (Containment Rate Network) model — the paper's primary contribution (§3.2).
//!
//! Three stages, exactly as in Figure 1 of the paper:
//!
//! 1. **Featurization** — each query of the input pair `(Q1, Q2)` becomes a set of vectors in
//!    the shared format of [`crate::featurize::CrnFeaturizer`].
//! 2. **Set encoding** — each vector of set `Vi` is passed through a one-layer MLP (`MLP1` for
//!    the first query, `MLP2` for the second) with ReLU, and the transformed vectors are
//!    *averaged* into a single representative vector `Qvec_i` of width `H` (§3.2.2).
//! 3. **Containment head** — `Expand(Qvec1, Qvec2) = [v1, v2, |v1 − v2|, v1 ⊙ v2]` is fed into
//!    a two-layer MLP (`MLPout`) whose sigmoid output is the estimated containment rate
//!    `Q1 ⊂% Q2 ∈ [0, 1]` (§3.2.3).
//!
//! Training minimizes the mean q-error of the predicted rates (§3.2.4) with Adam,
//! mini-batches and early stopping on a validation split (§3.3); MSE/MAE and sum-pooling /
//! plain-concatenation variants are available for the ablation experiments.

use crate::featurize::CrnFeaturizer;
use crn_db::database::Database;
use crn_exec::ContainmentSample;
use crn_nn::batch::shard_ranges;
use crn_nn::batch::{
    broadcast_rows, concat_rows, expand_concat, expand_concat_backward, expand_full,
    expand_full_backward, segment_pool, segment_pool_backward, RaggedBatch, SegmentPool,
    SparseRows,
};
use crn_nn::layers::{
    relu, relu_backward, relu_backward_in_place, relu_in_place, sigmoid, sigmoid_backward,
    sigmoid_in_place, Dense,
};
use crn_nn::loss::{loss_and_grad, mean_q_error};
use crn_nn::matrix::Matrix;
use crn_nn::optim::Adam;
use crn_nn::parallel::{reduce_gradients, GradientSet, ThreadPoolConfig, WorkerPool};
use crn_nn::train::{
    shuffled_batches, train_validation_split, EarlyStopping, EpochStats, TrainConfig,
    TrainingHistory,
};
use crn_query::ast::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crn_estimators::ContainmentEstimator;

/// Containment rates below this floor are clamped before the q-error is formed (the paper's
/// q-error is undefined at exactly zero).
pub const RATE_FLOOR: f32 = 0.01;

/// Index of each CRN parameter tensor inside its [`GradientSet`] — the fixed order shared by
/// [`CrnModel::gradient_set`], [`CrnModel::params_vec_mut`] and the shard reduction (the
/// optimizer pairs parameters and merged gradients positionally).
mod grad_index {
    pub const MLP1_W: usize = 0;
    pub const MLP1_B: usize = 1;
    pub const MLP2_W: usize = 2;
    pub const MLP2_B: usize = 3;
    pub const OUT1_W: usize = 4;
    pub const OUT1_B: usize = 5;
    pub const OUT2_W: usize = 6;
    pub const OUT2_B: usize = 7;
}

/// How the per-element representations are aggregated into a query vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pooling {
    /// Average over the set elements (the paper's choice, §3.2.2).
    Mean,
    /// Sum over the set elements (ablation: the paper argues the average generalizes better
    /// to different set sizes).
    Sum,
}

/// How the two query vectors are combined before `MLPout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpandMode {
    /// `[v1, v2, |v1 − v2|, v1 ⊙ v2]` — the paper's `Expand` function (§3.2.3).
    Full,
    /// Plain concatenation `[v1, v2]` (ablation).
    Concat,
}

/// Architecture/ablation options of the CRN model (everything beyond [`TrainConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrnOptions {
    /// Set aggregation.
    pub pooling: Pooling,
    /// Pair combination.
    pub expand: ExpandMode,
}

impl Default for CrnOptions {
    fn default() -> Self {
        CrnOptions {
            pooling: Pooling::Mean,
            expand: ExpandMode::Full,
        }
    }
}

/// The CRN containment-rate estimation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrnModel {
    featurizer: CrnFeaturizer,
    /// Set encoder of the first query (`MLP1`).
    mlp1: Dense,
    /// Set encoder of the second query (`MLP2`).
    mlp2: Dense,
    /// First layer of `MLPout` (`4H → 2H` for the full expand, `2H → 2H` for plain concat).
    out1: Dense,
    /// Second layer of `MLPout` (`2H → 1`).
    out2: Dense,
    config: TrainConfig,
    options: CrnOptions,
}

/// Forward-pass cache of one ragged mini-batch of pairs (a single pair is the `B = 1` case).
///
/// The set-level tensors (`a1`, `a2`) are flattened over all pairs of the batch and
/// segmented by the offsets of `v1` / `v2`; the pair-level tensors (`qvec*`, `expanded`,
/// `sigmoid_out`) have one row per pair.  Only post-activation tensors are kept: ReLU runs
/// in place (its own output is the backward mask) and sigmoid's backward needs the output.
struct BatchCache {
    v1: RaggedBatch,
    v2: RaggedBatch,
    a1: Matrix,
    a2: Matrix,
    qvec1: Matrix,
    qvec2: Matrix,
    expanded: Matrix,
    a_out1: Matrix,
    sigmoid_out: Matrix,
}

/// Forward-pass cache of one pair for the seed-faithful per-sample reference path (the
/// pre-batching implementation kept as the baseline of the parity tests and benchmarks).
struct PairCache {
    v1: Matrix,
    v2: Matrix,
    z1: Matrix,
    a1: Matrix,
    z2: Matrix,
    a2: Matrix,
    qvec1: Matrix,
    qvec2: Matrix,
    expanded: Matrix,
    z_out1: Matrix,
    a_out1: Matrix,
    sigmoid_out: Matrix,
}

impl CrnModel {
    /// Creates an untrained CRN model for a database snapshot with the paper's architecture.
    pub fn new(db: &Database, config: TrainConfig) -> Self {
        Self::with_options(db, config, CrnOptions::default())
    }

    /// Creates an untrained CRN model with explicit ablation options.
    pub fn with_options(db: &Database, config: TrainConfig, options: CrnOptions) -> Self {
        let featurizer = CrnFeaturizer::new(db);
        Self::from_featurizer(featurizer, config, options)
    }

    /// Creates the model from a pre-built featurizer (used by tests and serialization).
    pub fn from_featurizer(
        featurizer: CrnFeaturizer,
        config: TrainConfig,
        options: CrnOptions,
    ) -> Self {
        let hidden = config.hidden_size;
        let input_dim = featurizer.vector_dim();
        let expand_dim = match options.expand {
            ExpandMode::Full => 4 * hidden,
            ExpandMode::Concat => 2 * hidden,
        };
        let seed = config.seed;
        CrnModel {
            mlp1: Dense::new(input_dim, hidden, seed.wrapping_add(100)),
            mlp2: Dense::new(input_dim, hidden, seed.wrapping_add(200)),
            out1: Dense::new(expand_dim, 2 * hidden, seed.wrapping_add(300)),
            out2: Dense::new(2 * hidden, 1, seed.wrapping_add(400)),
            featurizer,
            config,
            options,
        }
    }

    /// The featurizer (exposed so transformations can reuse its normalization).
    pub fn featurizer(&self) -> &CrnFeaturizer {
        &self.featurizer
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The ablation options.
    pub fn options(&self) -> &CrnOptions {
        &self.options
    }

    /// Hidden layer width `H`.
    pub fn hidden_size(&self) -> usize {
        self.config.hidden_size
    }

    /// Total number of trainable parameters.
    ///
    /// For the paper's architecture this matches the closed form of §3.5.3,
    /// `2·L·H + 8·H² + 6·H + 1` (with the paper's three-operator one-hot replaced by ours).
    pub fn num_params(&self) -> usize {
        self.mlp1.num_params()
            + self.mlp2.num_params()
            + self.out1.num_params()
            + self.out2.num_params()
    }

    /// The set-aggregation mode as the nn engine's segment-pool kind.
    fn segment_pool_kind(&self) -> SegmentPool {
        match self.options.pooling {
            Pooling::Mean => SegmentPool::Mean,
            Pooling::Sum => SegmentPool::Sum,
        }
    }

    /// Batched forward pass over a ragged mini-batch of pairs: every dense layer runs once as
    /// a single GEMM over the flattened set rows, pooling is a segment reduction, and the
    /// `Expand` combination is vectorized over all pairs.
    /// Combines two `(B×H)` query-vector blocks with the configured `Expand` mode.
    fn expand_pairs(&self, qvec1: &Matrix, qvec2: &Matrix) -> Matrix {
        match self.options.expand {
            ExpandMode::Full => expand_full(qvec1, qvec2),
            ExpandMode::Concat => expand_concat(qvec1, qvec2),
        }
    }

    /// One set encoder over a ragged batch, forward only: `encode = pool(relu(W·v))`,
    /// `(Σnᵢ×L) -> (B×H)`.
    fn encode_sets(&self, encoder: &Dense, batch: &RaggedBatch) -> Matrix {
        let mut activated = encoder.forward_ragged(batch);
        relu_in_place(&mut activated);
        segment_pool(&activated, batch.offsets(), self.segment_pool_kind())
    }

    /// The containment head over expanded pair representations, forward only:
    /// `(B×4H) -> (B×1)` sigmoid rates.
    fn head_inference(&self, expanded: &Matrix) -> Matrix {
        let mut a_out1 = self.out1.forward(expanded);
        relu_in_place(&mut a_out1);
        let mut sigmoid_out = self.out2.forward(&a_out1);
        sigmoid_in_place(&mut sigmoid_out);
        sigmoid_out
    }

    fn forward_batch(&self, v1: RaggedBatch, v2: RaggedBatch) -> BatchCache {
        debug_assert_eq!(v1.num_segments(), v2.num_segments(), "pairs must line up");
        let pool = self.segment_pool_kind();
        // The set encoders iterate the batches' CSR non-zeros; the head's `Expand` input is
        // dense and takes the blocked SIMD kernel.
        let mut a1 = self.mlp1.forward_ragged(&v1);
        relu_in_place(&mut a1);
        let qvec1 = segment_pool(&a1, v1.offsets(), pool);
        let mut a2 = self.mlp2.forward_ragged(&v2);
        relu_in_place(&mut a2);
        let qvec2 = segment_pool(&a2, v2.offsets(), pool);
        let expanded = self.expand_pairs(&qvec1, &qvec2);
        let mut a_out1 = self.out1.forward(&expanded);
        relu_in_place(&mut a_out1);
        let mut sigmoid_out = self.out2.forward(&a_out1);
        sigmoid_in_place(&mut sigmoid_out);
        BatchCache {
            v1,
            v2,
            a1,
            a2,
            qvec1,
            qvec2,
            expanded,
            a_out1,
            sigmoid_out,
        }
    }

    /// Inference-only batched forward: returns the `B×1` sigmoid outputs without retaining
    /// any intermediate tensors (the serving path of `predict` / `predict_batch`).
    fn forward_batch_inference(&self, v1: &RaggedBatch, v2: &RaggedBatch) -> Matrix {
        debug_assert_eq!(v1.num_segments(), v2.num_segments(), "pairs must line up");
        let qvec1 = self.encode_sets(&self.mlp1, v1);
        let qvec2 = self.encode_sets(&self.mlp2, v2);
        self.head_inference(&self.expand_pairs(&qvec1, &qvec2))
    }

    /// Batched backward pass: `grad_output` holds `dL/d sigmoid_out` per pair (`B×1`).
    ///
    /// Accumulates exactly the gradient sums the per-sample loop produced — `Dense::backward`
    /// over the flattened rows computes the same `Σᵢ xᵢᵀ·gᵢ` in one product.  Kept for the
    /// parity tests; training goes through [`CrnModel::backward_batch_into`] so shards can
    /// accumulate privately.
    #[cfg(test)]
    fn backward_batch(&mut self, cache: &BatchCache, grad_output: &Matrix) {
        let mut grads = self.gradient_set();
        self.backward_batch_into(cache, grad_output, &mut grads);
        for (param, grad) in self.params_vec_mut().into_iter().zip(grads.parts()) {
            param.grad.add_assign(grad);
        }
    }

    /// [`CrnModel::backward_batch`] into a caller-provided [`GradientSet`] (indexed by
    /// [`grad_index`]), leaving the model untouched — every shard of a data-parallel
    /// mini-batch runs this against the same read-only model.
    fn backward_batch_into(
        &self,
        cache: &BatchCache,
        grad_output: &Matrix,
        grads: &mut GradientSet,
    ) {
        use grad_index::*;
        let grad_z_out2 = sigmoid_backward(&cache.sigmoid_out, grad_output);
        let (grad_w, grad_b, mut grad_z_out1) =
            self.out2.backward_dense_calc(&cache.a_out1, &grad_z_out2);
        grads.part_mut(OUT2_W).add_assign(&grad_w);
        grads.part_mut(OUT2_B).add_assign(&grad_b);
        relu_backward_in_place(&cache.a_out1, &mut grad_z_out1);
        let (grad_w, grad_b, grad_expanded) =
            self.out1.backward_dense_calc(&cache.expanded, &grad_z_out1);
        grads.part_mut(OUT1_W).add_assign(&grad_w);
        grads.part_mut(OUT1_B).add_assign(&grad_b);
        let (grad_qvec1, grad_qvec2) = match self.options.expand {
            ExpandMode::Full => expand_full_backward(&cache.qvec1, &cache.qvec2, &grad_expanded),
            ExpandMode::Concat => expand_concat_backward(&grad_expanded),
        };

        let pool = self.segment_pool_kind();
        // The set encoders are input layers over one-hot rows: accumulate their weight
        // gradients by scattering the CSR non-zeros, and skip the (discarded) dL/dx product.
        let mut grad_z1 = segment_pool_backward(cache.v1.offsets(), &grad_qvec1, pool);
        relu_backward_in_place(&cache.a1, &mut grad_z1);
        let (grad_w, grad_b) = grads.pair_mut(MLP1_W, MLP1_B);
        Dense::accumulate_ragged_weights_only(&cache.v1, &grad_z1, grad_w, grad_b);

        let mut grad_z2 = segment_pool_backward(cache.v2.offsets(), &grad_qvec2, pool);
        relu_backward_in_place(&cache.a2, &mut grad_z2);
        let (grad_w, grad_b) = grads.pair_mut(MLP2_W, MLP2_B);
        Dense::accumulate_ragged_weights_only(&cache.v2, &grad_z2, grad_w, grad_b);
    }

    /// A zeroed gradient set shaped like this model's parameters (order: [`grad_index`]).
    fn gradient_set(&self) -> GradientSet {
        let mut shapes = Vec::with_capacity(8);
        shapes.extend(self.mlp1.grad_shapes());
        shapes.extend(self.mlp2.grad_shapes());
        shapes.extend(self.out1.grad_shapes());
        shapes.extend(self.out2.grad_shapes());
        GradientSet::zeros(&shapes)
    }

    /// Seed-faithful single-pair forward pass: 1-row matrices end to end, scalar pooling and
    /// `Expand`, the full backward including the input layers' discarded `dL/dx` — exactly
    /// the implementation this repository shipped before the ragged-batch engine.  This is
    /// the *baseline* the parity tests and criterion benchmarks compare the engine against,
    /// so it deliberately does not share the engine's execution path.
    fn forward_pair_reference(&self, v1: &Matrix, v2: &Matrix) -> PairCache {
        let pool = |activated: &Matrix| -> Matrix {
            match self.options.pooling {
                Pooling::Mean => crn_nn::layers::mean_pool(activated),
                Pooling::Sum => {
                    let mut pooled = Matrix::zeros(1, activated.cols());
                    pooled.row_mut(0).copy_from_slice(&activated.column_sums());
                    pooled
                }
            }
        };
        let z1 = self.mlp1.forward_sparse(v1);
        let a1 = relu(&z1);
        let qvec1 = pool(&a1);
        let z2 = self.mlp2.forward_sparse(v2);
        let a2 = relu(&z2);
        let qvec2 = pool(&a2);
        let expanded = match self.options.expand {
            ExpandMode::Full => expand_full(&qvec1, &qvec2),
            ExpandMode::Concat => expand_concat(&qvec1, &qvec2),
        };
        let z_out1 = self.out1.forward_sparse(&expanded);
        let a_out1 = relu(&z_out1);
        let z_out2 = self.out2.forward_sparse(&a_out1);
        let sigmoid_out = sigmoid(&z_out2);
        PairCache {
            v1: v1.clone(),
            v2: v2.clone(),
            z1,
            a1,
            z2,
            a2,
            qvec1,
            qvec2,
            expanded,
            z_out1,
            a_out1,
            sigmoid_out,
        }
    }

    /// Seed-faithful single-pair backward pass (see [`CrnModel::forward_pair_reference`]).
    fn backward_pair_reference(&mut self, cache: &PairCache, grad_output: f32) {
        let grad_out = Matrix::from_vec(1, 1, vec![grad_output]);
        let grad_z_out2 = sigmoid_backward(&cache.sigmoid_out, &grad_out);
        let grad_a_out1 = self.out2.backward(&cache.a_out1, &grad_z_out2);
        let grad_z_out1 = relu_backward(&cache.z_out1, &grad_a_out1);
        let grad_expanded = self.out1.backward(&cache.expanded, &grad_z_out1);
        let (grad_qvec1, grad_qvec2) = match self.options.expand {
            ExpandMode::Full => expand_full_backward(&cache.qvec1, &cache.qvec2, &grad_expanded),
            ExpandMode::Concat => expand_concat_backward(&grad_expanded),
        };
        let pool_backward = |num_rows: usize, grad_pooled: &Matrix| -> Matrix {
            match self.options.pooling {
                Pooling::Mean => crn_nn::layers::mean_pool_backward(num_rows, grad_pooled),
                Pooling::Sum => {
                    let mut grad = Matrix::zeros(num_rows, grad_pooled.cols());
                    for r in 0..num_rows {
                        grad.row_mut(r).copy_from_slice(grad_pooled.row(0));
                    }
                    grad
                }
            }
        };
        let grad_a1 = pool_backward(cache.a1.rows(), &grad_qvec1);
        let grad_z1 = relu_backward(&cache.z1, &grad_a1);
        let _ = self.mlp1.backward(&cache.v1, &grad_z1);
        let grad_a2 = pool_backward(cache.a2.rows(), &grad_qvec2);
        let grad_z2 = relu_backward(&cache.z2, &grad_a2);
        let _ = self.mlp2.backward(&cache.v2, &grad_z2);
    }

    fn zero_grad(&mut self) {
        self.mlp1.zero_grad();
        self.mlp2.zero_grad();
        self.out1.zero_grad();
        self.out2.zero_grad();
    }

    /// All trainable parameters in [`grad_index`] order.
    fn params_vec_mut(&mut self) -> Vec<&mut crn_nn::layers::Param> {
        let CrnModel {
            mlp1,
            mlp2,
            out1,
            out2,
            ..
        } = self;
        let mut params = Vec::new();
        params.extend(mlp1.params_mut());
        params.extend(mlp2.params_mut());
        params.extend(out1.params_mut());
        params.extend(out2.params_mut());
        params
    }

    fn adam_step(&mut self, adam: &mut Adam) {
        let params = self.params_vec_mut();
        adam.step(params);
    }

    /// One (single-threaded) Adam step over an externally merged gradient set — the tail of
    /// every data-parallel mini-batch.
    fn adam_step_with(&mut self, adam: &mut Adam, grads: &GradientSet) {
        let params = self.params_vec_mut();
        adam.step_with(params, grads.parts());
    }

    /// Trains the model on labelled containment pairs; returns the per-epoch history
    /// (used to reproduce Figures 3 and 4).
    ///
    /// Each mini-batch runs through the ragged-batch engine (`crn_nn::batch`), split into
    /// shards executed by the data-parallel pool of [`TrainConfig::parallel`]
    /// (`crn_nn::parallel`): every shard runs the batched forward/backward against the same
    /// read-only model into its own gradient set, the shards are merged in fixed order, and
    /// a single-threaded Adam step applies the merged gradient.  At `threads = 1` (the
    /// default) this is exactly the one-GEMM-per-batch path; the accumulated gradients are
    /// in every mode mathematically identical to the per-sample loop of
    /// [`CrnModel::fit_reference`] (the parity tests below pin this to 1e-5), and in
    /// deterministic mode bit-identical across thread counts.
    pub fn fit(&mut self, samples: &[ContainmentSample]) -> TrainingHistory {
        let parallel = self.config.parallel;
        // One persistent worker-pool handle for the whole fit: every featurization shard,
        // mini-batch and validation chunk below runs on the same spawn-once threads
        // (`crn_nn::parallel::WorkerPool::shared`) instead of re-spawning scoped workers
        // per mini-batch — the spawn overhead PR 2 measured at +24% for small batches.
        let workers = parallel.worker_pool();
        // Features are featurized and converted to CSR once, before the epoch loop;
        // mini-batches are assembled by concatenating the per-sample non-zeros — no dense
        // row copies or scans inside the training loop.
        let dim = self.featurizer.vector_dim();
        let features = self.featurize_sparse(samples, &workers, parallel.threads);
        let targets: Vec<f32> = samples.iter().map(|s| s.rate as f32).collect();

        let (train_idx, valid_idx) = train_validation_split(
            samples.len(),
            self.config.validation_fraction,
            self.config.seed,
        );
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(7));
        let mut early_stopping = EarlyStopping::new(self.config.patience);
        let mut history = TrainingHistory::default();
        let mut best: Option<CrnModel> = None;

        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_samples = 0usize;
            for batch in shuffled_batches(&train_idx, self.config.batch_size, &mut rng) {
                let batch1 = RaggedBatch::from_sparse_sets(
                    dim,
                    batch.iter().map(|&index| &features[index].0),
                );
                let batch2 = RaggedBatch::from_sparse_sets(
                    dim,
                    batch.iter().map(|&index| &features[index].1),
                );
                let (losses, grads) =
                    self.sharded_batch_step(&parallel, &workers, &batch, batch1, batch2, &targets);
                for loss in losses {
                    epoch_loss += loss as f64;
                    epoch_samples += 1;
                }
                self.adam_step_with(&mut adam, &grads);
            }

            let validation_q_error = if valid_idx.is_empty() {
                epoch_loss / epoch_samples.max(1) as f64
            } else {
                // Validation chunks are fixed by the batch size (never by the thread
                // count), so the chunk contents — and the per-chunk inference — are the
                // same for every pool configuration; only the chunk scheduling spreads
                // across threads.
                let chunks: Vec<&[usize]> =
                    valid_idx.chunks(self.config.batch_size.max(1)).collect();
                let model = &*self;
                let per_chunk: Vec<Vec<(f64, f64)>> = workers.run_sharded(chunks.len(), |shard| {
                    let chunk = chunks[shard];
                    let batch1 = RaggedBatch::from_sparse_sets(
                        dim,
                        chunk.iter().map(|&index| &features[index].0),
                    );
                    let batch2 = RaggedBatch::from_sparse_sets(
                        dim,
                        chunk.iter().map(|&index| &features[index].1),
                    );
                    let out = model.forward_batch_inference(&batch1, &batch2);
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(position, &index)| {
                            (out.get(position, 0) as f64, targets[index] as f64)
                        })
                        .collect()
                });
                let pairs: Vec<(f64, f64)> = per_chunk.into_iter().flatten().collect();
                mean_q_error(&pairs, RATE_FLOOR as f64)
            };
            let improved = history.record(EpochStats {
                epoch,
                train_loss: epoch_loss / epoch_samples.max(1) as f64,
                validation_q_error,
            });
            if improved {
                best = Some(self.clone());
            }
            if early_stopping.should_stop(!improved) {
                break;
            }
        }
        if let Some(best) = best {
            *self = best;
        }
        history
    }

    /// Featurizes a sample slice into per-pair CSR rows on the worker pool (per-sample
    /// featurization is pure, so it shards trivially; `run_over_ranges` returns the
    /// shards in range order, so the result order never depends on the thread count).
    fn featurize_sparse(
        &self,
        samples: &[ContainmentSample],
        workers: &WorkerPool,
        threads: usize,
    ) -> Vec<(SparseRows, SparseRows)> {
        let ranges = shard_ranges(samples.len(), threads);
        workers
            .run_over_ranges(&ranges, |range| {
                samples[range]
                    .iter()
                    .map(|s| {
                        let (v1, v2) = self.featurizer.featurize_pair(&s.q1, &s.q2);
                        (SparseRows::from_matrix(&v1), SparseRows::from_matrix(&v2))
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Zeroes the Adam moment estimates carried inside every parameter.
    ///
    /// The moments a `fit` leaves behind belong to an optimizer whose step count was
    /// discarded with it — resuming them against a *fresh* [`Adam`] (step count 0)
    /// amplifies the first bias-corrected updates by `1 / (1 − β)` (10× for the first
    /// moment) and reliably wrecks the warm-started weights.  A continual-learning
    /// controller therefore resets the moments once, when it adopts a model trained
    /// elsewhere; from then on it keeps its own `Adam` paired with the moments its
    /// refreshes produce.
    pub fn reset_optimizer_state(&mut self) {
        for param in self.params_vec_mut() {
            let shape = (param.m.rows(), param.m.cols());
            param.m = crn_nn::Matrix::zeros(shape.0, shape.1);
            param.v = crn_nn::Matrix::zeros(shape.0, shape.1);
        }
    }

    /// Warm-start incremental fit: fine-tunes the (already trained) model in place on a
    /// fresh corpus for a fixed number of epochs, **resuming** the caller's Adam state.
    ///
    /// This is the continual-learning primitive of the online refresh subsystem
    /// (`crn-online`): the refresh controller clones the live model, fine-tunes the clone
    /// on a replay-buffer mix of fresh feedback and reservoir-sampled history, and
    /// hot-swaps it in only if it passes the validation gate.  Division of labour with
    /// [`CrnModel::fit`]:
    ///
    /// * **Adam state resumes.**  The first and second moments live inside each
    ///   [`Param`](crn_nn::layers::Param) and travel with the model clone; the caller's
    ///   [`Adam`] carries the step count, so bias correction continues where the previous
    ///   (initial or incremental) fit left off instead of re-warming from step 0.
    /// * **No validation split, early stopping or best-epoch restore** — the online
    ///   controller owns model selection through its held-out probe gate, so the
    ///   fine-tune runs exactly `epochs` epochs over the whole corpus.  The recorded
    ///   `validation_q_error` is the epoch's mean training loss.
    /// * **Same execution engine.**  Every mini-batch shards through the persistent
    ///   [`WorkerPool`] exactly like `fit` (same forced-CSR featurization, same
    ///   fixed-order gradient reduction), so deterministic mode keeps the incremental fit
    ///   bit-identical across thread counts.
    ///
    /// Shuffling is deterministic per refresh: the RNG is seeded from the config seed and
    /// the optimizer's step count, which advances monotonically across refreshes — each
    /// refresh reshuffles differently, the whole online trajectory stays reproducible.
    pub fn fit_incremental(
        &mut self,
        samples: &[ContainmentSample],
        adam: &mut Adam,
        epochs: usize,
    ) -> TrainingHistory {
        let mut history = TrainingHistory::default();
        if samples.is_empty() || epochs == 0 {
            return history;
        }
        let parallel = self.config.parallel;
        let workers = parallel.worker_pool();
        let dim = self.featurizer.vector_dim();
        let features = self.featurize_sparse(samples, &workers, parallel.threads);
        let targets: Vec<f32> = samples.iter().map(|s| s.rate as f32).collect();
        let indices: Vec<usize> = (0..samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(adam.step_count.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        for epoch in 0..epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_samples = 0usize;
            for batch in shuffled_batches(&indices, self.config.batch_size, &mut rng) {
                let batch1 = RaggedBatch::from_sparse_sets(
                    dim,
                    batch.iter().map(|&index| &features[index].0),
                );
                let batch2 = RaggedBatch::from_sparse_sets(
                    dim,
                    batch.iter().map(|&index| &features[index].1),
                );
                let (losses, grads) =
                    self.sharded_batch_step(&parallel, &workers, &batch, batch1, batch2, &targets);
                for loss in losses {
                    epoch_loss += loss as f64;
                    epoch_samples += 1;
                }
                self.adam_step_with(adam, &grads);
            }
            let train_loss = epoch_loss / epoch_samples.max(1) as f64;
            history.record(EpochStats {
                epoch,
                train_loss,
                validation_q_error: train_loss,
            });
        }
        history
    }

    /// One data-parallel mini-batch: shards the pair of ragged batches at segment
    /// boundaries, runs the batched forward/backward per shard on the persistent worker
    /// pool, and merges the per-shard gradients in fixed shard order.  Returns the
    /// per-sample losses in batch order and the merged gradient set; the caller applies the
    /// (single-threaded) optimizer step.
    fn sharded_batch_step(
        &self,
        parallel: &ThreadPoolConfig,
        workers: &WorkerPool,
        batch_indices: &[usize],
        batch1: RaggedBatch,
        batch2: RaggedBatch,
        targets: &[f32],
    ) -> (Vec<f32>, GradientSet) {
        let batch_scale = 1.0 / batch_indices.len() as f32;
        let num_shards = parallel.shard_count(batch_indices.len());

        // The per-shard work: forward, per-sample losses, backward into a private set.
        let step = |v1: RaggedBatch, v2: RaggedBatch, indices: &[usize]| {
            let cache = self.forward_batch(v1, v2);
            let mut losses = Vec::with_capacity(indices.len());
            let mut grad_output = Matrix::zeros(indices.len(), 1);
            for (position, &index) in indices.iter().enumerate() {
                let prediction = cache.sigmoid_out.get(position, 0);
                let loss = loss_and_grad(self.config.loss, prediction, targets[index], RATE_FLOOR);
                losses.push(loss.loss);
                grad_output.set(position, 0, loss.grad * batch_scale);
            }
            let mut grads = self.gradient_set();
            self.backward_batch_into(&cache, &grad_output, &mut grads);
            (losses, grads)
        };

        if num_shards <= 1 {
            return step(batch1, batch2, batch_indices);
        }
        let ranges = shard_ranges(batch_indices.len(), num_shards);
        let results: Vec<(Vec<f32>, GradientSet)> = workers.run_over_ranges(&ranges, |range| {
            let v1 = batch1.slice_segments(range.clone());
            let v2 = batch2.slice_segments(range.clone());
            step(v1, v2, &batch_indices[range])
        });
        let mut losses = Vec::with_capacity(batch_indices.len());
        let mut shards = Vec::with_capacity(results.len());
        for (shard_losses, shard_grads) in results {
            losses.extend(shard_losses);
            shards.push(shard_grads);
        }
        let merged = reduce_gradients(shards, parallel.deterministic)
            .expect("a non-empty batch produces at least one shard");
        (losses, merged)
    }

    /// Reference per-sample training loop: the pre-batching implementation, issuing one
    /// forward and one backward per pair.
    ///
    /// Kept public so the parity tests and the criterion benchmarks can compare the batched
    /// [`CrnModel::fit`] against it; there is no reason to use it for real training.
    pub fn fit_reference(&mut self, samples: &[ContainmentSample]) -> TrainingHistory {
        let features: Vec<(Matrix, Matrix)> = samples
            .iter()
            .map(|s| self.featurizer.featurize_pair(&s.q1, &s.q2))
            .collect();
        let targets: Vec<f32> = samples.iter().map(|s| s.rate as f32).collect();

        let (train_idx, valid_idx) = train_validation_split(
            samples.len(),
            self.config.validation_fraction,
            self.config.seed,
        );
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(7));
        let mut early_stopping = EarlyStopping::new(self.config.patience);
        let mut history = TrainingHistory::default();
        let mut best: Option<CrnModel> = None;

        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_samples = 0usize;
            for batch in shuffled_batches(&train_idx, self.config.batch_size, &mut rng) {
                self.zero_grad();
                for &index in &batch {
                    let (v1, v2) = &features[index];
                    let cache = self.forward_pair_reference(v1, v2);
                    let prediction = cache.sigmoid_out.get(0, 0);
                    let loss =
                        loss_and_grad(self.config.loss, prediction, targets[index], RATE_FLOOR);
                    epoch_loss += loss.loss as f64;
                    epoch_samples += 1;
                    self.backward_pair_reference(&cache, loss.grad / batch.len() as f32);
                }
                self.adam_step(&mut adam);
            }

            let validation_q_error = if valid_idx.is_empty() {
                epoch_loss / epoch_samples.max(1) as f64
            } else {
                let pairs: Vec<(f64, f64)> = valid_idx
                    .iter()
                    .map(|&i| {
                        let (v1, v2) = &features[i];
                        let prediction =
                            self.forward_pair_reference(v1, v2).sigmoid_out.get(0, 0) as f64;
                        (prediction, targets[i] as f64)
                    })
                    .collect();
                mean_q_error(&pairs, RATE_FLOOR as f64)
            };
            let improved = history.record(EpochStats {
                epoch,
                train_loss: epoch_loss / epoch_samples.max(1) as f64,
                validation_q_error,
            });
            if improved {
                best = Some(self.clone());
            }
            if early_stopping.should_stop(!improved) {
                break;
            }
        }
        if let Some(best) = best {
            *self = best;
        }
        history
    }

    /// Predicts the containment rate `q1 ⊂% q2` in `[0, 1]`.
    pub fn predict(&self, q1: &Query, q2: &Query) -> f64 {
        let (v1, v2) = self.featurizer.featurize_pair(q1, q2);
        let out = self.forward_batch_inference(
            &RaggedBatch::from_sets([&v1]),
            &RaggedBatch::from_sets([&v2]),
        );
        out.get(0, 0) as f64
    }

    /// Batched containment prediction against one shared query: for every anchor `aᵢ`
    /// returns `(aᵢ ⊂% query, query ⊂% aᵢ)`.
    ///
    /// Every anchor and the query are featurized exactly once, then the whole batch runs
    /// through **two** batched forward passes (one per containment direction) — this is the
    /// serving path of the Cnt2Crd technique (§5.3, Figure 8), which previously issued `2·N`
    /// single-pair forwards per incoming query.
    pub fn predict_batch(&self, anchors: &[&Query], query: &Query) -> Vec<(f64, f64)> {
        if anchors.is_empty() {
            return Vec::new();
        }
        let encodings = self.encode_anchor_queries(anchors);
        self.serve_against_encodings(&encodings, query)
    }

    /// Runs an anchor set through both set encoders once: the per-anchor `(B×H)` query
    /// vectors under `MLP1` and `MLP2`.  This is the whole anchor-side cost of serving, and
    /// it only depends on the (fixed) anchors — [`ContainmentEstimator::prepare_anchors`]
    /// caches it across queries.
    fn encode_anchor_queries(&self, anchors: &[&Query]) -> AnchorEncodings {
        let anchor_sets: Vec<Matrix> = anchors
            .iter()
            .map(|anchor| self.featurizer.featurize(anchor))
            .collect();
        // Forced-CSR packing: featurized rows are the one-hot regime where CSR wins, and a
        // density-routed choice would make the execution path (and the per-row f32 order)
        // depend on which anchors share the batch — sharded serving needs every anchor
        // subset to encode bit-identically to the full set.
        let anchor_batch = RaggedBatch::from_sets_csr(anchor_sets.iter());
        AnchorEncodings {
            under_mlp1: self.encode_sets(&self.mlp1, &anchor_batch),
            under_mlp2: self.encode_sets(&self.mlp2, &anchor_batch),
        }
    }

    /// The serving core: both containment directions of pre-encoded anchors against one
    /// query.  The query is featurized and encoded once (under each set encoder), broadcast
    /// against the anchor encodings, and the containment head runs twice — once per
    /// direction — over the whole batch.
    fn serve_against_encodings(
        &self,
        encodings: &AnchorEncodings,
        query: &Query,
    ) -> Vec<(f64, f64)> {
        let num_anchors = encodings.under_mlp1.rows();
        if num_anchors == 0 {
            // An empty anchor set must short-circuit: the head GEMMs reject zero-row
            // operands (see the regression tests in `cnt2crd`).
            return Vec::new();
        }
        let query_set = self.featurizer.featurize(query);
        let query_batch = RaggedBatch::from_sets_csr([&query_set]);
        let query_under_mlp1 = self.encode_sets(&self.mlp1, &query_batch);
        let query_under_mlp2 = self.encode_sets(&self.mlp2, &query_batch);

        // Direction 1: anchor ⊂% query (anchor feeds MLP1, query feeds MLP2).
        let query_rows = broadcast_rows(&query_under_mlp2, num_anchors);
        let forward_rates =
            self.head_inference(&self.expand_pairs(&encodings.under_mlp1, &query_rows));
        // Direction 2: query ⊂% anchor.
        let query_rows = broadcast_rows(&query_under_mlp1, num_anchors);
        let backward_rates =
            self.head_inference(&self.expand_pairs(&query_rows, &encodings.under_mlp2));

        (0..num_anchors)
            .map(|i| {
                (
                    forward_rates.get(i, 0) as f64,
                    backward_rates.get(i, 0) as f64,
                )
            })
            .collect()
    }

    /// Group serving: both containment directions of pre-encoded anchors against a whole
    /// *group* of queries (the concurrent front-end's unit of work), with the two
    /// containment-head passes fused over the group — one `(M·B)×4H` head batch per
    /// direction instead of `M` separate `B×4H` ones.
    ///
    /// Each query's featurization and set encoding deliberately runs through the exact
    /// single-query path ([`CrnModel::serve_against_encodings`]'s head inputs are built the
    /// same way): the ragged-batch CSR-vs-dense routing decision depends on batch density,
    /// so packing the (tiny) per-query encodings differently could re-associate their f32
    /// sums.  The head GEMMs compute every output row independently of the row count, which
    /// is what makes the fused group pass bit-identical to `M` single-query passes — the
    /// `EstimatorService` parity tests pin this.
    fn serve_group_against_encodings(
        &self,
        encodings: &AnchorEncodings,
        queries: &[&Query],
    ) -> Vec<Vec<(f64, f64)>> {
        let num_anchors = encodings.under_mlp1.rows();
        if num_anchors == 0 || queries.is_empty() {
            return queries.iter().map(|_| Vec::new()).collect();
        }
        let mut forward_blocks = Vec::with_capacity(queries.len());
        let mut backward_blocks = Vec::with_capacity(queries.len());
        for query in queries {
            let query_set = self.featurizer.featurize(query);
            let query_batch = RaggedBatch::from_sets_csr([&query_set]);
            let query_under_mlp1 = self.encode_sets(&self.mlp1, &query_batch);
            let query_under_mlp2 = self.encode_sets(&self.mlp2, &query_batch);
            // Direction 1: anchor ⊂% query (anchor feeds MLP1, query feeds MLP2).
            forward_blocks.push(self.expand_pairs(
                &encodings.under_mlp1,
                &broadcast_rows(&query_under_mlp2, num_anchors),
            ));
            // Direction 2: query ⊂% anchor.
            backward_blocks.push(self.expand_pairs(
                &broadcast_rows(&query_under_mlp1, num_anchors),
                &encodings.under_mlp2,
            ));
        }
        let forward_rates = self.head_inference(&concat_rows(&forward_blocks));
        let backward_rates = self.head_inference(&concat_rows(&backward_blocks));
        (0..queries.len())
            .map(|q| {
                (0..num_anchors)
                    .map(|i| {
                        let row = q * num_anchors + i;
                        (
                            forward_rates.get(row, 0) as f64,
                            backward_rates.get(row, 0) as f64,
                        )
                    })
                    .collect()
            })
            .collect()
    }
}

/// Pre-encoded anchor set: the per-anchor pooled representations under both set encoders
/// (the cacheable anchor-side state of the Cnt2Crd serving path).
struct AnchorEncodings {
    under_mlp1: Matrix,
    under_mlp2: Matrix,
}

impl ContainmentEstimator for CrnModel {
    fn name(&self) -> &str {
        "CRN"
    }

    fn estimate_containment(&self, q1: &Query, q2: &Query) -> f64 {
        self.predict(q1, q2)
    }

    fn predict_batch(&self, anchors: &[&Query], query: &Query) -> Vec<(f64, f64)> {
        CrnModel::predict_batch(self, anchors, query)
    }

    /// Forward direction only: encodes the anchors under `MLP1` and the query under `MLP2`
    /// once, then runs the containment head a single time over the whole batch — half the
    /// work of the bidirectional [`predict_batch`](ContainmentEstimator::predict_batch).
    fn predict_batch_forward(&self, anchors: &[&Query], query: &Query) -> Vec<f64> {
        if anchors.is_empty() {
            return Vec::new();
        }
        let anchor_sets: Vec<Matrix> = anchors
            .iter()
            .map(|anchor| self.featurizer.featurize(anchor))
            .collect();
        let anchor_batch = RaggedBatch::from_sets(anchor_sets.iter());
        let anchors_under_mlp1 = self.encode_sets(&self.mlp1, &anchor_batch);

        let query_set = self.featurizer.featurize(query);
        let query_batch = RaggedBatch::from_sets([&query_set]);
        let query_under_mlp2 = self.encode_sets(&self.mlp2, &query_batch);
        let query_rows = broadcast_rows(&query_under_mlp2, anchors.len());

        let rates = self.head_inference(&self.expand_pairs(&anchors_under_mlp1, &query_rows));
        (0..anchors.len()).map(|i| rates.get(i, 0) as f64).collect()
    }

    /// The CRN serving state for a fixed anchor set is its encoded form: the pooled `(B×H)`
    /// representations under both set encoders.  With it cached, an incoming query pays only
    /// for its own featurization + encoding and the two batched head passes.
    fn prepare_anchors(&self, anchors: &[&Query]) -> Option<Box<dyn std::any::Any + Send + Sync>> {
        if anchors.is_empty() {
            return None;
        }
        Some(Box::new(self.encode_anchor_queries(anchors)))
    }

    fn predict_batch_prepared(
        &self,
        prepared: &(dyn std::any::Any + Send + Sync),
        anchors: &[&Query],
        query: &Query,
    ) -> Vec<(f64, f64)> {
        if anchors.is_empty() {
            // Never reaches the GEMM path: an empty anchor pool has an empty result,
            // whatever serving state the caller cached.
            return Vec::new();
        }
        match prepared.downcast_ref::<AnchorEncodings>() {
            Some(encodings) if encodings.under_mlp1.rows() == anchors.len() => {
                self.serve_against_encodings(encodings, query)
            }
            _ => CrnModel::predict_batch(self, anchors, query),
        }
    }

    /// Fused group serving (see [`CrnModel::serve_group_against_encodings`]): one pair of
    /// containment-head batches for the whole query group, bit-identical per query to the
    /// single-query [`predict_batch_prepared`](ContainmentEstimator::predict_batch_prepared).
    fn predict_batch_prepared_multi(
        &self,
        prepared: &(dyn std::any::Any + Send + Sync),
        anchors: &[&Query],
        queries: &[&Query],
    ) -> Vec<Vec<(f64, f64)>> {
        if anchors.is_empty() {
            // Never reaches the GEMM path, whatever serving state the caller cached.
            return queries.iter().map(|_| Vec::new()).collect();
        }
        match prepared.downcast_ref::<AnchorEncodings>() {
            Some(encodings) if encodings.under_mlp1.rows() == anchors.len() => {
                self.serve_group_against_encodings(encodings, queries)
            }
            _ => queries
                .iter()
                .map(|query| CrnModel::predict_batch(self, anchors, query))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use crn_exec::label_containment_pairs;
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    fn training_pairs(db: &Database, pairs: usize, seed: u64) -> Vec<ContainmentSample> {
        let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
        let raw = gen.generate_pairs(pairs / 4 + 5, pairs);
        label_containment_pairs(db, &raw, 4)
    }

    #[test]
    fn untrained_model_outputs_valid_rates() {
        let db = generate_imdb(&ImdbConfig::tiny(10));
        let model = CrnModel::new(&db, TrainConfig::fast_test());
        let q = Query::scan("title");
        let rate = model.predict(&q, &q);
        assert!((0.0..=1.0).contains(&rate));
        assert_eq!(model.name(), "CRN");
        assert!(model.num_params() > 0);
    }

    #[test]
    fn parameter_count_matches_papers_closed_form() {
        // The paper (§3.5.3) counts 2·L·H + 8·H² + 6·H + 1 parameters: two set encoders
        // (L·H + H each), MLPout layer 1 (4H·2H + 2H) and layer 2 (2H·1 + 1).
        let db = generate_imdb(&ImdbConfig::tiny(10));
        let config = TrainConfig {
            hidden_size: 8,
            ..TrainConfig::fast_test()
        };
        let model = CrnModel::new(&db, config);
        let l = model.featurizer().vector_dim();
        let h = 8usize;
        let expected = 2 * l * h + 8 * h * h + 6 * h + 1;
        assert_eq!(model.num_params(), expected);
    }

    #[test]
    fn training_improves_validation_q_error() {
        let db = generate_imdb(&ImdbConfig::tiny(11));
        let samples = training_pairs(&db, 200, 11);
        let mut config = TrainConfig::fast_test();
        config.epochs = 20;
        let mut model = CrnModel::new(&db, config);
        let history = model.fit(&samples);
        assert!(!history.is_empty());
        assert!(
            history.best_validation <= history.epochs[0].validation_q_error,
            "best {} should improve on first {}",
            history.best_validation,
            history.epochs[0].validation_q_error
        );
    }

    #[test]
    fn trained_model_separates_full_and_empty_containment() {
        let db = generate_imdb(&ImdbConfig::tiny(12));
        let samples = training_pairs(&db, 300, 12);
        let mut config = TrainConfig::fast_test();
        config.epochs = 25;
        let mut model = CrnModel::new(&db, config);
        model.fit(&samples);
        // Fully-contained pairs (rate 1.0) should on average get higher predictions than
        // disjoint pairs (rate 0.0).
        let full: Vec<f64> = samples
            .iter()
            .filter(|s| s.rate >= 0.999)
            .take(20)
            .map(|s| model.predict(&s.q1, &s.q2))
            .collect();
        let empty: Vec<f64> = samples
            .iter()
            .filter(|s| s.rate <= 0.001)
            .take(20)
            .map(|s| model.predict(&s.q1, &s.q2))
            .collect();
        if full.len() >= 5 && empty.len() >= 5 {
            let mean_full: f64 = full.iter().sum::<f64>() / full.len() as f64;
            let mean_empty: f64 = empty.iter().sum::<f64>() / empty.len() as f64;
            assert!(
                mean_full > mean_empty,
                "full containment should score higher ({mean_full:.3}) than empty ({mean_empty:.3})"
            );
        }
    }

    #[test]
    fn ablation_variants_run_end_to_end() {
        let db = generate_imdb(&ImdbConfig::tiny(13));
        let samples = training_pairs(&db, 80, 13);
        for options in [
            CrnOptions {
                pooling: Pooling::Sum,
                expand: ExpandMode::Full,
            },
            CrnOptions {
                pooling: Pooling::Mean,
                expand: ExpandMode::Concat,
            },
        ] {
            let mut model = CrnModel::with_options(&db, TrainConfig::fast_test(), options);
            let history = model.fit(&samples);
            assert!(!history.is_empty());
            let rate = model.predict(&samples[0].q1, &samples[0].q2);
            assert!((0.0..=1.0).contains(&rate), "options {options:?}");
        }
    }

    #[test]
    fn prediction_is_deterministic() {
        let db = generate_imdb(&ImdbConfig::tiny(14));
        let samples = training_pairs(&db, 60, 14);
        let mut model = CrnModel::new(&db, TrainConfig::fast_test());
        model.fit(&samples);
        let (q1, q2) = (&samples[0].q1, &samples[0].q2);
        assert_eq!(model.predict(q1, q2), model.predict(q1, q2));
    }

    /// The batched forward pass must agree with per-pair forwards to float tolerance, for
    /// every pooling/expand ablation.
    #[test]
    fn batched_forward_matches_per_pair_forward() {
        let db = generate_imdb(&ImdbConfig::tiny(16));
        let samples = training_pairs(&db, 40, 16);
        for options in [
            CrnOptions::default(),
            CrnOptions {
                pooling: Pooling::Sum,
                expand: ExpandMode::Full,
            },
            CrnOptions {
                pooling: Pooling::Mean,
                expand: ExpandMode::Concat,
            },
        ] {
            let model = CrnModel::with_options(&db, TrainConfig::fast_test(), options);
            let features: Vec<(Matrix, Matrix)> = samples
                .iter()
                .map(|s| model.featurizer.featurize_pair(&s.q1, &s.q2))
                .collect();
            let batch1 = RaggedBatch::from_sets(features.iter().map(|(v1, _)| v1));
            let batch2 = RaggedBatch::from_sets(features.iter().map(|(_, v2)| v2));
            let batched = model.forward_batch(batch1, batch2).sigmoid_out;
            for (index, (v1, v2)) in features.iter().enumerate() {
                let single = model.forward_pair_reference(v1, v2).sigmoid_out.get(0, 0);
                assert!(
                    (batched.get(index, 0) - single).abs() < 1e-5,
                    "options {options:?}, pair {index}: batched {} vs single {single}",
                    batched.get(index, 0)
                );
            }
        }
    }

    /// The batched backward pass must accumulate the same parameter gradients as the
    /// per-sample loop, to 1e-5.
    #[test]
    fn batched_gradients_match_per_sample_accumulation() {
        let db = generate_imdb(&ImdbConfig::tiny(17));
        let samples = training_pairs(&db, 24, 17);
        for options in [
            CrnOptions::default(),
            CrnOptions {
                pooling: Pooling::Sum,
                expand: ExpandMode::Concat,
            },
        ] {
            let mut batched_model = CrnModel::with_options(&db, TrainConfig::fast_test(), options);
            let mut reference_model = batched_model.clone();
            let features: Vec<(Matrix, Matrix)> = samples
                .iter()
                .map(|s| batched_model.featurizer.featurize_pair(&s.q1, &s.q2))
                .collect();
            let scale = 1.0 / samples.len() as f32;

            // Per-sample accumulation (the seed-faithful reference path).
            reference_model.zero_grad();
            for (sample, (v1, v2)) in samples.iter().zip(&features) {
                let cache = reference_model.forward_pair_reference(v1, v2);
                let loss = loss_and_grad(
                    crn_nn::LossKind::QError,
                    cache.sigmoid_out.get(0, 0),
                    sample.rate as f32,
                    RATE_FLOOR,
                );
                reference_model.backward_pair_reference(&cache, loss.grad * scale);
            }

            // One batched backward.
            batched_model.zero_grad();
            let batch1 = RaggedBatch::from_sets(features.iter().map(|(v1, _)| v1));
            let batch2 = RaggedBatch::from_sets(features.iter().map(|(_, v2)| v2));
            let cache = batched_model.forward_batch(batch1, batch2);
            let mut grad = Matrix::zeros(samples.len(), 1);
            for (index, sample) in samples.iter().enumerate() {
                let loss = loss_and_grad(
                    crn_nn::LossKind::QError,
                    cache.sigmoid_out.get(index, 0),
                    sample.rate as f32,
                    RATE_FLOOR,
                );
                grad.set(index, 0, loss.grad * scale);
            }
            batched_model.backward_batch(&cache, &grad);

            for (name, batched, reference) in [
                (
                    "mlp1.w",
                    &batched_model.mlp1.w.grad,
                    &reference_model.mlp1.w.grad,
                ),
                (
                    "mlp1.b",
                    &batched_model.mlp1.b.grad,
                    &reference_model.mlp1.b.grad,
                ),
                (
                    "mlp2.w",
                    &batched_model.mlp2.w.grad,
                    &reference_model.mlp2.w.grad,
                ),
                (
                    "out1.w",
                    &batched_model.out1.w.grad,
                    &reference_model.out1.w.grad,
                ),
                (
                    "out2.w",
                    &batched_model.out2.w.grad,
                    &reference_model.out2.w.grad,
                ),
                (
                    "out2.b",
                    &batched_model.out2.b.grad,
                    &reference_model.out2.b.grad,
                ),
            ] {
                for (index, (a, b)) in batched.data().iter().zip(reference.data()).enumerate() {
                    // 1e-5 relative tolerance: the batched path re-associates the same f32
                    // sums, so tiny rounding differences scale with the gradient magnitude.
                    assert!(
                        (a - b).abs() < 1e-5 * b.abs().max(1.0),
                        "options {options:?}, {name}[{index}]: batched {a} vs per-sample {b}"
                    );
                }
            }
        }
    }

    /// `predict_batch` must return exactly what per-pair `predict` calls return, in both
    /// containment directions.
    #[test]
    fn predict_batch_matches_sequential_predictions() {
        let db = generate_imdb(&ImdbConfig::tiny(18));
        let samples = training_pairs(&db, 30, 18);
        let mut model = CrnModel::new(&db, TrainConfig::fast_test());
        model.fit(&samples);
        let query = &samples[0].q1;
        let anchors: Vec<&Query> = samples.iter().take(12).map(|s| &s.q2).collect();
        let batched = model.predict_batch(&anchors, query);
        assert_eq!(batched.len(), anchors.len());
        for (anchor, (forward, backward)) in anchors.iter().zip(&batched) {
            assert!((forward - model.predict(anchor, query)).abs() < 1e-5);
            assert!((backward - model.predict(query, anchor)).abs() < 1e-5);
        }
        assert!(model.predict_batch(&[], query).is_empty());
        // The forward-only batch agrees with the forward half of the bidirectional one.
        let forward_only = ContainmentEstimator::predict_batch_forward(&model, &anchors, query);
        assert_eq!(forward_only.len(), anchors.len());
        for ((forward, _), single) in batched.iter().zip(&forward_only) {
            assert!((forward - single).abs() < 1e-9);
        }
        assert!(ContainmentEstimator::predict_batch_forward(&model, &[], query).is_empty());
    }

    /// The batched and reference training loops see identical losses on the first epoch and
    /// both produce working models.
    #[test]
    fn fit_and_fit_reference_trace_the_same_first_epoch() {
        let db = generate_imdb(&ImdbConfig::tiny(21));
        let samples = training_pairs(&db, 100, 21);
        let config = TrainConfig {
            epochs: 1,
            ..TrainConfig::fast_test()
        };
        let mut batched = CrnModel::new(&db, config.clone());
        let mut reference = batched.clone();
        let batched_history = batched.fit(&samples);
        let reference_history = reference.fit_reference(&samples);
        let a = batched_history.epochs[0];
        let b = reference_history.epochs[0];
        assert!(
            (a.train_loss - b.train_loss).abs() < 1e-4 * b.train_loss.abs().max(1.0),
            "first-epoch losses must match: batched {} vs reference {}",
            a.train_loss,
            b.train_loss
        );
        assert!(
            (a.validation_q_error - b.validation_q_error).abs()
                < 1e-4 * b.validation_q_error.abs().max(1.0),
            "first-epoch validation must match: batched {} vs reference {}",
            a.validation_q_error,
            b.validation_q_error
        );
    }

    /// Deterministic mode must be **bit-identical** across thread counts: the shard
    /// partition and the gradient-reduction order are canonical, so `threads = 1, 2, 4`
    /// must produce the same per-epoch losses, the same validation trace and the same
    /// trained parameters — not merely close ones.
    #[test]
    fn deterministic_parallel_fit_is_thread_count_invariant() {
        let db = generate_imdb(&ImdbConfig::tiny(22));
        let samples = training_pairs(&db, 120, 22);
        let make_config = |threads: usize| TrainConfig {
            epochs: 2,
            patience: None,
            parallel: ThreadPoolConfig::deterministic(threads),
            ..TrainConfig::fast_test()
        };
        let mut baseline = CrnModel::new(&db, make_config(1));
        let baseline_history = baseline.fit(&samples);
        for threads in [2, 4] {
            let mut model = CrnModel::new(&db, make_config(threads));
            let history = model.fit(&samples);
            assert_eq!(
                history.epochs.len(),
                baseline_history.epochs.len(),
                "threads = {threads}"
            );
            for (a, b) in history.epochs.iter().zip(&baseline_history.epochs) {
                assert_eq!(
                    a.train_loss, b.train_loss,
                    "threads = {threads}: deterministic losses must be identical"
                );
                assert_eq!(
                    a.validation_q_error, b.validation_q_error,
                    "threads = {threads}: deterministic validation must be identical"
                );
            }
            for (sample, _) in samples.iter().zip(0..10) {
                assert_eq!(
                    model.predict(&sample.q1, &sample.q2),
                    baseline.predict(&sample.q1, &sample.q2),
                    "threads = {threads}: deterministic predictions must be identical"
                );
            }
            assert_eq!(
                model.mlp1.w.value, baseline.mlp1.w.value,
                "threads = {threads}: trained weights must be identical"
            );
        }
    }

    /// The deterministic parallel path must stay pinned to the seed-faithful per-sample
    /// reference: after two epochs at `threads = 1, 2, 4`, losses and predictions agree
    /// with [`CrnModel::fit_reference`] to 1e-5 (relative) — the same reassociation
    /// tolerance the PR-1 parity tests established.
    #[test]
    fn parallel_fit_matches_fit_reference_across_thread_counts() {
        let db = generate_imdb(&ImdbConfig::tiny(23));
        let samples = training_pairs(&db, 120, 23);
        let config = TrainConfig {
            epochs: 2,
            patience: None,
            parallel: ThreadPoolConfig::single_threaded(),
            ..TrainConfig::fast_test()
        };
        let mut reference = CrnModel::new(&db, config.clone());
        let reference_history = reference.fit_reference(&samples);
        let reference_predictions: Vec<f64> = samples
            .iter()
            .take(10)
            .map(|s| reference.predict(&s.q1, &s.q2))
            .collect();
        for threads in [1usize, 2, 4] {
            let mut parallel_config = config.clone();
            parallel_config.parallel = ThreadPoolConfig::deterministic(threads);
            let mut model = CrnModel::new(&db, parallel_config);
            let history = model.fit(&samples);
            for (a, b) in history.epochs.iter().zip(&reference_history.epochs) {
                assert!(
                    (a.train_loss - b.train_loss).abs() < 1e-5 * b.train_loss.abs().max(1.0),
                    "threads = {threads}, epoch {}: loss {} vs reference {}",
                    a.epoch,
                    a.train_loss,
                    b.train_loss
                );
            }
            for (index, (sample, expected)) in
                samples.iter().zip(&reference_predictions).enumerate()
            {
                let prediction = model.predict(&sample.q1, &sample.q2);
                assert!(
                    (prediction - expected).abs() < 1e-5,
                    "threads = {threads}, pair {index}: prediction {prediction} vs reference {expected}"
                );
            }
        }
    }

    /// The sharded backward (slice → per-shard backward → fixed-order reduction) must
    /// accumulate the same parameter gradients as the per-sample reference loop, to 1e-5
    /// relative — for several shard counts and for both reduction orders.
    #[test]
    fn sharded_gradients_match_per_sample_accumulation() {
        let db = generate_imdb(&ImdbConfig::tiny(24));
        let samples = training_pairs(&db, 24, 24);
        let mut reference_model = CrnModel::new(&db, TrainConfig::fast_test());
        let features: Vec<(Matrix, Matrix)> = samples
            .iter()
            .map(|s| reference_model.featurizer.featurize_pair(&s.q1, &s.q2))
            .collect();
        let scale = 1.0 / samples.len() as f32;

        // Per-sample accumulation (the seed-faithful reference path).
        reference_model.zero_grad();
        for (sample, (v1, v2)) in samples.iter().zip(&features) {
            let cache = reference_model.forward_pair_reference(v1, v2);
            let loss = loss_and_grad(
                crn_nn::LossKind::QError,
                cache.sigmoid_out.get(0, 0),
                sample.rate as f32,
                RATE_FLOOR,
            );
            reference_model.backward_pair_reference(&cache, loss.grad * scale);
        }

        let batch1 = RaggedBatch::from_sets(features.iter().map(|(v1, _)| v1));
        let batch2 = RaggedBatch::from_sets(features.iter().map(|(_, v2)| v2));
        let targets: Vec<f32> = samples.iter().map(|s| s.rate as f32).collect();
        let indices: Vec<usize> = (0..samples.len()).collect();
        let model = CrnModel::new(&db, TrainConfig::fast_test());
        for (threads, deterministic) in [(1, false), (2, false), (4, false), (4, true), (3, true)] {
            let pool = if deterministic {
                ThreadPoolConfig::deterministic(threads)
            } else {
                ThreadPoolConfig::with_threads(threads)
            };
            let (losses, grads) = model.sharded_batch_step(
                &pool,
                &pool.worker_pool(),
                &indices,
                batch1.clone(),
                batch2.clone(),
                &targets,
            );
            assert_eq!(losses.len(), samples.len());
            for ((name, index), reference) in [
                ("mlp1.w", grad_index::MLP1_W),
                ("mlp1.b", grad_index::MLP1_B),
                ("mlp2.w", grad_index::MLP2_W),
                ("out1.w", grad_index::OUT1_W),
                ("out2.w", grad_index::OUT2_W),
                ("out2.b", grad_index::OUT2_B),
            ]
            .into_iter()
            .zip([
                &reference_model.mlp1.w.grad,
                &reference_model.mlp1.b.grad,
                &reference_model.mlp2.w.grad,
                &reference_model.out1.w.grad,
                &reference_model.out2.w.grad,
                &reference_model.out2.b.grad,
            ]) {
                for (position, (a, b)) in grads.parts()[index]
                    .data()
                    .iter()
                    .zip(reference.data())
                    .enumerate()
                {
                    assert!(
                        (a - b).abs() < 1e-5 * b.abs().max(1.0),
                        "threads {threads} det {deterministic}, {name}[{position}]: sharded {a} vs per-sample {b}"
                    );
                }
            }
        }
    }

    /// Finite-difference check of the full CRN backward pass (including Expand).
    #[test]
    fn gradient_check_full_model() {
        let db = generate_imdb(&ImdbConfig::tiny(15));
        let config = TrainConfig {
            hidden_size: 6,
            ..TrainConfig::fast_test()
        };
        let mut model = CrnModel::new(&db, config);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(15));
        let pairs = gen.generate_pairs(5, 5);
        let (q1, q2) = &pairs[0];
        let (v1, v2) = model.featurizer.featurize_pair(q1, q2);
        let target = 0.35f32;

        // Analytic gradient of the q-error loss with respect to a few weights of mlp1 and out1.
        let cache = model.forward_pair_reference(&v1, &v2);
        let prediction = cache.sigmoid_out.get(0, 0);
        let loss = loss_and_grad(crn_nn::LossKind::QError, prediction, target, RATE_FLOOR);
        model.zero_grad();
        model.backward_pair_reference(&cache, loss.grad);

        let loss_value = |model: &CrnModel| {
            let p = model.forward_pair_reference(&v1, &v2).sigmoid_out.get(0, 0);
            loss_and_grad(crn_nn::LossKind::QError, p, target, RATE_FLOOR).loss
        };
        let eps = 1e-2f32;
        for (row, col) in [(0usize, 0usize), (3, 2), (7, 5)] {
            let analytic = model.mlp1.w.grad.get(row, col);
            let original = model.mlp1.w.value.get(row, col);
            model.mlp1.w.value.set(row, col, original + eps);
            let plus = loss_value(&model);
            model.mlp1.w.value.set(row, col, original - eps);
            let minus = loss_value(&model);
            model.mlp1.w.value.set(row, col, original);
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 0.05,
                "mlp1 ({row},{col}): numeric {numeric} vs analytic {analytic}"
            );
        }
        for (row, col) in [(0usize, 0usize), (5, 3)] {
            let analytic = model.out1.w.grad.get(row, col);
            let original = model.out1.w.value.get(row, col);
            model.out1.w.value.set(row, col, original + eps);
            let plus = loss_value(&model);
            model.out1.w.value.set(row, col, original - eps);
            let minus = loss_value(&model);
            model.out1.w.value.set(row, col, original);
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 0.05,
                "out1 ({row},{col}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// The warm-start incremental fit adapts a trained model to a fresh corpus (its
    /// training loss on that corpus drops), runs exactly the requested epochs, and is
    /// deterministic: two clones fine-tuned with cloned Adam states come out bit-identical.
    #[test]
    fn fit_incremental_adapts_and_is_deterministic() {
        let db = generate_imdb(&ImdbConfig::tiny(26));
        let base_samples = training_pairs(&db, 120, 26);
        let mut model = CrnModel::new(&db, TrainConfig::fast_test());
        model.fit(&base_samples);

        // A "fresh feedback" corpus the base fit never saw.
        let fresh = training_pairs(&db, 60, 27);
        let mut adam = Adam::new(model.config().learning_rate);
        let mut tuned = model.clone();
        let history = tuned.fit_incremental(&fresh, &mut adam, 4);
        assert_eq!(history.len(), 4, "no early stopping in incremental mode");
        assert!(adam.step_count > 0, "the caller's Adam state advanced");
        assert!(
            history.epochs.last().unwrap().train_loss < history.epochs[0].train_loss,
            "fine-tuning must reduce the training loss on the fresh corpus \
             (first {}, last {})",
            history.epochs[0].train_loss,
            history.epochs.last().unwrap().train_loss
        );

        // Determinism: same start, same corpus, same Adam state -> bit-identical weights.
        let mut adam_again = Adam::new(model.config().learning_rate);
        let mut tuned_again = model.clone();
        let history_again = tuned_again.fit_incremental(&fresh, &mut adam_again, 4);
        assert_eq!(history.epochs, history_again.epochs);
        assert_eq!(tuned.mlp1.w.value, tuned_again.mlp1.w.value);
        assert_eq!(tuned.out2.w.value, tuned_again.out2.w.value);
        assert_eq!(adam.step_count, adam_again.step_count);

        // Resuming the same Adam for a second refresh keeps advancing (and reshuffles:
        // the second refresh's first epoch differs from re-running the first).
        let steps_after_first = adam.step_count;
        let second = tuned.fit_incremental(&fresh, &mut adam, 1);
        assert_eq!(second.len(), 1);
        assert!(adam.step_count > steps_after_first);

        // Degenerate inputs are no-ops.
        let mut untouched = model.clone();
        assert!(untouched.fit_incremental(&[], &mut adam, 3).is_empty());
        assert!(untouched.fit_incremental(&fresh, &mut adam, 0).is_empty());
        assert_eq!(untouched.mlp1.w.value, model.mlp1.w.value);
    }

    /// Deterministic mode carries over to the incremental fit: at `threads = 1, 2, 4`
    /// the fine-tuned models are bit-identical (same canonical shards, same reduction
    /// order — the online refresh keeps the repository's reproducibility story).
    #[test]
    fn fit_incremental_is_bit_identical_across_thread_counts_in_deterministic_mode() {
        let db = generate_imdb(&ImdbConfig::tiny(28));
        let base_samples = training_pairs(&db, 100, 28);
        let fresh = training_pairs(&db, 50, 29);
        let mut baseline: Option<CrnModel> = None;
        for threads in [1usize, 2, 4] {
            let mut config = TrainConfig::fast_test();
            config.parallel = ThreadPoolConfig::deterministic(threads);
            let mut model = CrnModel::new(&db, config);
            model.fit(&base_samples);
            let mut adam = Adam::new(model.config().learning_rate);
            model.fit_incremental(&fresh, &mut adam, 3);
            match &baseline {
                None => baseline = Some(model),
                Some(reference) => {
                    assert_eq!(
                        model.mlp1.w.value, reference.mlp1.w.value,
                        "threads = {threads}: deterministic incremental weights must match"
                    );
                    assert_eq!(model.out1.w.value, reference.out1.w.value);
                    assert_eq!(model.out2.w.value, reference.out2.w.value);
                    for sample in fresh.iter().take(8) {
                        assert_eq!(
                            model.predict(&sample.q1, &sample.q2),
                            reference.predict(&sample.q1, &sample.q2),
                            "threads = {threads}: deterministic predictions must match"
                        );
                    }
                }
            }
        }
    }
}
