//! The CRN (Containment Rate Network) model — the paper's primary contribution (§3.2).
//!
//! Three stages, exactly as in Figure 1 of the paper:
//!
//! 1. **Featurization** — each query of the input pair `(Q1, Q2)` becomes a set of vectors in
//!    the shared format of [`crate::featurize::CrnFeaturizer`].
//! 2. **Set encoding** — each vector of set `Vi` is passed through a one-layer MLP (`MLP1` for
//!    the first query, `MLP2` for the second) with ReLU, and the transformed vectors are
//!    *averaged* into a single representative vector `Qvec_i` of width `H` (§3.2.2).
//! 3. **Containment head** — `Expand(Qvec1, Qvec2) = [v1, v2, |v1 − v2|, v1 ⊙ v2]` is fed into
//!    a two-layer MLP (`MLPout`) whose sigmoid output is the estimated containment rate
//!    `Q1 ⊂% Q2 ∈ [0, 1]` (§3.2.3).
//!
//! Training minimizes the mean q-error of the predicted rates (§3.2.4) with Adam,
//! mini-batches and early stopping on a validation split (§3.3); MSE/MAE and sum-pooling /
//! plain-concatenation variants are available for the ablation experiments.

use crate::featurize::CrnFeaturizer;
use crn_db::database::Database;
use crn_exec::ContainmentSample;
use crn_nn::layers::{
    mean_pool, mean_pool_backward, relu, relu_backward, sigmoid, sigmoid_backward, Dense,
};
use crn_nn::loss::{loss_and_grad, mean_q_error};
use crn_nn::matrix::Matrix;
use crn_nn::optim::Adam;
use crn_nn::train::{
    shuffled_batches, train_validation_split, EarlyStopping, EpochStats, TrainConfig,
    TrainingHistory,
};
use crn_query::ast::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crn_estimators::ContainmentEstimator;

/// Containment rates below this floor are clamped before the q-error is formed (the paper's
/// q-error is undefined at exactly zero).
pub const RATE_FLOOR: f32 = 0.01;

/// How the per-element representations are aggregated into a query vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pooling {
    /// Average over the set elements (the paper's choice, §3.2.2).
    Mean,
    /// Sum over the set elements (ablation: the paper argues the average generalizes better
    /// to different set sizes).
    Sum,
}

/// How the two query vectors are combined before `MLPout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpandMode {
    /// `[v1, v2, |v1 − v2|, v1 ⊙ v2]` — the paper's `Expand` function (§3.2.3).
    Full,
    /// Plain concatenation `[v1, v2]` (ablation).
    Concat,
}

/// Architecture/ablation options of the CRN model (everything beyond [`TrainConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrnOptions {
    /// Set aggregation.
    pub pooling: Pooling,
    /// Pair combination.
    pub expand: ExpandMode,
}

impl Default for CrnOptions {
    fn default() -> Self {
        CrnOptions {
            pooling: Pooling::Mean,
            expand: ExpandMode::Full,
        }
    }
}

/// The CRN containment-rate estimation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrnModel {
    featurizer: CrnFeaturizer,
    /// Set encoder of the first query (`MLP1`).
    mlp1: Dense,
    /// Set encoder of the second query (`MLP2`).
    mlp2: Dense,
    /// First layer of `MLPout` (`4H → 2H` for the full expand, `2H → 2H` for plain concat).
    out1: Dense,
    /// Second layer of `MLPout` (`2H → 1`).
    out2: Dense,
    config: TrainConfig,
    options: CrnOptions,
}

/// Forward-pass cache of one pair.
struct PairCache {
    v1: Matrix,
    v2: Matrix,
    z1: Matrix,
    a1: Matrix,
    z2: Matrix,
    a2: Matrix,
    qvec1: Matrix,
    qvec2: Matrix,
    expanded: Matrix,
    z_out1: Matrix,
    a_out1: Matrix,
    sigmoid_out: Matrix,
}

impl CrnModel {
    /// Creates an untrained CRN model for a database snapshot with the paper's architecture.
    pub fn new(db: &Database, config: TrainConfig) -> Self {
        Self::with_options(db, config, CrnOptions::default())
    }

    /// Creates an untrained CRN model with explicit ablation options.
    pub fn with_options(db: &Database, config: TrainConfig, options: CrnOptions) -> Self {
        let featurizer = CrnFeaturizer::new(db);
        Self::from_featurizer(featurizer, config, options)
    }

    /// Creates the model from a pre-built featurizer (used by tests and serialization).
    pub fn from_featurizer(
        featurizer: CrnFeaturizer,
        config: TrainConfig,
        options: CrnOptions,
    ) -> Self {
        let hidden = config.hidden_size;
        let input_dim = featurizer.vector_dim();
        let expand_dim = match options.expand {
            ExpandMode::Full => 4 * hidden,
            ExpandMode::Concat => 2 * hidden,
        };
        let seed = config.seed;
        CrnModel {
            mlp1: Dense::new(input_dim, hidden, seed.wrapping_add(100)),
            mlp2: Dense::new(input_dim, hidden, seed.wrapping_add(200)),
            out1: Dense::new(expand_dim, 2 * hidden, seed.wrapping_add(300)),
            out2: Dense::new(2 * hidden, 1, seed.wrapping_add(400)),
            featurizer,
            config,
            options,
        }
    }

    /// The featurizer (exposed so transformations can reuse its normalization).
    pub fn featurizer(&self) -> &CrnFeaturizer {
        &self.featurizer
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The ablation options.
    pub fn options(&self) -> &CrnOptions {
        &self.options
    }

    /// Hidden layer width `H`.
    pub fn hidden_size(&self) -> usize {
        self.config.hidden_size
    }

    /// Total number of trainable parameters.
    ///
    /// For the paper's architecture this matches the closed form of §3.5.3,
    /// `2·L·H + 8·H² + 6·H + 1` (with the paper's three-operator one-hot replaced by ours).
    pub fn num_params(&self) -> usize {
        self.mlp1.num_params() + self.mlp2.num_params() + self.out1.num_params() + self.out2.num_params()
    }

    fn pool(&self, activated: &Matrix) -> Matrix {
        match self.options.pooling {
            Pooling::Mean => mean_pool(activated),
            Pooling::Sum => {
                let mut pooled = Matrix::zeros(1, activated.cols());
                let sums = activated.column_sums();
                pooled.row_mut(0).copy_from_slice(&sums);
                pooled
            }
        }
    }

    fn pool_backward(&self, num_rows: usize, grad_pooled: &Matrix) -> Matrix {
        match self.options.pooling {
            Pooling::Mean => mean_pool_backward(num_rows, grad_pooled),
            Pooling::Sum => {
                let mut grad = Matrix::zeros(num_rows, grad_pooled.cols());
                for r in 0..num_rows {
                    grad.row_mut(r).copy_from_slice(grad_pooled.row(0));
                }
                grad
            }
        }
    }

    fn expand(&self, qvec1: &Matrix, qvec2: &Matrix) -> Matrix {
        let hidden = qvec1.cols();
        match self.options.expand {
            ExpandMode::Full => {
                let mut expanded = Matrix::zeros(1, 4 * hidden);
                for i in 0..hidden {
                    let a = qvec1.get(0, i);
                    let b = qvec2.get(0, i);
                    expanded.set(0, i, a);
                    expanded.set(0, hidden + i, b);
                    expanded.set(0, 2 * hidden + i, (a - b).abs());
                    expanded.set(0, 3 * hidden + i, a * b);
                }
                expanded
            }
            ExpandMode::Concat => {
                let mut expanded = Matrix::zeros(1, 2 * hidden);
                expanded.row_mut(0)[..hidden].copy_from_slice(qvec1.row(0));
                expanded.row_mut(0)[hidden..].copy_from_slice(qvec2.row(0));
                expanded
            }
        }
    }

    /// Gradient of the expand function: maps `dL/d expanded` to `(dL/d qvec1, dL/d qvec2)`.
    fn expand_backward(
        &self,
        qvec1: &Matrix,
        qvec2: &Matrix,
        grad_expanded: &Matrix,
    ) -> (Matrix, Matrix) {
        let hidden = qvec1.cols();
        let mut grad1 = Matrix::zeros(1, hidden);
        let mut grad2 = Matrix::zeros(1, hidden);
        match self.options.expand {
            ExpandMode::Full => {
                for i in 0..hidden {
                    let a = qvec1.get(0, i);
                    let b = qvec2.get(0, i);
                    let g_a = grad_expanded.get(0, i);
                    let g_b = grad_expanded.get(0, hidden + i);
                    let g_abs = grad_expanded.get(0, 2 * hidden + i);
                    let g_prod = grad_expanded.get(0, 3 * hidden + i);
                    // d|a-b|/da = sign(a-b); the subgradient at a == b is taken as 0.
                    let sign = if a > b {
                        1.0
                    } else if a < b {
                        -1.0
                    } else {
                        0.0
                    };
                    grad1.set(0, i, g_a + g_abs * sign + g_prod * b);
                    grad2.set(0, i, g_b - g_abs * sign + g_prod * a);
                }
            }
            ExpandMode::Concat => {
                grad1.row_mut(0).copy_from_slice(&grad_expanded.row(0)[..hidden]);
                grad2.row_mut(0).copy_from_slice(&grad_expanded.row(0)[hidden..]);
            }
        }
        (grad1, grad2)
    }

    fn forward(&self, v1: &Matrix, v2: &Matrix) -> PairCache {
        let z1 = self.mlp1.forward(v1);
        let a1 = relu(&z1);
        let qvec1 = self.pool(&a1);
        let z2 = self.mlp2.forward(v2);
        let a2 = relu(&z2);
        let qvec2 = self.pool(&a2);
        let expanded = self.expand(&qvec1, &qvec2);
        let z_out1 = self.out1.forward(&expanded);
        let a_out1 = relu(&z_out1);
        let z_out2 = self.out2.forward(&a_out1);
        let sigmoid_out = sigmoid(&z_out2);
        PairCache {
            v1: v1.clone(),
            v2: v2.clone(),
            z1,
            a1,
            z2,
            a2,
            qvec1,
            qvec2,
            expanded,
            z_out1,
            a_out1,
            sigmoid_out,
        }
    }

    fn backward(&mut self, cache: &PairCache, grad_output: f32) {
        let grad_out = Matrix::from_vec(1, 1, vec![grad_output]);
        let grad_z_out2 = sigmoid_backward(&cache.sigmoid_out, &grad_out);
        let grad_a_out1 = self.out2.backward(&cache.a_out1, &grad_z_out2);
        let grad_z_out1 = relu_backward(&cache.z_out1, &grad_a_out1);
        let grad_expanded = self.out1.backward(&cache.expanded, &grad_z_out1);
        let (grad_qvec1, grad_qvec2) =
            self.expand_backward(&cache.qvec1, &cache.qvec2, &grad_expanded);

        let grad_a1 = self.pool_backward(cache.a1.rows(), &grad_qvec1);
        let grad_z1 = relu_backward(&cache.z1, &grad_a1);
        let _ = self.mlp1.backward(&cache.v1, &grad_z1);

        let grad_a2 = self.pool_backward(cache.a2.rows(), &grad_qvec2);
        let grad_z2 = relu_backward(&cache.z2, &grad_a2);
        let _ = self.mlp2.backward(&cache.v2, &grad_z2);
    }

    fn zero_grad(&mut self) {
        self.mlp1.zero_grad();
        self.mlp2.zero_grad();
        self.out1.zero_grad();
        self.out2.zero_grad();
    }

    fn adam_step(&mut self, adam: &mut Adam) {
        let CrnModel {
            mlp1,
            mlp2,
            out1,
            out2,
            ..
        } = self;
        let mut params = Vec::new();
        params.extend(mlp1.params_mut());
        params.extend(mlp2.params_mut());
        params.extend(out1.params_mut());
        params.extend(out2.params_mut());
        adam.step(params);
    }

    /// Trains the model on labelled containment pairs; returns the per-epoch history
    /// (used to reproduce Figures 3 and 4).
    pub fn fit(&mut self, samples: &[ContainmentSample]) -> TrainingHistory {
        let features: Vec<(Matrix, Matrix)> = samples
            .iter()
            .map(|s| self.featurizer.featurize_pair(&s.q1, &s.q2))
            .collect();
        let targets: Vec<f32> = samples.iter().map(|s| s.rate as f32).collect();

        let (train_idx, valid_idx) = train_validation_split(
            samples.len(),
            self.config.validation_fraction,
            self.config.seed,
        );
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(7));
        let mut early_stopping = EarlyStopping::new(self.config.patience);
        let mut history = TrainingHistory::default();
        let mut best: Option<CrnModel> = None;

        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0f64;
            let mut epoch_samples = 0usize;
            for batch in shuffled_batches(&train_idx, self.config.batch_size, &mut rng) {
                self.zero_grad();
                for &index in &batch {
                    let (v1, v2) = &features[index];
                    let cache = self.forward(v1, v2);
                    let prediction = cache.sigmoid_out.get(0, 0);
                    let loss = loss_and_grad(
                        self.config.loss,
                        prediction,
                        targets[index],
                        RATE_FLOOR,
                    );
                    epoch_loss += loss.loss as f64;
                    epoch_samples += 1;
                    self.backward(&cache, loss.grad / batch.len() as f32);
                }
                self.adam_step(&mut adam);
            }

            let validation_q_error = if valid_idx.is_empty() {
                epoch_loss / epoch_samples.max(1) as f64
            } else {
                let pairs: Vec<(f64, f64)> = valid_idx
                    .iter()
                    .map(|&i| {
                        let (v1, v2) = &features[i];
                        let prediction = self.forward(v1, v2).sigmoid_out.get(0, 0) as f64;
                        (prediction, targets[i] as f64)
                    })
                    .collect();
                mean_q_error(&pairs, RATE_FLOOR as f64)
            };
            let improved = history.record(EpochStats {
                epoch,
                train_loss: epoch_loss / epoch_samples.max(1) as f64,
                validation_q_error,
            });
            if improved {
                best = Some(self.clone());
            }
            if early_stopping.should_stop(!improved) {
                break;
            }
        }
        if let Some(best) = best {
            *self = best;
        }
        history
    }

    /// Predicts the containment rate `q1 ⊂% q2` in `[0, 1]`.
    pub fn predict(&self, q1: &Query, q2: &Query) -> f64 {
        let (v1, v2) = self.featurizer.featurize_pair(q1, q2);
        self.forward(&v1, &v2).sigmoid_out.get(0, 0) as f64
    }
}

impl ContainmentEstimator for CrnModel {
    fn name(&self) -> &str {
        "CRN"
    }

    fn estimate_containment(&self, q1: &Query, q2: &Query) -> f64 {
        self.predict(q1, q2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use crn_exec::label_containment_pairs;
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    fn training_pairs(db: &Database, pairs: usize, seed: u64) -> Vec<ContainmentSample> {
        let mut gen = QueryGenerator::new(db, GeneratorConfig::paper(seed));
        let raw = gen.generate_pairs(pairs / 4 + 5, pairs);
        label_containment_pairs(db, &raw, 4)
    }

    #[test]
    fn untrained_model_outputs_valid_rates() {
        let db = generate_imdb(&ImdbConfig::tiny(10));
        let model = CrnModel::new(&db, TrainConfig::fast_test());
        let q = Query::scan("title");
        let rate = model.predict(&q, &q);
        assert!((0.0..=1.0).contains(&rate));
        assert_eq!(model.name(), "CRN");
        assert!(model.num_params() > 0);
    }

    #[test]
    fn parameter_count_matches_papers_closed_form() {
        // The paper (§3.5.3) counts 2·L·H + 8·H² + 6·H + 1 parameters: two set encoders
        // (L·H + H each), MLPout layer 1 (4H·2H + 2H) and layer 2 (2H·1 + 1).
        let db = generate_imdb(&ImdbConfig::tiny(10));
        let config = TrainConfig { hidden_size: 8, ..TrainConfig::fast_test() };
        let model = CrnModel::new(&db, config);
        let l = model.featurizer().vector_dim();
        let h = 8usize;
        let expected = 2 * l * h + 8 * h * h + 6 * h + 1;
        assert_eq!(model.num_params(), expected);
    }

    #[test]
    fn training_improves_validation_q_error() {
        let db = generate_imdb(&ImdbConfig::tiny(11));
        let samples = training_pairs(&db, 200, 11);
        let mut config = TrainConfig::fast_test();
        config.epochs = 20;
        let mut model = CrnModel::new(&db, config);
        let history = model.fit(&samples);
        assert!(!history.is_empty());
        assert!(
            history.best_validation <= history.epochs[0].validation_q_error,
            "best {} should improve on first {}",
            history.best_validation,
            history.epochs[0].validation_q_error
        );
    }

    #[test]
    fn trained_model_separates_full_and_empty_containment() {
        let db = generate_imdb(&ImdbConfig::tiny(12));
        let samples = training_pairs(&db, 300, 12);
        let mut config = TrainConfig::fast_test();
        config.epochs = 25;
        let mut model = CrnModel::new(&db, config);
        model.fit(&samples);
        // Fully-contained pairs (rate 1.0) should on average get higher predictions than
        // disjoint pairs (rate 0.0).
        let full: Vec<f64> = samples
            .iter()
            .filter(|s| s.rate >= 0.999)
            .take(20)
            .map(|s| model.predict(&s.q1, &s.q2))
            .collect();
        let empty: Vec<f64> = samples
            .iter()
            .filter(|s| s.rate <= 0.001)
            .take(20)
            .map(|s| model.predict(&s.q1, &s.q2))
            .collect();
        if full.len() >= 5 && empty.len() >= 5 {
            let mean_full: f64 = full.iter().sum::<f64>() / full.len() as f64;
            let mean_empty: f64 = empty.iter().sum::<f64>() / empty.len() as f64;
            assert!(
                mean_full > mean_empty,
                "full containment should score higher ({mean_full:.3}) than empty ({mean_empty:.3})"
            );
        }
    }

    #[test]
    fn ablation_variants_run_end_to_end() {
        let db = generate_imdb(&ImdbConfig::tiny(13));
        let samples = training_pairs(&db, 80, 13);
        for options in [
            CrnOptions { pooling: Pooling::Sum, expand: ExpandMode::Full },
            CrnOptions { pooling: Pooling::Mean, expand: ExpandMode::Concat },
        ] {
            let mut model = CrnModel::with_options(&db, TrainConfig::fast_test(), options);
            let history = model.fit(&samples);
            assert!(!history.is_empty());
            let rate = model.predict(&samples[0].q1, &samples[0].q2);
            assert!((0.0..=1.0).contains(&rate), "options {options:?}");
        }
    }

    #[test]
    fn prediction_is_deterministic() {
        let db = generate_imdb(&ImdbConfig::tiny(14));
        let samples = training_pairs(&db, 60, 14);
        let mut model = CrnModel::new(&db, TrainConfig::fast_test());
        model.fit(&samples);
        let (q1, q2) = (&samples[0].q1, &samples[0].q2);
        assert_eq!(model.predict(q1, q2), model.predict(q1, q2));
    }

    /// Finite-difference check of the full CRN backward pass (including Expand).
    #[test]
    fn gradient_check_full_model() {
        let db = generate_imdb(&ImdbConfig::tiny(15));
        let config = TrainConfig { hidden_size: 6, ..TrainConfig::fast_test() };
        let mut model = CrnModel::new(&db, config);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(15));
        let pairs = gen.generate_pairs(5, 5);
        let (q1, q2) = &pairs[0];
        let (v1, v2) = model.featurizer.featurize_pair(q1, q2);
        let target = 0.35f32;

        // Analytic gradient of the q-error loss with respect to a few weights of mlp1 and out1.
        let cache = model.forward(&v1, &v2);
        let prediction = cache.sigmoid_out.get(0, 0);
        let loss = loss_and_grad(crn_nn::LossKind::QError, prediction, target, RATE_FLOOR);
        model.zero_grad();
        model.backward(&cache, loss.grad);

        let loss_value = |model: &CrnModel| {
            let p = model.forward(&v1, &v2).sigmoid_out.get(0, 0);
            loss_and_grad(crn_nn::LossKind::QError, p, target, RATE_FLOOR).loss
        };
        let eps = 1e-2f32;
        for (row, col) in [(0usize, 0usize), (3, 2), (7, 5)] {
            let analytic = model.mlp1.w.grad.get(row, col);
            let original = model.mlp1.w.value.get(row, col);
            model.mlp1.w.value.set(row, col, original + eps);
            let plus = loss_value(&model);
            model.mlp1.w.value.set(row, col, original - eps);
            let minus = loss_value(&model);
            model.mlp1.w.value.set(row, col, original);
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 0.05,
                "mlp1 ({row},{col}): numeric {numeric} vs analytic {analytic}"
            );
        }
        for (row, col) in [(0usize, 0usize), (5, 3)] {
            let analytic = model.out1.w.grad.get(row, col);
            let original = model.out1.w.value.get(row, col);
            model.out1.w.value.set(row, col, original + eps);
            let plus = loss_value(&model);
            model.out1.w.value.set(row, col, original - eps);
            let minus = loss_value(&model);
            model.out1.w.value.set(row, col, original);
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 0.05,
                "out1 ({row},{col}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}
