//! Sharded queries-pool storage behind an immutable-snapshot API — the storage layer of the
//! concurrent serving subsystem.
//!
//! A [`ShardedPool`] distributes pool entries over `N` [`PoolShard`]s by **canonical query
//! hash** (the same unkeyed hash the duplicate index uses), so each shard owns a disjoint
//! slice of the entries together with its own FROM-clause and duplicate indexes.  The live
//! state is a [`PoolSnapshot`]: an `Arc`'d, fully immutable view swapped under a
//! `parking_lot::RwLock`.
//!
//! * **Readers never block on writers** beyond the pointer swap: [`ShardedPool::snapshot`]
//!   clones the current `Arc` under a read lock and serves from the frozen shards for as
//!   long as it likes — inserts and removals build a *new* snapshot (copy-on-write of the
//!   single affected shard; the untouched shards are shared by `Arc`) and swap it in.
//! * **Sharded matching is a partition of sequential matching**: a query's matching entries
//!   in shard `s` are exactly the pool-wide matching entries routed to `s`, so
//!   concatenating the per-shard lists in canonical shard order `0..N` is a permutation of
//!   the single-shard scan.  The serving layer's final functions (median / mean over the
//!   per-entry estimates) are order-insensitive, which makes sharded serving bit-identical
//!   to the sequential path — the parity tests in [`crate::service`] pin this at
//!   `N = 1, 2, 8`.
//! * **Shard versions** (monotonic per pool, bumped on every copy-on-write replacement) let
//!   the serving layer cache per-shard anchor state and invalidate exactly the shards a
//!   write touched.

use crate::pool::{query_hash, PoolEntry, PoolShard, QueriesPool};
use crn_query::ast::Query;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable point-in-time view of a sharded pool: the unit the serving layer reads.
///
/// Snapshots are cheap to hold (a vector of `Arc`s) and never change after construction;
/// concurrent maintenance on the owning [`ShardedPool`] produces *new* snapshots.
#[derive(Debug, Clone)]
pub struct PoolSnapshot {
    shards: Vec<Arc<PoolShard>>,
    /// Per-shard versions: monotonic within the owning pool, bumped whenever the shard is
    /// replaced by a write.  Serving caches key their per-shard state by this.
    versions: Vec<u64>,
}

impl PoolSnapshot {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The frozen shards, in canonical shard order.
    pub fn shards(&self) -> &[Arc<PoolShard>] {
        &self.shards
    }

    /// One shard.
    pub fn shard(&self, index: usize) -> &PoolShard {
        &self.shards[index]
    }

    /// The version of one shard (see the type docs for the invalidation contract).
    pub fn shard_version(&self, index: usize) -> u64 {
        self.versions[index]
    }

    /// The snapshot-wide pool version: the sum of the per-shard versions.
    ///
    /// Every copy-on-write maintenance swap bumps exactly one shard's version to a fresh
    /// strictly-larger value, so this sum is **strictly monotonic** across successor
    /// snapshots of one pool: two snapshots share a pool version only if they are the
    /// same pool state.  A query's estimate reads matching anchors from *every* shard,
    /// so this — not the query's own shard version — is the invalidation granularity a
    /// whole-estimate cache needs: any upsert anywhere invalidates, exactly.
    pub fn version(&self) -> u64 {
        self.versions.iter().sum()
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Returns true when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Entries matching the query's FROM clause across all shards, in canonical shard order
    /// (within a shard: insertion order).  A permutation of the single-shard
    /// [`QueriesPool::matching`] list.
    pub fn matching<'a>(&'a self, query: &Query) -> impl Iterator<Item = &'a PoolEntry> {
        let key = crate::pool::from_key(query);
        self.shards
            .iter()
            .flat_map(move |shard| shard.matching_key(&key).collect::<Vec<_>>())
    }

    /// Number of distinct FROM clauses covered by the pool (union over shards).
    pub fn num_from_clauses(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.from_keys())
            .collect::<std::collections::BTreeSet<&str>>()
            .len()
    }

    /// Flattens the snapshot into a single-shard pool, in canonical shard order (used by
    /// persistence and the parity tests; the result is `matching`-equivalent, not
    /// entry-order-identical, to the pool the snapshot was built from).
    pub fn to_pool(&self) -> QueriesPool {
        let mut pool = QueriesPool::new();
        for shard in &self.shards {
            for entry in shard.entries() {
                pool.insert(entry.query.clone(), entry.cardinality);
            }
        }
        pool
    }
}

/// `N` pool shards keyed by canonical query hash behind an immutable-snapshot API.
///
/// All reads go through [`ShardedPool::snapshot`]; [`ShardedPool::insert`] and
/// [`ShardedPool::remove`] are copy-on-write over the single affected shard.  Writers are
/// serialized by a dedicated mutex and build the successor shard **outside** the snapshot
/// lock, taking the write lock only for the `Arc` swap — so the type is `Sync` and
/// concurrent readers contend with maintenance only on that pointer swap, never on the
/// O(shard-size) clone/re-index.
#[derive(Debug)]
pub struct ShardedPool {
    snapshot: RwLock<Arc<PoolSnapshot>>,
    /// Serializes writers: with this held, the current snapshot can only be replaced by
    /// the holder, so read-clone-swap without keeping the snapshot lock is race-free.
    writer: parking_lot::Mutex<()>,
    /// Source of fresh shard versions (see [`PoolSnapshot::shard_version`]).
    next_version: AtomicU64,
}

impl ShardedPool {
    /// Creates an empty pool with `num_shards` shards (at least one).
    pub fn new(num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        let shards = (0..num_shards)
            .map(|_| Arc::new(PoolShard::new()))
            .collect();
        let versions = (1..=num_shards as u64).collect();
        ShardedPool {
            snapshot: RwLock::new(Arc::new(PoolSnapshot { shards, versions })),
            writer: parking_lot::Mutex::new(()),
            next_version: AtomicU64::new(num_shards as u64 + 1),
        }
    }

    /// Builds a sharded pool from a single-owner pool by routing every entry to its
    /// canonical-hash shard (bulk construction: each shard is built once, no copy-on-write).
    pub fn from_pool(pool: &QueriesPool, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        let mut shards: Vec<PoolShard> = (0..num_shards).map(|_| PoolShard::new()).collect();
        for entry in pool.entries() {
            let shard = (query_hash(&entry.query) % num_shards as u64) as usize;
            shards[shard].insert(entry.query.clone(), entry.cardinality);
        }
        let shards: Vec<Arc<PoolShard>> = shards.into_iter().map(Arc::new).collect();
        let versions = (1..=num_shards as u64).collect();
        ShardedPool {
            snapshot: RwLock::new(Arc::new(PoolSnapshot { shards, versions })),
            writer: parking_lot::Mutex::new(()),
            next_version: AtomicU64::new(num_shards as u64 + 1),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.snapshot.read().num_shards()
    }

    /// The canonical shard index of a query (stable for the pool's lifetime: entries are
    /// routed by the process-wide canonical query hash modulo the shard count).
    pub fn shard_of(&self, query: &Query) -> usize {
        (query_hash(query) % self.num_shards() as u64) as usize
    }

    /// The current immutable snapshot.  Hold it as long as needed; it never changes and
    /// never blocks maintenance (which swaps in successors).
    pub fn snapshot(&self) -> Arc<PoolSnapshot> {
        Arc::clone(&self.snapshot.read())
    }

    /// Adds an executed query with its actual cardinality; returns whether the entry was new
    /// (duplicates keep the first recorded cardinality, exactly like the single-owner pool).
    ///
    /// Copy-on-write: clones the target shard and mutates the clone **outside** the
    /// snapshot lock (writers are serialized by [`ShardedPool::writer`], so the snapshot
    /// cannot change under us), then swaps in a new snapshot sharing the `N − 1` untouched
    /// shards — readers only ever wait for the pointer swap.
    pub fn insert(&self, query: Query, cardinality: u64) -> bool {
        let _writer = self.writer.lock();
        let current = self.snapshot();
        let index = (query_hash(&query) % current.num_shards() as u64) as usize;
        let mut shard = (*current.shards[index]).clone();
        if !shard.insert(query, cardinality) {
            return false;
        }
        let next = Arc::new(self.replaced(&current, index, shard));
        *self.snapshot.write() = next;
        true
    }

    /// Removes a previously inserted query, returning its recorded cardinality (`None` when
    /// absent).  Copy-on-write like [`ShardedPool::insert`] (successor built outside the
    /// snapshot lock).
    pub fn remove(&self, query: &Query) -> Option<u64> {
        let _writer = self.writer.lock();
        let current = self.snapshot();
        let index = (query_hash(query) % current.num_shards() as u64) as usize;
        let mut shard = (*current.shards[index]).clone();
        let removed = shard.remove(query)?;
        let next = Arc::new(self.replaced(&current, index, shard));
        *self.snapshot.write() = next;
        Some(removed)
    }

    /// Inserts the query or refreshes its recorded cardinality in **one** copy-on-write
    /// swap, returning the replaced cardinality (`None` when the query was new).
    ///
    /// Observable semantics are exactly `remove` followed by `insert` (the refreshed entry
    /// moves to the end of its shard's insertion order; the routing proptests pin this
    /// against the remove+insert oracle), but where that sequence clones the target shard
    /// twice and publishes two successor snapshots — exposing an intermediate state in
    /// which the entry is *absent* — `upsert` clones once, publishes once, and bumps the
    /// shard version once.  This is the maintenance-lane primitive: the serving runtime
    /// refreshes completed queries' true cardinalities through it, so concurrent readers
    /// either see the old cardinality or the new one, never a pool without the entry.
    pub fn upsert(&self, query: Query, cardinality: u64) -> Option<u64> {
        let _writer = self.writer.lock();
        let current = self.snapshot();
        let index = (query_hash(&query) % current.num_shards() as u64) as usize;
        let mut shard = (*current.shards[index]).clone();
        let replaced = shard.upsert(query, cardinality);
        let next = Arc::new(self.replaced(&current, index, shard));
        *self.snapshot.write() = next;
        replaced
    }

    /// Total number of entries (over the current snapshot).
    pub fn len(&self) -> usize {
        self.snapshot.read().len()
    }

    /// Returns true when the current snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot.read().is_empty()
    }

    /// Flattens the current snapshot into a single-owner pool (see
    /// [`PoolSnapshot::to_pool`]).
    pub fn to_pool(&self) -> QueriesPool {
        self.snapshot().to_pool()
    }

    /// A successor snapshot with shard `index` replaced (and re-versioned).
    fn replaced(&self, current: &PoolSnapshot, index: usize, shard: PoolShard) -> PoolSnapshot {
        let mut shards = current.shards.clone();
        let mut versions = current.versions.clone();
        shards[index] = Arc::new(shard);
        versions[index] = self.next_version.fetch_add(1, Ordering::Relaxed);
        PoolSnapshot { shards, versions }
    }
}

impl Clone for ShardedPool {
    /// Clones the pool at its current snapshot (cheap: shards are shared until either copy
    /// writes).
    fn clone(&self) -> Self {
        let snapshot = self.snapshot();
        ShardedPool {
            snapshot: RwLock::new(snapshot),
            writer: parking_lot::Mutex::new(()),
            next_version: AtomicU64::new(self.next_version.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};

    #[test]
    fn routing_distributes_and_preserves_matching() {
        let db = generate_imdb(&ImdbConfig::tiny(90));
        let pool = QueriesPool::generate(&db, 60, 2, 90);
        for num_shards in [1usize, 2, 3, 8] {
            let sharded = ShardedPool::from_pool(&pool, num_shards);
            assert_eq!(sharded.num_shards(), num_shards);
            assert_eq!(sharded.len(), pool.len());
            let snapshot = sharded.snapshot();
            assert_eq!(snapshot.num_from_clauses(), pool.num_from_clauses());
            // Every query's sharded matching list is a permutation of the sequential one.
            for entry in pool.entries().iter().take(20) {
                let mut sequential: Vec<(&Query, u64)> = pool
                    .matching(&entry.query)
                    .map(|e| (&e.query, e.cardinality))
                    .collect();
                let mut sharded_matches: Vec<(&Query, u64)> = snapshot
                    .matching(&entry.query)
                    .map(|e| (&e.query, e.cardinality))
                    .collect();
                sequential.sort_by_key(|(q, _)| format!("{q}"));
                sharded_matches.sort_by_key(|(q, _)| format!("{q}"));
                assert_eq!(sequential, sharded_matches, "shards = {num_shards}");
            }
            // Entries land on their canonical-hash shard.
            for (index, shard) in snapshot.shards().iter().enumerate() {
                for entry in shard.entries() {
                    assert_eq!(
                        (query_hash(&entry.query) % num_shards as u64) as usize,
                        index
                    );
                }
            }
        }
    }

    #[test]
    fn snapshots_are_immutable_under_writes() {
        let sharded = ShardedPool::new(4);
        let title_scan = Query::scan(tables::TITLE);
        let cast_scan = Query::scan(tables::CAST_INFO);
        assert!(sharded.insert(title_scan.clone(), 100));
        let before = sharded.snapshot();
        assert_eq!(before.len(), 1);

        assert!(sharded.insert(cast_scan.clone(), 50));
        assert!(!sharded.insert(cast_scan.clone(), 999), "duplicate ignored");
        assert_eq!(sharded.remove(&title_scan), Some(100));
        assert_eq!(sharded.remove(&title_scan), None);

        // The old snapshot still sees the pre-write world.
        assert_eq!(before.len(), 1);
        assert_eq!(before.matching(&title_scan).count(), 1);
        // The new snapshot sees the post-write world.
        let after = sharded.snapshot();
        assert_eq!(after.len(), 1);
        assert_eq!(after.matching(&title_scan).count(), 0);
        assert_eq!(after.matching(&cast_scan).next().unwrap().cardinality, 50);
    }

    #[test]
    fn shard_versions_change_exactly_for_written_shards() {
        let sharded = ShardedPool::new(4);
        let query = Query::scan(tables::TITLE);
        let target = sharded.shard_of(&query);
        let before = sharded.snapshot();
        assert!(sharded.insert(query.clone(), 1));
        let after = sharded.snapshot();
        for shard in 0..4 {
            if shard == target {
                assert_ne!(before.shard_version(shard), after.shard_version(shard));
            } else {
                assert_eq!(before.shard_version(shard), after.shard_version(shard));
                assert!(
                    Arc::ptr_eq(&before.shards()[shard], &after.shards()[shard]),
                    "untouched shards are shared, not copied"
                );
            }
        }
        // A rejected duplicate swaps nothing.
        assert!(!sharded.insert(query, 2));
        let unchanged = sharded.snapshot();
        assert_eq!(after.shard_version(target), unchanged.shard_version(target));
    }

    #[test]
    fn upsert_is_a_single_swap_with_remove_insert_semantics() {
        let db = generate_imdb(&ImdbConfig::tiny(94));
        let pool = QueriesPool::generate(&db, 30, 1, 94);
        let sharded = ShardedPool::from_pool(&pool, 4);
        let victim = pool.entries()[0].query.clone();
        let target = sharded.shard_of(&victim);
        let before = sharded.snapshot();

        // Refresh: exactly one fresh version is allocated, on exactly the target shard
        // (remove+insert would allocate two and publish an entry-less intermediate
        // snapshot).  Versions are globally monotonic, so "one allocation" shows up as
        // max-version + 1.
        let max_before = (0..4).map(|s| before.shard_version(s)).max().unwrap();
        assert_eq!(
            sharded.upsert(victim.clone(), 4242),
            Some(pool.entries()[0].cardinality)
        );
        let after = sharded.snapshot();
        assert_eq!(after.len(), pool.len(), "refresh keeps the entry count");
        for shard in 0..4 {
            if shard == target {
                assert_eq!(
                    after.shard_version(shard),
                    max_before + 1,
                    "one copy-on-write swap, one version allocation"
                );
            } else {
                assert!(Arc::ptr_eq(&before.shards()[shard], &after.shards()[shard]));
            }
        }
        let refreshed: Vec<u64> = after
            .matching(&victim)
            .filter(|e| e.query == victim)
            .map(|e| e.cardinality)
            .collect();
        assert_eq!(refreshed, vec![4242]);
        // The old snapshot still sees the old cardinality — snapshot isolation.
        assert!(before
            .matching(&victim)
            .any(|e| e.query == victim && e.cardinality == pool.entries()[0].cardinality));

        // Upsert of an absent query inserts (again in one swap).
        let fresh = Query::scan(tables::MOVIE_INFO_IDX);
        sharded.remove(&fresh); // may or may not be in the generated pool
        let baseline = sharded.len();
        let pre_insert = sharded.snapshot();
        assert_eq!(sharded.upsert(fresh.clone(), 7), None);
        assert_eq!(sharded.len(), baseline + 1);
        let post_insert = sharded.snapshot();
        let fresh_shard = sharded.shard_of(&fresh);
        let max_pre = (0..4).map(|s| pre_insert.shard_version(s)).max().unwrap();
        assert_eq!(post_insert.shard_version(fresh_shard), max_pre + 1);
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        let db = generate_imdb(&ImdbConfig::tiny(91));
        let pool = QueriesPool::generate(&db, 40, 1, 91);
        let sharded = ShardedPool::from_pool(&pool, 4);
        let entries: Vec<PoolEntry> = pool.entries().to_vec();
        std::thread::scope(|scope| {
            // Writer: churn the same entries in and out.
            scope.spawn(|| {
                for entry in &entries {
                    sharded.remove(&entry.query);
                    sharded.insert(entry.query.clone(), entry.cardinality);
                }
            });
            // Readers: every snapshot is internally consistent (len equals the sum over
            // shards, and matching never yields an entry the snapshot does not hold).
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let snapshot = sharded.snapshot();
                        let total: usize = snapshot.shards().iter().map(|s| s.len()).sum();
                        assert_eq!(snapshot.len(), total);
                    }
                });
            }
        });
        assert_eq!(sharded.len(), pool.len());
    }

    #[test]
    fn sharded_proptest_oracle_agreement() {
        // The proptest proper lives in `routing_proptests` below; this anchor test keeps a
        // fast deterministic instance in the default filter set.
        let db = generate_imdb(&ImdbConfig::tiny(93));
        let pool = QueriesPool::generate(&db, 30, 1, 93);
        let sharded = ShardedPool::from_pool(&pool, 3);
        for entry in pool.entries() {
            assert_eq!(sharded.remove(&entry.query), Some(entry.cardinality));
            assert!(sharded.insert(entry.query.clone(), entry.cardinality));
        }
        assert_eq!(sharded.len(), pool.len());
    }

    #[test]
    fn to_pool_round_trips_through_any_shard_count() {
        let db = generate_imdb(&ImdbConfig::tiny(92));
        let pool = QueriesPool::generate(&db, 50, 2, 92);
        for num_shards in [1usize, 3, 8] {
            let sharded = ShardedPool::from_pool(&pool, num_shards);
            let flattened = sharded.to_pool();
            assert_eq!(flattened.len(), pool.len());
            assert_eq!(flattened.num_from_clauses(), pool.num_from_clauses());
            // Entry order may be permuted, the entry set may not.
            let mut a: Vec<String> = pool.entries().iter().map(|e| format!("{:?}", e)).collect();
            let mut b: Vec<String> = flattened
                .entries()
                .iter()
                .map(|e| format!("{:?}", e))
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
            // One-shard mode reproduces the facade's entry order exactly.
            if num_shards == 1 {
                assert_eq!(flattened.entries(), pool.entries());
            }
        }
    }
}

#[cfg(test)]
mod routing_proptests {
    //! Property tests of the sharded routing: under random interleavings of insert /
    //! remove / persistence reload (including reload into a *different* shard count), a
    //! [`ShardedPool`] must agree with the PR-2 one-shard `OraclePool` harness on every
    //! returned value and on the full observable matching state.

    use super::*;
    use crate::pool::index_proptests::{query_universe, OraclePool};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_sharded_agrees(sharded: &ShardedPool, oracle: &OraclePool) -> Result<(), String> {
        let snapshot = sharded.snapshot();
        prop_assert_eq!(snapshot.len(), oracle.entries.len());
        prop_assert_eq!(snapshot.num_from_clauses(), oracle.num_from_clauses());
        // Matching agrees as a multiset for every universe query (sharding permutes the
        // order; the serving layer's final functions are order-insensitive).
        for query in query_universe() {
            let mut via_shards: Vec<(String, u64)> = snapshot
                .matching(query)
                .map(|e| (format!("{}", e.query), e.cardinality))
                .collect();
            let mut via_oracle: Vec<(String, u64)> = oracle
                .matching(query)
                .into_iter()
                .map(|(q, c)| (format!("{q}"), c))
                .collect();
            via_shards.sort();
            via_oracle.sort();
            prop_assert_eq!(via_shards, via_oracle);
        }
        // Every entry sits on its canonical-hash shard with exact per-shard indexes.
        for (index, shard) in snapshot.shards().iter().enumerate() {
            for entry in shard.entries() {
                prop_assert_eq!(
                    (crate::pool::query_hash(&entry.query) % snapshot.num_shards() as u64) as usize,
                    index
                );
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random insert/remove/reload interleavings at random shard counts: the sharded
        /// pool and the linear-scan oracle agree on every returned value and on the full
        /// observable state; reloads may change the shard count without changing semantics.
        #[test]
        fn sharded_routing_agrees_with_one_shard_oracle(seed in 0u64..10_000) {
            let universe = query_universe();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sharded = ShardedPool::new(rng.gen_range(1usize..=8));
            let mut oracle = OraclePool::default();
            for op in 0..40 {
                let query = universe[rng.gen_range(0..universe.len())].clone();
                match rng.gen_range(0..10u32) {
                    // Inserts dominate so the pool actually grows.
                    0..=5 => {
                        let cardinality = rng.gen_range(0..1000u64);
                        let inserted = sharded.insert(query.clone(), cardinality);
                        let before = oracle.entries.len();
                        oracle.insert(query, cardinality);
                        prop_assert!(
                            inserted == (oracle.entries.len() > before),
                            "op {op}: insert disagreement"
                        );
                    }
                    6..=7 => {
                        let (mine, theirs) = (sharded.remove(&query), oracle.remove(&query));
                        prop_assert!(
                            mine == theirs,
                            "op {op}: remove returned {mine:?}, oracle {theirs:?}"
                        );
                    }
                    8 => {
                        // Upsert (the maintenance-lane single-swap refresh) must agree
                        // with its remove-then-insert oracle decomposition exactly.
                        let cardinality = rng.gen_range(0..1000u64);
                        let mine = sharded.upsert(query.clone(), cardinality);
                        let theirs = oracle.remove(&query);
                        oracle.insert(query, cardinality);
                        prop_assert!(
                            mine == theirs,
                            "op {op}: upsert replaced {mine:?}, oracle removed {theirs:?}"
                        );
                    }
                    _ => {
                        // Persistence reload into a random (possibly different) shard
                        // count: flatten, JSON round-trip, re-shard.
                        let flattened = sharded.to_pool();
                        let json = serde_json::to_string(&flattened)
                            .map_err(|e| format!("serialize: {e}"))?;
                        let reloaded: QueriesPool = serde_json::from_str(&json)
                            .map_err(|e| format!("deserialize: {e}"))?;
                        sharded = ShardedPool::from_pool(&reloaded, rng.gen_range(1usize..=8));
                    }
                }
                assert_sharded_agrees(&sharded, &oracle)?;
            }
        }
    }
}
