//! Sharded queries-pool storage behind an immutable-snapshot API — the storage layer of the
//! concurrent serving subsystem.
//!
//! A [`ShardedPool`] distributes pool entries over `N` [`PoolShard`]s by **canonical query
//! hash** (the same unkeyed hash the duplicate index uses), so each shard owns a disjoint
//! slice of the entries together with its own FROM-clause and duplicate indexes.  The live
//! state is a [`PoolSnapshot`]: an `Arc`'d, fully immutable view swapped under a
//! `parking_lot::RwLock`.
//!
//! * **Readers never block on writers** beyond the pointer swap: [`ShardedPool::snapshot`]
//!   clones the current `Arc` under a read lock and serves from the frozen shards for as
//!   long as it likes — inserts and removals build a *new* snapshot (copy-on-write of the
//!   single affected shard; the untouched shards are shared by `Arc`) and swap it in.
//! * **Sharded matching is a partition of sequential matching**: a query's matching entries
//!   in shard `s` are exactly the pool-wide matching entries routed to `s`, so
//!   concatenating the per-shard lists in canonical shard order `0..N` is a permutation of
//!   the single-shard scan.  The serving layer's final functions (median / mean over the
//!   per-entry estimates) are order-insensitive, which makes sharded serving bit-identical
//!   to the sequential path — the parity tests in [`crate::service`] pin this at
//!   `N = 1, 2, 8`.
//! * **Shard versions** (monotonic per pool, bumped on every copy-on-write replacement) let
//!   the serving layer cache per-shard anchor state and invalidate exactly the shards a
//!   write touched.

use crate::pool::{feature_signature, query_hash, rank_order, PoolEntry, PoolShard, QueriesPool};
use crn_query::ast::Query;
use parking_lot::RwLock;
use std::collections::btree_map;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable point-in-time view of a sharded pool: the unit the serving layer reads.
///
/// Snapshots are cheap to hold (a vector of `Arc`s) and never change after construction;
/// concurrent maintenance on the owning [`ShardedPool`] produces *new* snapshots.
#[derive(Debug, Clone)]
pub struct PoolSnapshot {
    shards: Vec<Arc<PoolShard>>,
    /// Per-shard versions: monotonic within the owning pool, bumped whenever the shard is
    /// replaced by a write.  Serving caches key their per-shard state by this.
    versions: Vec<u64>,
}

impl PoolSnapshot {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The frozen shards, in canonical shard order.
    pub fn shards(&self) -> &[Arc<PoolShard>] {
        &self.shards
    }

    /// One shard.
    pub fn shard(&self, index: usize) -> &PoolShard {
        &self.shards[index]
    }

    /// The version of one shard (see the type docs for the invalidation contract).
    pub fn shard_version(&self, index: usize) -> u64 {
        self.versions[index]
    }

    /// The snapshot-wide pool version: the sum of the per-shard versions.
    ///
    /// Every copy-on-write maintenance swap bumps exactly one shard's version to a fresh
    /// strictly-larger value, so this sum is **strictly monotonic** across successor
    /// snapshots of one pool: two snapshots share a pool version only if they are the
    /// same pool state.  A query's estimate reads matching anchors from *every* shard,
    /// so this — not the query's own shard version — is the invalidation granularity a
    /// whole-estimate cache needs: any upsert anywhere invalidates, exactly.
    pub fn version(&self) -> u64 {
        self.versions.iter().sum()
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Returns true when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Entries matching the query's FROM clause across all shards, in canonical shard order
    /// (within a shard: insertion order).  A permutation of the single-shard
    /// [`QueriesPool::matching`] list.
    pub fn matching<'a>(&'a self, query: &Query) -> impl Iterator<Item = &'a PoolEntry> {
        let key = crate::pool::from_key(query);
        self.shards
            .iter()
            .flat_map(move |shard| shard.matching_key(&key).collect::<Vec<_>>())
    }

    /// The `k` same-FROM anchors most similar to the query across all shards, ranked by
    /// score descending with ties broken by the anchor query's `Ord` — the sublinear
    /// retrieval stage ahead of the exact containment heads.
    ///
    /// The ranking comparator is a *total* order (pool queries are distinct), so merging
    /// the per-shard top-`k` selections and re-selecting globally yields **exactly** the
    /// top-`k` of the flat pool-wide ranking at any shard count — the determinism the
    /// top-K proptests pin.  The query is featurized once; per-shard work is
    /// O(bucket + k log k).
    pub fn matching_top_k<'a>(&'a self, query: &Query, k: usize) -> Vec<(u64, &'a PoolEntry)> {
        if k == 0 {
            return Vec::new();
        }
        let key = crate::pool::from_key(query);
        let signature = feature_signature(query);
        let mut merged: Vec<(u64, &PoolEntry)> = self
            .shards
            .iter()
            .flat_map(|shard| shard.matching_top_k_scored(&key, &signature, k))
            .collect();
        merged.sort_unstable_by(rank_order);
        merged.truncate(k);
        merged
    }

    /// Number of distinct FROM clauses covered by the pool (union over shards).
    pub fn num_from_clauses(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.from_keys())
            .collect::<std::collections::BTreeSet<&str>>()
            .len()
    }

    /// Flattens the snapshot into a single-shard pool, in canonical shard order (used by
    /// persistence and the parity tests; the result is `matching`-equivalent, not
    /// entry-order-identical, to the pool the snapshot was built from).
    pub fn to_pool(&self) -> QueriesPool {
        let mut pool = QueriesPool::new();
        for shard in &self.shards {
            for entry in shard.entries() {
                pool.insert(entry.query.clone(), entry.cardinality);
            }
        }
        pool
    }

    /// Flattens **one** shard into a single-owner pool, preserving the shard's entry
    /// order exactly.  This is the unit a distributed deployment ships to a worker: a
    /// worker that rebuilds a one-shard [`ShardedPool`] from this pool reproduces the
    /// shard's entry order (pinned by the one-shard round-trip test below), so its
    /// per-entry estimate lists are bit-identical to this shard's contribution in a
    /// single-process serve.
    pub fn shard_pool(&self, index: usize) -> QueriesPool {
        let mut pool = QueriesPool::new();
        for entry in self.shards[index].entries() {
            pool.insert(entry.query.clone(), entry.cardinality);
        }
        pool
    }
}

/// `N` pool shards keyed by canonical query hash behind an immutable-snapshot API.
///
/// All reads go through [`ShardedPool::snapshot`]; [`ShardedPool::insert`] and
/// [`ShardedPool::remove`] are copy-on-write over the single affected shard.  Writers are
/// serialized by a dedicated mutex and build the successor shard **outside** the snapshot
/// lock, taking the write lock only for the `Arc` swap — so the type is `Sync` and
/// concurrent readers contend with maintenance only on that pointer swap, never on the
/// O(shard-size) clone/re-index.
#[derive(Debug)]
pub struct ShardedPool {
    snapshot: RwLock<Arc<PoolSnapshot>>,
    /// Serializes writers: with this held, the current snapshot can only be replaced by
    /// the holder, so read-clone-swap without keeping the snapshot lock is race-free.
    writer: parking_lot::Mutex<()>,
    /// Source of fresh shard versions (see [`PoolSnapshot::shard_version`]).
    next_version: AtomicU64,
    /// Bounded-capacity mode ([`ShardedPool::with_capacity`]): per-shard entry quota.
    /// `None` (the default) grows without bound, exactly the pre-tier behaviour.
    shard_capacity: Option<usize>,
    /// Entries evicted by the bounded-capacity mode since construction.
    evictions: AtomicU64,
}

impl ShardedPool {
    /// Creates an empty pool with `num_shards` shards (at least one).
    pub fn new(num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        let shards = (0..num_shards)
            .map(|_| Arc::new(PoolShard::new()))
            .collect();
        let versions = (1..=num_shards as u64).collect();
        ShardedPool {
            snapshot: RwLock::new(Arc::new(PoolSnapshot { shards, versions })),
            writer: parking_lot::Mutex::new(()),
            next_version: AtomicU64::new(num_shards as u64 + 1),
            shard_capacity: None,
            evictions: AtomicU64::new(0),
        }
    }

    /// Builds a sharded pool from a single-owner pool by routing every entry to its
    /// canonical-hash shard (bulk construction: each shard is built once, no copy-on-write).
    pub fn from_pool(pool: &QueriesPool, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        let mut shards: Vec<PoolShard> = (0..num_shards).map(|_| PoolShard::new()).collect();
        for entry in pool.entries() {
            let shard = (query_hash(&entry.query) % num_shards as u64) as usize;
            shards[shard].insert(entry.query.clone(), entry.cardinality);
        }
        let shards: Vec<Arc<PoolShard>> = shards.into_iter().map(Arc::new).collect();
        let versions = (1..=num_shards as u64).collect();
        ShardedPool {
            snapshot: RwLock::new(Arc::new(PoolSnapshot { shards, versions })),
            writer: parking_lot::Mutex::new(()),
            next_version: AtomicU64::new(num_shards as u64 + 1),
            shard_capacity: None,
            evictions: AtomicU64::new(0),
        }
    }

    /// Switches the pool into bounded-capacity mode: `capacity` total entries, split into
    /// a per-shard quota of `ceil(capacity / num_shards)` (at least 1).  Once a shard is
    /// at quota, every insert evicts the anchor with the lowest retention weight **in the
    /// same copy-on-write swap** — readers never observe an over-quota snapshot.  The
    /// freshly inserted entry itself is fair game: starting at the default weight it only
    /// loses against anchors the feedback stream has already marked worse.
    ///
    /// Entries already present are not trimmed retroactively; the bound applies from the
    /// next insert on (the sweep builds at-capacity pools through `from_pool` and relies
    /// on this).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        let shards = self.snapshot.read().num_shards();
        self.shard_capacity = Some(capacity.div_ceil(shards).max(1));
        self
    }

    /// Entries evicted by the bounded-capacity mode since construction (0 when unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.snapshot.read().num_shards()
    }

    /// The canonical shard index of a query (stable for the pool's lifetime: entries are
    /// routed by the process-wide canonical query hash modulo the shard count).
    pub fn shard_of(&self, query: &Query) -> usize {
        (query_hash(query) % self.num_shards() as u64) as usize
    }

    /// The current immutable snapshot.  Hold it as long as needed; it never changes and
    /// never blocks maintenance (which swaps in successors).
    pub fn snapshot(&self) -> Arc<PoolSnapshot> {
        Arc::clone(&self.snapshot.read())
    }

    /// Adds an executed query with its actual cardinality; returns whether the entry was new
    /// (duplicates keep the first recorded cardinality, exactly like the single-owner pool).
    ///
    /// Copy-on-write: clones the target shard and mutates the clone **outside** the
    /// snapshot lock (writers are serialized by [`ShardedPool::writer`], so the snapshot
    /// cannot change under us), then swaps in a new snapshot sharing the `N − 1` untouched
    /// shards — readers only ever wait for the pointer swap.
    pub fn insert(&self, query: Query, cardinality: u64) -> bool {
        let _writer = self.writer.lock();
        let current = self.snapshot();
        let index = (query_hash(&query) % current.num_shards() as u64) as usize;
        let mut shard = (*current.shards[index]).clone();
        if !shard.insert(query, cardinality) {
            return false;
        }
        self.enforce_quota(&mut shard);
        let next = Arc::new(self.replaced(&current, index, shard));
        *self.snapshot.write() = next;
        true
    }

    /// Removes a previously inserted query, returning its recorded cardinality (`None` when
    /// absent).  Copy-on-write like [`ShardedPool::insert`] (successor built outside the
    /// snapshot lock).
    pub fn remove(&self, query: &Query) -> Option<u64> {
        let _writer = self.writer.lock();
        let current = self.snapshot();
        let index = (query_hash(query) % current.num_shards() as u64) as usize;
        let mut shard = (*current.shards[index]).clone();
        let removed = shard.remove(query)?;
        let next = Arc::new(self.replaced(&current, index, shard));
        *self.snapshot.write() = next;
        Some(removed)
    }

    /// Inserts the query or refreshes its recorded cardinality in **one** copy-on-write
    /// swap, returning the replaced cardinality (`None` when the query was new).
    ///
    /// Observable semantics are exactly `remove` followed by `insert` (the refreshed entry
    /// moves to the end of its shard's insertion order; the routing proptests pin this
    /// against the remove+insert oracle), but where that sequence clones the target shard
    /// twice and publishes two successor snapshots — exposing an intermediate state in
    /// which the entry is *absent* — `upsert` clones once, publishes once, and bumps the
    /// shard version once.  This is the maintenance-lane primitive: the serving runtime
    /// refreshes completed queries' true cardinalities through it, so concurrent readers
    /// either see the old cardinality or the new one, never a pool without the entry.
    pub fn upsert(&self, query: Query, cardinality: u64) -> Option<u64> {
        let _writer = self.writer.lock();
        let current = self.snapshot();
        let index = (query_hash(&query) % current.num_shards() as u64) as usize;
        let mut shard = (*current.shards[index]).clone();
        let replaced = shard.upsert(query, cardinality);
        self.enforce_quota(&mut shard);
        let next = Arc::new(self.replaced(&current, index, shard));
        *self.snapshot.write() = next;
        replaced
    }

    /// Evicts lowest-retention-weight anchors until the shard is back under its quota
    /// (no-op in unbounded mode).  Runs on the writer's private clone, so the eviction and
    /// the triggering insert publish as one snapshot.
    fn enforce_quota(&self, shard: &mut PoolShard) {
        let Some(quota) = self.shard_capacity else {
            return;
        };
        while shard.len() > quota {
            if shard.evict_lowest_weight().is_none() {
                break;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds an observed estimation q-error into the resident anchor's retention weight
    /// (see [`PoolShard::record_feedback`]); returns whether the anchor was resident.
    ///
    /// Weights steer eviction and compaction only — they are invisible to `matching` and
    /// to estimates — but the update still publishes through the regular copy-on-write
    /// swap so readers and the weight state can never tear.
    pub fn record_feedback(&self, query: &Query, q_error: f64) -> bool {
        let _writer = self.writer.lock();
        let current = self.snapshot();
        let index = (query_hash(query) % current.num_shards() as u64) as usize;
        // Residency check before the O(shard) clone: feedback for evicted/foreign anchors
        // is common once eviction is on, and must not cost a copy-on-write cycle.
        if !current.shards[index]
            .matching(query)
            .any(|entry| entry.query == *query)
        {
            return false;
        }
        let mut shard = (*current.shards[index]).clone();
        if !shard.record_feedback(query, q_error) {
            return false;
        }
        let next = Arc::new(self.replaced(&current, index, shard));
        *self.snapshot.write() = next;
        true
    }

    /// Merges near-duplicate anchors **pool-wide**: entries sharing a structural shape
    /// (FROM clause, joins and predicate `(column, op)` pairs — compared constants
    /// ignored) collapse to the one with the highest retention weight, ties broken by the
    /// smallest query.  Returns the total number of entries removed.
    ///
    /// Winner selection must be global, not per-shard: near-duplicates differ exactly in
    /// their literals, so their canonical hashes — and therefore their home shards — are
    /// unrelated, and shard-local compaction would leave every cross-shard duplicate
    /// group resident forever.  The scan reads the shared snapshot without cloning;
    /// only shards that actually lose an entry are cloned, filtered
    /// ([`PoolShard::retain_queries`]) and re-versioned, and all of them publish as a
    /// **single** successor snapshot.
    pub fn compact(&self) -> usize {
        let _writer = self.writer.lock();
        let current = self.snapshot();
        // Global winner per structural shape: (weight desc, query asc) over all shards.
        let mut best: BTreeMap<String, (f64, &Query)> = BTreeMap::new();
        let mut total = 0usize;
        for shard in current.shards.iter() {
            for (entry, weight) in shard.entries_with_weights() {
                total += 1;
                match best.entry(crate::pool::structure_key(&entry.query)) {
                    btree_map::Entry::Vacant(slot) => {
                        slot.insert((weight, &entry.query));
                    }
                    btree_map::Entry::Occupied(mut slot) => {
                        let (kept_weight, kept_query) = *slot.get();
                        let better = match weight.total_cmp(&kept_weight) {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Less => false,
                            std::cmp::Ordering::Equal => entry.query < *kept_query,
                        };
                        if better {
                            slot.insert((weight, &entry.query));
                        }
                    }
                }
            }
        }
        let removed = total - best.len();
        if removed == 0 {
            return 0;
        }
        let winners: BTreeSet<&Query> = best.values().map(|(_, query)| *query).collect();
        let mut shards = current.shards.clone();
        let mut versions = current.versions.clone();
        for (index, slot) in shards.iter_mut().enumerate() {
            if slot.entries().iter().all(|e| winners.contains(&e.query)) {
                continue;
            }
            let mut shard = (**slot).clone();
            shard.retain_queries(|query| winners.contains(query));
            *slot = Arc::new(shard);
            versions[index] = self.next_version.fetch_add(1, Ordering::Relaxed);
        }
        *self.snapshot.write() = Arc::new(PoolSnapshot { shards, versions });
        removed
    }

    /// Total number of entries (over the current snapshot).
    pub fn len(&self) -> usize {
        self.snapshot.read().len()
    }

    /// Returns true when the current snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot.read().is_empty()
    }

    /// Flattens the current snapshot into a single-owner pool (see
    /// [`PoolSnapshot::to_pool`]).
    pub fn to_pool(&self) -> QueriesPool {
        self.snapshot().to_pool()
    }

    /// A successor snapshot with shard `index` replaced (and re-versioned).
    fn replaced(&self, current: &PoolSnapshot, index: usize, shard: PoolShard) -> PoolSnapshot {
        let mut shards = current.shards.clone();
        let mut versions = current.versions.clone();
        shards[index] = Arc::new(shard);
        versions[index] = self.next_version.fetch_add(1, Ordering::Relaxed);
        PoolSnapshot { shards, versions }
    }
}

impl Clone for ShardedPool {
    /// Clones the pool at its current snapshot (cheap: shards are shared until either copy
    /// writes).
    fn clone(&self) -> Self {
        let snapshot = self.snapshot();
        ShardedPool {
            snapshot: RwLock::new(snapshot),
            writer: parking_lot::Mutex::new(()),
            next_version: AtomicU64::new(self.next_version.load(Ordering::Relaxed)),
            shard_capacity: self.shard_capacity,
            evictions: AtomicU64::new(self.evictions.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};

    #[test]
    fn routing_distributes_and_preserves_matching() {
        let db = generate_imdb(&ImdbConfig::tiny(90));
        let pool = QueriesPool::generate(&db, 60, 2, 90);
        for num_shards in [1usize, 2, 3, 8] {
            let sharded = ShardedPool::from_pool(&pool, num_shards);
            assert_eq!(sharded.num_shards(), num_shards);
            assert_eq!(sharded.len(), pool.len());
            let snapshot = sharded.snapshot();
            assert_eq!(snapshot.num_from_clauses(), pool.num_from_clauses());
            // Every query's sharded matching list is a permutation of the sequential one.
            for entry in pool.entries().iter().take(20) {
                let mut sequential: Vec<(&Query, u64)> = pool
                    .matching(&entry.query)
                    .map(|e| (&e.query, e.cardinality))
                    .collect();
                let mut sharded_matches: Vec<(&Query, u64)> = snapshot
                    .matching(&entry.query)
                    .map(|e| (&e.query, e.cardinality))
                    .collect();
                sequential.sort_by_key(|(q, _)| format!("{q}"));
                sharded_matches.sort_by_key(|(q, _)| format!("{q}"));
                assert_eq!(sequential, sharded_matches, "shards = {num_shards}");
            }
            // Entries land on their canonical-hash shard.
            for (index, shard) in snapshot.shards().iter().enumerate() {
                for entry in shard.entries() {
                    assert_eq!(
                        (query_hash(&entry.query) % num_shards as u64) as usize,
                        index
                    );
                }
            }
        }
    }

    #[test]
    fn snapshots_are_immutable_under_writes() {
        let sharded = ShardedPool::new(4);
        let title_scan = Query::scan(tables::TITLE);
        let cast_scan = Query::scan(tables::CAST_INFO);
        assert!(sharded.insert(title_scan.clone(), 100));
        let before = sharded.snapshot();
        assert_eq!(before.len(), 1);

        assert!(sharded.insert(cast_scan.clone(), 50));
        assert!(!sharded.insert(cast_scan.clone(), 999), "duplicate ignored");
        assert_eq!(sharded.remove(&title_scan), Some(100));
        assert_eq!(sharded.remove(&title_scan), None);

        // The old snapshot still sees the pre-write world.
        assert_eq!(before.len(), 1);
        assert_eq!(before.matching(&title_scan).count(), 1);
        // The new snapshot sees the post-write world.
        let after = sharded.snapshot();
        assert_eq!(after.len(), 1);
        assert_eq!(after.matching(&title_scan).count(), 0);
        assert_eq!(after.matching(&cast_scan).next().unwrap().cardinality, 50);
    }

    #[test]
    fn shard_versions_change_exactly_for_written_shards() {
        let sharded = ShardedPool::new(4);
        let query = Query::scan(tables::TITLE);
        let target = sharded.shard_of(&query);
        let before = sharded.snapshot();
        assert!(sharded.insert(query.clone(), 1));
        let after = sharded.snapshot();
        for shard in 0..4 {
            if shard == target {
                assert_ne!(before.shard_version(shard), after.shard_version(shard));
            } else {
                assert_eq!(before.shard_version(shard), after.shard_version(shard));
                assert!(
                    Arc::ptr_eq(&before.shards()[shard], &after.shards()[shard]),
                    "untouched shards are shared, not copied"
                );
            }
        }
        // A rejected duplicate swaps nothing.
        assert!(!sharded.insert(query, 2));
        let unchanged = sharded.snapshot();
        assert_eq!(after.shard_version(target), unchanged.shard_version(target));
    }

    #[test]
    fn upsert_is_a_single_swap_with_remove_insert_semantics() {
        let db = generate_imdb(&ImdbConfig::tiny(94));
        let pool = QueriesPool::generate(&db, 30, 1, 94);
        let sharded = ShardedPool::from_pool(&pool, 4);
        let victim = pool.entries()[0].query.clone();
        let target = sharded.shard_of(&victim);
        let before = sharded.snapshot();

        // Refresh: exactly one fresh version is allocated, on exactly the target shard
        // (remove+insert would allocate two and publish an entry-less intermediate
        // snapshot).  Versions are globally monotonic, so "one allocation" shows up as
        // max-version + 1.
        let max_before = (0..4).map(|s| before.shard_version(s)).max().unwrap();
        assert_eq!(
            sharded.upsert(victim.clone(), 4242),
            Some(pool.entries()[0].cardinality)
        );
        let after = sharded.snapshot();
        assert_eq!(after.len(), pool.len(), "refresh keeps the entry count");
        for shard in 0..4 {
            if shard == target {
                assert_eq!(
                    after.shard_version(shard),
                    max_before + 1,
                    "one copy-on-write swap, one version allocation"
                );
            } else {
                assert!(Arc::ptr_eq(&before.shards()[shard], &after.shards()[shard]));
            }
        }
        let refreshed: Vec<u64> = after
            .matching(&victim)
            .filter(|e| e.query == victim)
            .map(|e| e.cardinality)
            .collect();
        assert_eq!(refreshed, vec![4242]);
        // The old snapshot still sees the old cardinality — snapshot isolation.
        assert!(before
            .matching(&victim)
            .any(|e| e.query == victim && e.cardinality == pool.entries()[0].cardinality));

        // Upsert of an absent query inserts (again in one swap).
        let fresh = Query::scan(tables::MOVIE_INFO_IDX);
        sharded.remove(&fresh); // may or may not be in the generated pool
        let baseline = sharded.len();
        let pre_insert = sharded.snapshot();
        assert_eq!(sharded.upsert(fresh.clone(), 7), None);
        assert_eq!(sharded.len(), baseline + 1);
        let post_insert = sharded.snapshot();
        let fresh_shard = sharded.shard_of(&fresh);
        let max_pre = (0..4).map(|s| pre_insert.shard_version(s)).max().unwrap();
        assert_eq!(post_insert.shard_version(fresh_shard), max_pre + 1);
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        let db = generate_imdb(&ImdbConfig::tiny(91));
        let pool = QueriesPool::generate(&db, 40, 1, 91);
        let sharded = ShardedPool::from_pool(&pool, 4);
        let entries: Vec<PoolEntry> = pool.entries().to_vec();
        std::thread::scope(|scope| {
            // Writer: churn the same entries in and out.
            scope.spawn(|| {
                for entry in &entries {
                    sharded.remove(&entry.query);
                    sharded.insert(entry.query.clone(), entry.cardinality);
                }
            });
            // Readers: every snapshot is internally consistent (len equals the sum over
            // shards, and matching never yields an entry the snapshot does not hold).
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let snapshot = sharded.snapshot();
                        let total: usize = snapshot.shards().iter().map(|s| s.len()).sum();
                        assert_eq!(snapshot.len(), total);
                    }
                });
            }
        });
        assert_eq!(sharded.len(), pool.len());
    }

    #[test]
    fn sharded_proptest_oracle_agreement() {
        // The proptest proper lives in `routing_proptests` below; this anchor test keeps a
        // fast deterministic instance in the default filter set.
        let db = generate_imdb(&ImdbConfig::tiny(93));
        let pool = QueriesPool::generate(&db, 30, 1, 93);
        let sharded = ShardedPool::from_pool(&pool, 3);
        for entry in pool.entries() {
            assert_eq!(sharded.remove(&entry.query), Some(entry.cardinality));
            assert!(sharded.insert(entry.query.clone(), entry.cardinality));
        }
        assert_eq!(sharded.len(), pool.len());
    }

    #[test]
    fn bounded_capacity_evicts_lowest_retention_weight_on_insert() {
        let db = generate_imdb(&ImdbConfig::tiny(95));
        let pool = QueriesPool::generate(&db, 40, 1, 95);
        let unbounded = ShardedPool::from_pool(&pool, 2);
        assert_eq!(unbounded.evictions(), 0);

        // Capacity is split into per-shard quotas enforced from the next insert on.
        // Size the bound so the shard the fresh entry routes to sits exactly at quota:
        // its insert must then evict exactly one entry — the lowest-weight one.
        let fresh = Query::scan("a_table_surely_not_in_the_pool");
        let unbounded_target = ShardedPool::from_pool(&pool, 2);
        let target = unbounded_target.shard_of(&fresh);
        let target_len = unbounded_target.snapshot().shards()[target].len();
        assert!(target_len > 0, "the generated pool populates both shards");
        let bounded = unbounded_target.with_capacity(target_len * 2);
        // Sink one resident anchor of the target shard so the victim is observable.
        let probe = bounded.snapshot().shards()[target].entries()[0]
            .query
            .clone();
        assert!(bounded.record_feedback(&probe, 1_000.0));
        assert!(bounded.insert(fresh.clone(), 7));
        let snapshot = bounded.snapshot();
        assert_eq!(
            snapshot.shards()[target].len(),
            target_len,
            "insert past quota evicts back to the bound"
        );
        assert_eq!(bounded.evictions(), 1);
        assert!(
            !snapshot.matching(&probe).any(|e| e.query == probe),
            "the weight-sunk anchor is the victim"
        );
        assert!(snapshot.matching(&fresh).any(|e| e.query == fresh));

        // Feedback on an absent query touches nothing (and publishes no snapshot).
        let before = bounded.snapshot().version();
        assert!(!bounded.record_feedback(&Query::scan("nope"), 9.0));
        assert_eq!(bounded.snapshot().version(), before);
    }

    #[test]
    fn compaction_publishes_one_snapshot_and_leaves_old_readers_intact() {
        let db = generate_imdb(&ImdbConfig::tiny(96));
        let pool = QueriesPool::generate(&db, 30, 1, 96);
        let sharded = ShardedPool::from_pool(&pool, 3);
        // Collapse any structural duplicates the generator itself produced, so the
        // baseline below is structurally distinct and the synthetic count is exact.
        sharded.compact();
        let baseline = sharded.to_pool();
        // Duplicate every predicate-bearing entry's structure with shifted literals so
        // compaction has genuine near-duplicate groups to merge.  The shifted literal
        // changes the canonical hash, so most variants land on a *different* shard than
        // their base — exactly the cross-shard case global winner selection must cover.
        let mut added = 0usize;
        for entry in baseline.entries() {
            if !entry.query.predicates().is_empty() {
                let predicate = entry.query.predicates()[0].clone();
                let shifted = crn_query::ast::Predicate::new(
                    predicate.column.clone(),
                    predicate.op,
                    predicate.value.wrapping_add(1_000_003),
                );
                if sharded.insert(
                    entry.query.with_replaced_predicate(0, shifted),
                    entry.cardinality + 1,
                ) {
                    added += 1;
                }
            }
        }
        assert!(
            added > 0,
            "the generated pool has predicate-bearing entries"
        );
        let before = sharded.snapshot();
        let removed = sharded.compact();
        assert_eq!(removed, added, "every synthetic near-duplicate merges away");
        assert_eq!(sharded.len(), baseline.len());
        // Old readers still see the pre-compaction world; the new snapshot moved on.
        assert_eq!(before.len(), baseline.len() + added);
        assert!(sharded.snapshot().version() > before.version());
        // A second pass finds nothing; versions stay put on the no-op.
        let settled = sharded.snapshot().version();
        assert_eq!(sharded.compact(), 0);
        assert_eq!(sharded.snapshot().version(), settled);
    }

    #[test]
    fn to_pool_round_trips_through_any_shard_count() {
        let db = generate_imdb(&ImdbConfig::tiny(92));
        let pool = QueriesPool::generate(&db, 50, 2, 92);
        for num_shards in [1usize, 3, 8] {
            let sharded = ShardedPool::from_pool(&pool, num_shards);
            let flattened = sharded.to_pool();
            assert_eq!(flattened.len(), pool.len());
            assert_eq!(flattened.num_from_clauses(), pool.num_from_clauses());
            // Entry order may be permuted, the entry set may not.
            let mut a: Vec<String> = pool.entries().iter().map(|e| format!("{:?}", e)).collect();
            let mut b: Vec<String> = flattened
                .entries()
                .iter()
                .map(|e| format!("{:?}", e))
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
            // One-shard mode reproduces the facade's entry order exactly.
            if num_shards == 1 {
                assert_eq!(flattened.entries(), pool.entries());
            }
        }
    }
}

#[cfg(test)]
mod routing_proptests {
    //! Property tests of the sharded routing: under random interleavings of insert /
    //! remove / persistence reload (including reload into a *different* shard count), a
    //! [`ShardedPool`] must agree with the PR-2 one-shard `OraclePool` harness on every
    //! returned value and on the full observable matching state.

    use super::*;
    use crate::pool::index_proptests::{query_universe, OraclePool};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_sharded_agrees(sharded: &ShardedPool, oracle: &OraclePool) -> Result<(), String> {
        let snapshot = sharded.snapshot();
        prop_assert_eq!(snapshot.len(), oracle.entries.len());
        prop_assert_eq!(snapshot.num_from_clauses(), oracle.num_from_clauses());
        // Matching agrees as a multiset for every universe query (sharding permutes the
        // order; the serving layer's final functions are order-insensitive).
        for query in query_universe() {
            let mut via_shards: Vec<(String, u64)> = snapshot
                .matching(query)
                .map(|e| (format!("{}", e.query), e.cardinality))
                .collect();
            let mut via_oracle: Vec<(String, u64)> = oracle
                .matching(query)
                .into_iter()
                .map(|(q, c)| (format!("{q}"), c))
                .collect();
            via_shards.sort();
            via_oracle.sort();
            prop_assert_eq!(via_shards, via_oracle);
        }
        // Every entry sits on its canonical-hash shard with exact per-shard indexes.
        for (index, shard) in snapshot.shards().iter().enumerate() {
            for entry in shard.entries() {
                prop_assert_eq!(
                    (crate::pool::query_hash(&entry.query) % snapshot.num_shards() as u64) as usize,
                    index
                );
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random insert/remove/reload interleavings at random shard counts: the sharded
        /// pool and the linear-scan oracle agree on every returned value and on the full
        /// observable state; reloads may change the shard count without changing semantics.
        #[test]
        fn sharded_routing_agrees_with_one_shard_oracle(seed in 0u64..10_000) {
            let universe = query_universe();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sharded = ShardedPool::new(rng.gen_range(1usize..=8));
            let mut oracle = OraclePool::default();
            for op in 0..40 {
                let query = universe[rng.gen_range(0..universe.len())].clone();
                match rng.gen_range(0..10u32) {
                    // Inserts dominate so the pool actually grows.
                    0..=5 => {
                        let cardinality = rng.gen_range(0..1000u64);
                        let inserted = sharded.insert(query.clone(), cardinality);
                        let before = oracle.entries.len();
                        oracle.insert(query, cardinality);
                        prop_assert!(
                            inserted == (oracle.entries.len() > before),
                            "op {op}: insert disagreement"
                        );
                    }
                    6..=7 => {
                        let (mine, theirs) = (sharded.remove(&query), oracle.remove(&query));
                        prop_assert!(
                            mine == theirs,
                            "op {op}: remove returned {mine:?}, oracle {theirs:?}"
                        );
                    }
                    8 => {
                        // Upsert (the maintenance-lane single-swap refresh) must agree
                        // with its remove-then-insert oracle decomposition exactly.
                        let cardinality = rng.gen_range(0..1000u64);
                        let mine = sharded.upsert(query.clone(), cardinality);
                        let theirs = oracle.remove(&query);
                        oracle.insert(query, cardinality);
                        prop_assert!(
                            mine == theirs,
                            "op {op}: upsert replaced {mine:?}, oracle removed {theirs:?}"
                        );
                    }
                    _ => {
                        // Persistence reload into a random (possibly different) shard
                        // count: flatten, JSON round-trip, re-shard.
                        let flattened = sharded.to_pool();
                        let json = serde_json::to_string(&flattened)
                            .map_err(|e| format!("serialize: {e}"))?;
                        let reloaded: QueriesPool = serde_json::from_str(&json)
                            .map_err(|e| format!("deserialize: {e}"))?;
                        sharded = ShardedPool::from_pool(&reloaded, rng.gen_range(1usize..=8));
                    }
                }
                assert_sharded_agrees(&sharded, &oracle)?;
            }
        }

        /// Tentpole invariant: top-K anchor selection is a pure function of (query, pool
        /// contents, k) — the same ranked (score, anchor) sequence at EVERY shard count,
        /// equal to a flat score-all-then-sort oracle.  The rank order is total (score
        /// descending, then ascending query order over distinct pool queries), so
        /// per-shard top-k followed by the global merge-and-reselect cannot disagree
        /// with the global sort; and because per-query work reads only the immutable
        /// snapshot, the ranked set is thread-count invariant by construction.
        #[test]
        fn top_k_selection_matches_flat_oracle_at_every_shard_count(seed in 0u64..10_000) {
            let universe = query_universe();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pool = QueriesPool::new();
            for query in universe {
                if rng.gen_bool(0.7) {
                    pool.insert(query.clone(), rng.gen_range(1..1000u64));
                }
            }
            let probe = universe[rng.gen_range(0..universe.len())].clone();
            let k = rng.gen_range(1usize..=8);
            let mut oracle: Vec<(u64, Query)> = pool
                .matching(&probe)
                .map(|e| (crate::pool::anchor_score(&e.query, &probe), e.query.clone()))
                .collect();
            oracle.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            oracle.truncate(k);
            for shards in [1usize, 2, 3, 8] {
                let sharded = ShardedPool::from_pool(&pool, shards);
                let snapshot = sharded.snapshot();
                let ranked: Vec<(u64, Query)> = snapshot
                    .matching_top_k(&probe, k)
                    .into_iter()
                    .map(|(score, entry)| (score, entry.query.clone()))
                    .collect();
                prop_assert!(
                    ranked == oracle,
                    "shards = {shards}: ranked {ranked:?} vs oracle {oracle:?}"
                );
            }
        }
    }
}
