//! The `Cnt2Crd` transformation and the queries-pool cardinality estimation technique
//! (paper §5.1 and §5.3, Figure 8).
//!
//! Given a containment-rate estimation model `M`, a queries pool of previously executed
//! queries with known cardinalities, and a new query `Qnew`:
//!
//! ```text
//! for every (Qold, |Qold|) in the pool with Qold's FROM clause == Qnew's FROM clause:
//!     x_rate = M(Qold ⊂% Qnew)
//!     y_rate = M(Qnew ⊂% Qold)
//!     if y_rate > ε:  results.push(x_rate / y_rate * |Qold|)
//! return F(results)
//! ```
//!
//! where `F` is a *final function* (the paper examines Median, Mean and a trimmed mean and
//! settles on the Median, §5.3.1).  When no pool entry matches, the technique falls back to a
//! basic cardinality estimator, exactly as §5.2 prescribes.

use crate::pool::{query_hash, QueriesPool};
use crn_estimators::{CardinalityEstimator, ContainmentEstimator};
use crn_nn::parallel::WorkerPool;
use crn_query::ast::Query;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The final function `F` that folds the per-pool-entry estimates into a single cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum FinalFunction {
    /// The median of the estimates (the paper's choice — most robust to outliers).
    #[default]
    Median,
    /// The arithmetic mean.
    Mean,
    /// The trimmed mean: drop the given fraction of smallest and largest estimates
    /// (the paper trims 25% of the outliers) before averaging.
    TrimmedMean(f64),
}

impl FinalFunction {
    /// Applies the final function to the collected estimates.
    ///
    /// Returns `None` when the list is empty (no matching pool entries).
    pub fn apply(&self, estimates: &[f64]) -> Option<f64> {
        if estimates.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = estimates.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
        match self {
            FinalFunction::Median => {
                let mid = sorted.len() / 2;
                if sorted.len() % 2 == 1 {
                    Some(sorted[mid])
                } else {
                    Some((sorted[mid - 1] + sorted[mid]) / 2.0)
                }
            }
            FinalFunction::Mean => Some(sorted.iter().sum::<f64>() / sorted.len() as f64),
            FinalFunction::TrimmedMean(fraction) => {
                let trim = ((sorted.len() as f64) * fraction / 2.0).floor() as usize;
                let kept = &sorted[trim..sorted.len() - trim.min(sorted.len() - trim)];
                if kept.is_empty() {
                    Some(sorted.iter().sum::<f64>() / sorted.len() as f64)
                } else {
                    Some(kept.iter().sum::<f64>() / kept.len() as f64)
                }
            }
        }
    }

    /// A short label used in reports.
    pub fn label(&self) -> String {
        match self {
            FinalFunction::Median => "median".to_string(),
            FinalFunction::Mean => "mean".to_string(),
            FinalFunction::TrimmedMean(f) => format!("trimmed_mean({f})"),
        }
    }
}

/// Configuration of the Cnt2Crd cardinality estimation technique.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cnt2CrdConfig {
    /// The final function `F`.
    pub final_function: FinalFunction,
    /// The ε threshold below which `y_rate` is treated as zero (Figure 8's `epsilon`).
    ///
    /// The estimate divides by `y_rate`, so anchors where the model believes the new query is
    /// barely contained in the old one amplify the containment model's error the most.  The
    /// default of 0.1 keeps only anchors the model considers at least 10%-containing, which is
    /// noticeably more robust at the reduced training scale of this reproduction (the paper
    /// does not report its ε).
    pub epsilon: f64,
    /// Estimate returned when no pool entry matches and no fallback estimator is configured.
    pub default_estimate: f64,
    /// Top-K anchor selection: `0` (the default) evaluates **all** matching anchors —
    /// bit-identical to the pre-tier serving paths — while `k > 0` ranks the matching
    /// anchors by featurization-space similarity ([`crate::pool::anchor_score`]) and
    /// evaluates only the best `k`, making per-query cost O(bucket + k) model heads
    /// instead of O(bucket).
    ///
    /// Top-K estimates are *not* bit-identical to the full scan; they are gated by the
    /// estimator-quality parity budget (top-K vs full-pool median q-error delta) the
    /// pool-scale sweep and its tests enforce.
    pub top_k: usize,
}

impl Cnt2CrdConfig {
    /// Folds one anchor/rate pairing into a per-entry estimate, applying the ε filter
    /// (Figure 8's inner loop body).
    ///
    /// This is THE definition of a per-entry estimate: every serving path — sequential,
    /// batched, sharded [`Cnt2Crd`] and the concurrent
    /// [`EstimatorService`](crate::service::EstimatorService) — must fold through this one
    /// function, or the bit-parity contract between them silently breaks.
    pub fn entry_estimate(&self, cardinality: u64, x_rate: f64, y_rate: f64) -> Option<f64> {
        if y_rate <= self.epsilon {
            return None;
        }
        let estimate = x_rate / y_rate * cardinality as f64;
        estimate.is_finite().then_some(estimate)
    }
}

impl Default for Cnt2CrdConfig {
    fn default() -> Self {
        Cnt2CrdConfig {
            final_function: FinalFunction::Median,
            epsilon: 0.1,
            default_estimate: 1.0,
            top_k: 0,
        }
    }
}

/// Sharded-serving configuration of a [`Cnt2Crd`] estimator: how many canonical-hash shards
/// the matching anchors are partitioned into and the persistent worker pool evaluating them.
#[derive(Debug, Clone)]
struct ShardedServing {
    shards: usize,
    workers: WorkerPool,
}

/// A cardinality estimator built from a containment-rate model and a queries pool.
pub struct Cnt2Crd<M> {
    model: M,
    pool: QueriesPool,
    config: Cnt2CrdConfig,
    fallback: Option<Box<dyn CardinalityEstimator + Send + Sync>>,
    name: String,
    /// Per-FROM-clause (and, in sharded mode, per-shard) serving state built by the model
    /// for its matching anchors ([`ContainmentEstimator::prepare_anchors`]), lazily filled
    /// on first use and dropped when the pool is replaced.  For the CRN model this holds
    /// the packed featurization of the anchors, so steady-state serving featurizes only the
    /// incoming query.
    prepared_anchors: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    /// `Some` routes [`Cnt2Crd::per_entry_estimates`] through the persistent worker pool
    /// over canonical-hash anchor shards (see [`Cnt2Crd::with_serving`]).
    serving: Option<ShardedServing>,
}

impl<M: ContainmentEstimator> Cnt2Crd<M> {
    /// Builds the estimator from a containment model and a queries pool, with defaults
    /// (median final function, ε = 0.1).
    pub fn new(model: M, pool: QueriesPool) -> Self {
        let name = format!("Cnt2Crd({})", model.name());
        Cnt2Crd {
            model,
            pool,
            config: Cnt2CrdConfig::default(),
            fallback: None,
            name,
            prepared_anchors: Mutex::new(HashMap::new()),
            serving: None,
        }
    }

    /// Enables sharded serving: [`Cnt2Crd::per_entry_estimates`] partitions the matching
    /// anchors into `shards` canonical-hash shards (the same routing as
    /// [`crate::sharded::ShardedPool`]) and evaluates them in parallel on the given
    /// persistent [`WorkerPool`], each shard against its own cached
    /// [`prepare_anchors`](ContainmentEstimator::prepare_anchors) state, merged in
    /// canonical shard order.
    ///
    /// The merged per-entry list is a permutation of the sequential scan's, so the final
    /// functions (which sort) — and therefore [`CardinalityEstimator::estimate`] — are
    /// bit-identical at every shard/thread count; the parity tests in [`crate::service`]
    /// pin this.  `shards <= 1` keeps the sequential path.
    pub fn with_serving(mut self, shards: usize, workers: WorkerPool) -> Self {
        self.serving = if shards > 1 {
            Some(ShardedServing { shards, workers })
        } else {
            None
        };
        self
    }

    /// Overrides the technique's configuration.
    pub fn with_config(mut self, config: Cnt2CrdConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets a fallback cardinality estimator used when no pool entry matches the query's FROM
    /// clause (§5.2: "we can always rely on the known basic cardinality estimation models").
    pub fn with_fallback(mut self, fallback: Box<dyn CardinalityEstimator + Send + Sync>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// The wrapped containment model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The queries pool.
    pub fn pool(&self) -> &QueriesPool {
        &self.pool
    }

    /// Replaces the queries pool (used by the pool-size sweep of Table 14).
    pub fn set_pool(&mut self, pool: QueriesPool) {
        self.pool = pool;
        self.prepared_anchors.lock().expect("not poisoned").clear();
    }

    /// The technique's configuration.
    pub fn config(&self) -> &Cnt2CrdConfig {
        &self.config
    }

    /// [`Cnt2CrdConfig::entry_estimate`] with this estimator's configuration.
    fn entry_estimate(&self, cardinality: u64, x_rate: f64, y_rate: f64) -> Option<f64> {
        self.config.entry_estimate(cardinality, x_rate, y_rate)
    }
}

impl<M: ContainmentEstimator + Sync> Cnt2Crd<M> {
    /// The per-pool-entry estimates for a query (exposed for diagnostics and tests).
    ///
    /// All matching pool anchors are evaluated through the containment model's
    /// [`predict_batch`](ContainmentEstimator::predict_batch) — for neural models each
    /// anchor is featurized once and the whole pool runs through exactly two batched
    /// forward passes, instead of the `2·N` single-pair forwards of the sequential path.
    ///
    /// With [`Cnt2Crd::with_serving`] enabled, the anchors are partitioned into
    /// canonical-hash shards evaluated in parallel on the persistent worker pool and the
    /// per-shard lists are concatenated in canonical shard order — a permutation of the
    /// sequential list with bit-identical values, so the (sorting) final functions return
    /// bit-identical estimates.
    pub fn per_entry_estimates(&self, query: &Query) -> Vec<f64> {
        if self.config.top_k > 0 {
            return self.per_entry_estimates_top_k(query);
        }
        if let Some(serving) = &self.serving {
            return self.per_entry_estimates_sharded(query, serving);
        }
        // One traversal of the matching bucket: anchors for the batched model call,
        // cardinalities for the estimate fold.
        let mut anchors: Vec<&Query> = Vec::new();
        let mut cardinalities: Vec<u64> = Vec::new();
        for entry in self.pool.matching(query) {
            anchors.push(&entry.query);
            cardinalities.push(entry.cardinality);
        }
        if anchors.is_empty() {
            return Vec::new();
        }
        let key = crate::pool::from_key(query);
        let rates = self.rates_for_anchors(key, &anchors, query);
        cardinalities
            .iter()
            .zip(rates)
            .filter_map(|(&cardinality, (x_rate, y_rate))| {
                self.entry_estimate(cardinality, x_rate, y_rate)
            })
            .collect()
    }

    /// The top-K serving path (`config.top_k > 0`): rank the matching anchors by
    /// featurization-space similarity and run only the best `k` through the containment
    /// heads.  Takes precedence over sharded serving — with `k` anchors the per-query model
    /// cost is already bounded, so fanning the tiny batch across workers would only add
    /// scheduling overhead.  The prepared-anchor cache is deliberately skipped: its slots
    /// are keyed per FROM clause, but top-K anchor sets vary per *query*.
    fn per_entry_estimates_top_k(&self, query: &Query) -> Vec<f64> {
        let ranked = self
            .pool
            .as_shard()
            .matching_top_k(query, self.config.top_k);
        if ranked.is_empty() {
            return Vec::new();
        }
        let anchors: Vec<&Query> = ranked.iter().map(|(_, entry)| &entry.query).collect();
        let rates = self.model.predict_batch(&anchors, query);
        ranked
            .iter()
            .zip(rates)
            .filter_map(|(&(_, entry), (x_rate, y_rate))| {
                self.entry_estimate(entry.cardinality, x_rate, y_rate)
            })
            .collect()
    }

    /// The sharded serving path: matching anchors partitioned by canonical query hash (the
    /// [`crate::sharded::ShardedPool`] routing), one work item per non-empty shard on the
    /// persistent pool, per-shard `prepare_anchors` caches, merged in canonical shard order.
    fn per_entry_estimates_sharded(&self, query: &Query, serving: &ShardedServing) -> Vec<f64> {
        let num_shards = serving.shards;
        let mut per_shard: Vec<Vec<(&Query, u64)>> = vec![Vec::new(); num_shards];
        for entry in self.pool.matching(query) {
            let shard = (query_hash(&entry.query) % num_shards as u64) as usize;
            per_shard[shard].push((&entry.query, entry.cardinality));
        }
        if per_shard.iter().all(|shard| shard.is_empty()) {
            return Vec::new();
        }
        let key = crate::pool::from_key(query);
        let shard_estimates: Vec<Vec<f64>> = serving.workers.run_sharded(num_shards, |shard| {
            let entries = &per_shard[shard];
            if entries.is_empty() {
                return Vec::new();
            }
            let anchors: Vec<&Query> = entries.iter().map(|(anchor, _)| *anchor).collect();
            // Distinct cache slot per (FROM clause, shard, shard count): the anchor list a
            // slot caches must match this exact partition.
            let rates =
                self.rates_for_anchors(format!("{key}#{shard}/{num_shards}"), &anchors, query);
            entries
                .iter()
                .zip(rates)
                .filter_map(|(&(_, cardinality), (x_rate, y_rate))| {
                    self.entry_estimate(cardinality, x_rate, y_rate)
                })
                .collect()
        });
        shard_estimates.concat()
    }

    /// Both containment directions of an anchor list against one query, through the cached
    /// [`prepare_anchors`](ContainmentEstimator::prepare_anchors) state for `cache_key`
    /// (built on first use, dropped when the pool is replaced).
    fn rates_for_anchors(
        &self,
        cache_key: String,
        anchors: &[&Query],
        query: &Query,
    ) -> Vec<(f64, f64)> {
        match self.prepared_for(cache_key, anchors) {
            Some(state) => self
                .model
                .predict_batch_prepared(state.as_ref(), anchors, query),
            None => self.model.predict_batch(anchors, query),
        }
    }

    /// Returns (building on first use) the model's serving state for an anchor list under
    /// the given cache key (the canonical FROM-clause key, suffixed with the shard
    /// coordinates in sharded mode — each key corresponds one-to-one to an anchor list).
    fn prepared_for(&self, key: String, anchors: &[&Query]) -> Option<Arc<dyn Any + Send + Sync>> {
        if let Some(state) = self
            .prepared_anchors
            .lock()
            .expect("not poisoned")
            .get(&key)
        {
            return Some(state.clone());
        }
        // Build outside the lock: per-shard warmup runs on the worker pool, and holding the
        // cache lock across the (batched-GEMM) preparation would serialize it.  Two threads
        // racing on the same key both build; the first insert wins and both states are
        // equivalent (the preparation is a pure function of the anchor list).
        let state: Arc<dyn Any + Send + Sync> = Arc::from(self.model.prepare_anchors(anchors)?);
        Some(
            self.prepared_anchors
                .lock()
                .expect("not poisoned")
                .entry(key)
                .or_insert(state)
                .clone(),
        )
    }

    /// The sequential reference implementation of [`Cnt2Crd::per_entry_estimates`]: one
    /// `estimate_containment` call per direction per anchor, exactly as Figure 8 writes the
    /// algorithm.  Kept public for the parity tests and the criterion baseline.
    pub fn per_entry_estimates_sequential(&self, query: &Query) -> Vec<f64> {
        self.pool
            .matching(query)
            .filter_map(|entry| {
                let x_rate = self.model.estimate_containment(&entry.query, query);
                let y_rate = self.model.estimate_containment(query, &entry.query);
                self.entry_estimate(entry.cardinality, x_rate, y_rate)
            })
            .collect()
    }
}

impl<M: ContainmentEstimator + Sync> CardinalityEstimator for Cnt2Crd<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&self, query: &Query) -> f64 {
        let estimates = self.per_entry_estimates(query);
        match self.config.final_function.apply(&estimates) {
            Some(value) => value.max(0.0),
            None => match &self.fallback {
                Some(fallback) => fallback.estimate(query),
                None => self.config.default_estimate,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crd2cnt::Crd2Cnt;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};
    use crn_estimators::{PostgresEstimator, TrueCardinality};
    use crn_exec::Executor;
    use crn_nn::q_error;
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    #[test]
    fn final_functions_behave_as_documented() {
        let values = [1.0, 100.0, 3.0, 2.0, 4.0];
        assert_eq!(FinalFunction::Median.apply(&values), Some(3.0));
        assert_eq!(FinalFunction::Mean.apply(&values), Some(22.0));
        // Trimming 40% drops the smallest and largest value.
        let trimmed = FinalFunction::TrimmedMean(0.4).apply(&values).unwrap();
        assert!((trimmed - 3.0).abs() < 1e-9);
        assert_eq!(FinalFunction::Median.apply(&[]), None);
        assert_eq!(FinalFunction::Median.apply(&[5.0, 7.0]), Some(6.0));
        assert_eq!(FinalFunction::Median.label(), "median");
    }

    #[test]
    fn oracle_pipeline_recovers_exact_cardinalities() {
        // Cnt2Crd(Crd2Cnt(TrueCardinality)) with a pool of exact cardinalities must return
        // exact cardinalities for any query whose FROM clause is covered by the pool.
        let db = generate_imdb(&ImdbConfig::tiny(50));
        let pool = QueriesPool::generate(&db, 60, 2, 50);
        let oracle = Crd2Cnt::new(TrueCardinality::new(&db));
        let estimator = Cnt2Crd::new(oracle, pool);
        let exec = Executor::new(&db);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(51));
        let mut checked = 0;
        for query in gen.generate_queries(40) {
            let truth = exec.cardinality(&query) as f64;
            if truth == 0.0 {
                continue;
            }
            let estimate = estimator.estimate(&query);
            if estimator.per_entry_estimates(&query).is_empty() {
                continue;
            }
            assert!(
                q_error(estimate, truth, 1.0) < 1.0 + 1e-6,
                "oracle pipeline must be exact: {estimate} vs {truth} for {query}"
            );
            checked += 1;
        }
        assert!(
            checked > 5,
            "the pool should cover several test queries, covered {checked}"
        );
    }

    #[test]
    fn fallback_is_used_when_no_pool_entry_matches() {
        let db = generate_imdb(&ImdbConfig::tiny(52));
        let empty_pool = QueriesPool::new();
        let estimator = Cnt2Crd::new(Crd2Cnt::new(PostgresEstimator::analyze(&db)), empty_pool)
            .with_fallback(Box::new(PostgresEstimator::analyze(&db)));
        let scan = Query::scan(tables::TITLE);
        let expected = PostgresEstimator::analyze(&db).estimate(&scan);
        assert_eq!(estimator.estimate(&scan), expected);
        // Without a fallback, the configured default is returned.
        let bare = Cnt2Crd::new(
            Crd2Cnt::new(PostgresEstimator::analyze(&db)),
            QueriesPool::new(),
        );
        assert_eq!(
            bare.estimate(&scan),
            Cnt2CrdConfig::default().default_estimate
        );
        assert_eq!(bare.name(), "Cnt2Crd(Crd2Cnt(PostgreSQL))");
    }

    #[test]
    fn epsilon_filters_zero_denominators() {
        let db = generate_imdb(&ImdbConfig::tiny(53));
        let pool = QueriesPool::generate(&db, 30, 1, 53);
        let estimator = Cnt2Crd::new(Crd2Cnt::new(TrueCardinality::new(&db)), pool).with_config(
            Cnt2CrdConfig {
                epsilon: 0.5, // aggressive: only well-contained matches survive
                ..Cnt2CrdConfig::default()
            },
        );
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(54));
        for query in gen.generate_queries(10) {
            let estimate = estimator.estimate(&query);
            assert!(estimate.is_finite() && estimate >= 0.0);
        }
    }

    /// The batched serving path must return the same cardinality as the sequential Figure-8
    /// loop, both for the oracle pipeline and for a trained CRN model.
    #[test]
    fn batched_estimate_matches_sequential_loop() {
        use crate::model::CrnModel;
        use crn_exec::label_containment_pairs;
        use crn_nn::TrainConfig;

        let db = generate_imdb(&ImdbConfig::tiny(56));
        let pool = QueriesPool::generate(&db, 60, 2, 56);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(57));

        // Oracle containment model (exercises the default trait predict_batch).
        let oracle = Cnt2Crd::new(Crd2Cnt::new(TrueCardinality::new(&db)), pool.clone());
        // Trained CRN containment model (exercises the batched override).
        let pairs = gen.generate_pairs(30, 120);
        let samples = label_containment_pairs(&db, &pairs, 4);
        let mut crn = CrnModel::new(&db, TrainConfig::fast_test());
        crn.fit(&samples);
        let learned = Cnt2Crd::new(crn, pool);

        let mut covered = 0;
        for query in gen.generate_queries(25) {
            for estimates in [
                (
                    oracle.per_entry_estimates(&query),
                    oracle.per_entry_estimates_sequential(&query),
                ),
                (
                    learned.per_entry_estimates(&query),
                    learned.per_entry_estimates_sequential(&query),
                ),
            ] {
                let (batched, sequential) = estimates;
                assert_eq!(
                    batched.len(),
                    sequential.len(),
                    "same anchors must survive ε"
                );
                for (a, b) in batched.iter().zip(&sequential) {
                    assert!(
                        (a - b).abs() < 1e-5 * b.abs().max(1.0),
                        "batched {a} vs sequential {b} for {query}"
                    );
                }
                if !batched.is_empty() {
                    covered += 1;
                }
            }
        }
        assert!(
            covered > 5,
            "the pool should cover several test queries, covered {covered}"
        );
    }

    /// Regression: an empty anchor set must short-circuit to an empty result on every CRN
    /// serving entry point instead of reaching the GEMM path with a zero-row (0×0) packed
    /// batch, which the matmul shape asserts reject.  Covers the bare batched calls, the
    /// prepared-state call (with a stale non-empty state), and the full `Cnt2Crd` estimate
    /// over a pool whose matching anchor list is emptied by `remove`.
    #[test]
    fn empty_anchor_pool_returns_empty_instead_of_hitting_gemm() {
        use crate::model::CrnModel;
        use crn_nn::TrainConfig;
        use crn_query::generator::GeneratorConfig;

        let db = generate_imdb(&ImdbConfig::tiny(58));
        let model = CrnModel::new(&db, TrainConfig::fast_test());
        let query = Query::scan(tables::TITLE);

        // Bare batched entry points.
        assert!(model.predict_batch(&[], &query).is_empty());
        assert!(ContainmentEstimator::predict_batch_forward(&model, &[], &query).is_empty());
        assert!(model.prepare_anchors(&[]).is_none());
        // Prepared-state entry point with an empty anchor list and a (stale) non-empty
        // serving state — must not be fed to the head GEMMs.
        let stale = model
            .prepare_anchors(&[&query])
            .expect("non-empty anchor set prepares");
        assert!(model
            .predict_batch_prepared(stale.as_ref(), &[], &query)
            .is_empty());

        // Full estimator over a pool whose only anchor for this FROM clause is removed:
        // the matching list is empty and the estimate falls back to the default.
        let mut pool = QueriesPool::new();
        pool.insert(query.clone(), 123);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(58));
        for q in gen.generate_queries(10) {
            if q.tables() != query.tables() {
                // Keep the pool non-empty, but leave the query's own FROM clause bare.
                pool.insert(q, 1);
            }
        }
        pool.remove(&query);
        let estimator = Cnt2Crd::new(model, pool);
        assert!(estimator.per_entry_estimates(&query).is_empty());
        assert_eq!(
            estimator.estimate(&query),
            Cnt2CrdConfig::default().default_estimate
        );
    }

    #[test]
    fn pool_replacement_changes_estimates() {
        let db = generate_imdb(&ImdbConfig::tiny(55));
        let pool = QueriesPool::generate(&db, 60, 2, 55);
        let mut estimator = Cnt2Crd::new(Crd2Cnt::new(TrueCardinality::new(&db)), pool.clone());
        let query = Query::scan(tables::TITLE);
        let full_pool_estimate = estimator.estimate(&query);
        estimator.set_pool(pool.truncated(1));
        // The estimate may change (or not), but the call must remain well-defined.
        let small_pool_estimate = estimator.estimate(&query);
        assert!(small_pool_estimate.is_finite());
        assert!(full_pool_estimate.is_finite());
        assert!(estimator.pool().len() <= 1);
    }
}
