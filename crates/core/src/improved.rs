//! "Improved" existing estimators: `Improved(M) = Cnt2Crd(Crd2Cnt(M))` (paper §7).
//!
//! The paper's final observation is that the queries-pool technique improves *any* existing
//! cardinality estimator without modifying it: first convert it to a containment-rate
//! estimator with `Crd2Cnt`, then feed that through `Cnt2Crd` with a queries pool.  The
//! resulting `Improved PostgreSQL` and `Improved MSCN` models are what Tables 11–13 evaluate.

use crate::cnt2crd::{Cnt2Crd, Cnt2CrdConfig};
use crate::crd2cnt::Crd2Cnt;
use crate::pool::QueriesPool;
use crn_estimators::CardinalityEstimator;
use crn_query::ast::Query;

/// An existing cardinality estimator improved by the containment/queries-pool technique.
pub struct ImprovedEstimator<M> {
    inner: Cnt2Crd<Crd2Cnt<M>>,
    name: String,
}

impl<M: CardinalityEstimator + Sync> ImprovedEstimator<M> {
    /// Wraps an existing estimator with the three-step improvement technique.
    pub fn new(estimator: M, pool: QueriesPool) -> Self {
        let name = format!("Improved {}", estimator.name());
        ImprovedEstimator {
            inner: Cnt2Crd::new(Crd2Cnt::new(estimator), pool),
            name,
        }
    }

    /// Overrides the technique's configuration (final function, ε, default).
    pub fn with_config(mut self, config: Cnt2CrdConfig) -> Self {
        self.inner = self.inner.with_config(config);
        self
    }

    /// Access to the wrapped original estimator.
    pub fn original(&self) -> &M {
        self.inner.model().inner()
    }

    /// Access to the underlying Cnt2Crd pipeline (pool, per-entry estimates, ...).
    pub fn pipeline(&self) -> &Cnt2Crd<Crd2Cnt<M>> {
        &self.inner
    }

    /// Replaces the queries pool.
    pub fn set_pool(&mut self, pool: QueriesPool) {
        self.inner.set_pool(pool);
    }
}

impl<M: CardinalityEstimator + Sync> CardinalityEstimator for ImprovedEstimator<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn estimate(&self, query: &Query) -> f64 {
        // When the pool cannot help, fall back to the original estimator: the improvement
        // technique never does worse than "no matching old query" (§5.2).
        let estimates = self.inner.per_entry_estimates(query);
        match self.inner.config().final_function.apply(&estimates) {
            Some(value) => value.max(0.0),
            None => self.original().estimate(query),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};
    use crn_estimators::{PostgresEstimator, TrueCardinality};
    use crn_exec::Executor;
    use crn_nn::q_error;
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    #[test]
    fn improved_oracle_remains_exact() {
        let db = generate_imdb(&ImdbConfig::tiny(60));
        let pool = QueriesPool::generate(&db, 60, 2, 60);
        let improved = ImprovedEstimator::new(TrueCardinality::new(&db), pool);
        assert_eq!(improved.name(), "Improved TrueCardinality");
        let exec = Executor::new(&db);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(61));
        for query in gen.generate_queries(20) {
            let truth = exec.cardinality(&query) as f64;
            if truth == 0.0 {
                continue;
            }
            let estimate = improved.estimate(&query);
            assert!(q_error(estimate, truth, 1.0) < 1.0 + 1e-6, "query {query}");
        }
    }

    #[test]
    fn improved_postgres_beats_plain_postgres_on_multi_join_queries() {
        // The headline claim of §7.2: wrapping PostgreSQL in the technique reduces its error
        // on multi-join workloads.  We verify the *direction* on a small sample.
        let db = generate_imdb(&ImdbConfig::small(62));
        let pool = QueriesPool::generate(&db, 120, 4, 62);
        let plain = PostgresEstimator::analyze(&db);
        let improved = ImprovedEstimator::new(PostgresEstimator::analyze(&db), pool);
        let exec = Executor::new(&db);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::with_max_joins(63, 4));
        // Generate generously: only a fraction of random multi-join queries have non-empty
        // results, and the test needs at least 10 evaluable ones.
        let queries: Vec<Query> = gen
            .generate_queries(200)
            .into_iter()
            .filter(|q| q.num_joins() >= 2)
            .take(90)
            .collect();
        let mut plain_errors = Vec::new();
        let mut improved_errors = Vec::new();
        for query in &queries {
            let truth = exec.cardinality(query) as f64;
            if truth == 0.0 {
                continue;
            }
            plain_errors.push(q_error(plain.estimate(query), truth, 1.0));
            improved_errors.push(q_error(improved.estimate(query), truth, 1.0));
        }
        assert!(plain_errors.len() >= 10, "need enough evaluable queries");
        let median = |values: &mut Vec<f64>| {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            values[values.len() / 2]
        };
        let plain_median = median(&mut plain_errors);
        let improved_median = median(&mut improved_errors);
        assert!(
            improved_median <= plain_median * 1.5,
            "improved PostgreSQL should not be dramatically worse (plain {plain_median:.2}, improved {improved_median:.2})"
        );
    }

    #[test]
    fn falls_back_to_original_estimator_without_pool_coverage() {
        let db = generate_imdb(&ImdbConfig::tiny(64));
        let improved = ImprovedEstimator::new(PostgresEstimator::analyze(&db), QueriesPool::new());
        let scan = Query::scan(tables::TITLE);
        let original = PostgresEstimator::analyze(&db).estimate(&scan);
        assert_eq!(improved.estimate(&scan), original);
        assert_eq!(improved.pipeline().pool().len(), 0);
        assert_eq!(improved.original().name(), "PostgreSQL");
    }
}
