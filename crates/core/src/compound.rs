//! Compound queries: `UNION`, `EXCEPT` and `OR`, handled by the containment algebra of the
//! paper's §9 ("Conclusions and future work").
//!
//! The CRN model itself only sees conjunctive queries.  The paper observes that the compound
//! operators reduce to conjunctive building blocks through identities over cardinalities and
//! containment rates:
//!
//! ```text
//! |Q1 EXCEPT Q2| = |Q1| − |Q1 ∩ Q2|
//! |Q1 UNION  Q2| = |Q1| + |Q2|                      (bag/UNION ALL semantics)
//! |Q1 OR     Q2| = |Q1 UNION Q2| − |Q1 ∩ Q2|        (set union of the two filters)
//!
//! (Q1 UNION Q2) ⊂% Q3 = Q1 ⊂% Q3 + Q2 ⊂% Q3 − (Q1 ∩ Q2) ⊂% Q3
//! (Q1 EXCEPT Q2) ⊂% Q3 = Q1 ⊂% Q3 − (Q1 ∩ Q2) ⊂% Q3
//! ```
//!
//! This module implements those reductions on top of any [`CardinalityEstimator`] /
//! [`ContainmentEstimator`], so every estimator in the workspace (PostgreSQL, MSCN, CRN,
//! the improved variants) transparently supports compound queries.

use crn_estimators::{CardinalityEstimator, ContainmentEstimator};
use crn_query::ast::{Predicate, Query};
use serde::{Deserialize, Serialize};

/// A query extended with the compound operators of §9.
///
/// All component queries must share the same FROM clause; the constructors enforce it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompoundQuery {
    /// A plain conjunctive query.
    Simple(Query),
    /// `left UNION ALL right`.
    Union(Box<CompoundQuery>, Box<CompoundQuery>),
    /// `left EXCEPT right`.
    Except(Box<CompoundQuery>, Box<CompoundQuery>),
    /// The disjunction of two WHERE clauses over the same FROM clause (`... WHERE A OR B`).
    Or(Box<CompoundQuery>, Box<CompoundQuery>),
}

/// Error returned when compound operands do not share a FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromClauseMismatch;

impl std::fmt::Display for FromClauseMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compound query operands must share the same FROM clause")
    }
}

impl std::error::Error for FromClauseMismatch {}

impl CompoundQuery {
    /// Wraps a conjunctive query.
    pub fn simple(query: Query) -> Self {
        CompoundQuery::Simple(query)
    }

    /// Builds `left UNION ALL right`, checking the FROM clauses match.
    pub fn union(left: CompoundQuery, right: CompoundQuery) -> Result<Self, FromClauseMismatch> {
        Self::check_same_from(&left, &right)?;
        Ok(CompoundQuery::Union(Box::new(left), Box::new(right)))
    }

    /// Builds `left EXCEPT right`, checking the FROM clauses match.
    pub fn except(left: CompoundQuery, right: CompoundQuery) -> Result<Self, FromClauseMismatch> {
        Self::check_same_from(&left, &right)?;
        Ok(CompoundQuery::Except(Box::new(left), Box::new(right)))
    }

    /// Builds the disjunction of two queries' WHERE clauses, checking the FROM clauses match.
    pub fn or(left: CompoundQuery, right: CompoundQuery) -> Result<Self, FromClauseMismatch> {
        Self::check_same_from(&left, &right)?;
        Ok(CompoundQuery::Or(Box::new(left), Box::new(right)))
    }

    /// Builds an `OR` query directly from a base query and two alternative predicates — the
    /// DNF rewriting the paper sketches for `WHERE ... AND (a OR b)`.
    pub fn or_predicates(base: &Query, a: Predicate, b: Predicate) -> Self {
        CompoundQuery::Or(
            Box::new(CompoundQuery::Simple(base.with_predicate(a))),
            Box::new(CompoundQuery::Simple(base.with_predicate(b))),
        )
    }

    fn check_same_from(
        left: &CompoundQuery,
        right: &CompoundQuery,
    ) -> Result<(), FromClauseMismatch> {
        match (left.any_component(), right.any_component()) {
            (Some(l), Some(r)) if l.same_from(r) => Ok(()),
            _ => Err(FromClauseMismatch),
        }
    }

    /// Any conjunctive component (used for FROM-clause checks).
    fn any_component(&self) -> Option<&Query> {
        match self {
            CompoundQuery::Simple(q) => Some(q),
            CompoundQuery::Union(l, _) | CompoundQuery::Except(l, _) | CompoundQuery::Or(l, _) => {
                l.any_component()
            }
        }
    }

    /// Number of conjunctive leaves.
    pub fn num_components(&self) -> usize {
        match self {
            CompoundQuery::Simple(_) => 1,
            CompoundQuery::Union(l, r) | CompoundQuery::Except(l, r) | CompoundQuery::Or(l, r) => {
                l.num_components() + r.num_components()
            }
        }
    }

    /// Estimates the cardinality of the compound query using `estimator` for the conjunctive
    /// leaves, via the paper's identities.
    pub fn estimate_cardinality<M: CardinalityEstimator>(&self, estimator: &M) -> f64 {
        match self {
            CompoundQuery::Simple(q) => estimator.estimate(q),
            CompoundQuery::Union(l, r) => {
                l.estimate_cardinality(estimator) + r.estimate_cardinality(estimator)
            }
            CompoundQuery::Except(l, r) => {
                let left = l.estimate_cardinality(estimator);
                let overlap = Self::intersection_cardinality(l, r, estimator);
                (left - overlap).max(0.0)
            }
            CompoundQuery::Or(l, r) => {
                let union = l.estimate_cardinality(estimator) + r.estimate_cardinality(estimator);
                let overlap = Self::intersection_cardinality(l, r, estimator);
                (union - overlap).max(0.0)
            }
        }
    }

    /// Estimates the containment rate `self ⊂% other` where `other` is conjunctive, using the
    /// paper's §9 identities over a containment estimator for the conjunctive leaves.
    ///
    /// All conjunctive queries the identity tree needs (every leaf plus every pairwise
    /// overlap) are evaluated in **one**
    /// [`predict_batch_forward`](ContainmentEstimator::predict_batch_forward) call against
    /// the shared `other`, then the tree is folded over the precomputed rates — a compound
    /// query with `k` components costs one batched forward instead of `O(k)` single-pair
    /// ones for neural models.
    pub fn estimate_containment_in<M: ContainmentEstimator>(
        &self,
        other: &Query,
        estimator: &M,
    ) -> f64 {
        let mut queries = Vec::with_capacity(2 * self.num_components());
        self.collect_containment_queries(&mut queries);
        let anchors: Vec<&Query> = queries.iter().collect();
        let rates = estimator.predict_batch_forward(&anchors, other);
        let mut cursor = 0;
        let result = self.fold_containment(&rates, &mut cursor);
        debug_assert_eq!(
            cursor,
            rates.len(),
            "fold must consume every precomputed rate"
        );
        result
    }

    /// The sequential reference implementation of [`CompoundQuery::estimate_containment_in`]:
    /// one `estimate_containment` call per leaf/overlap, exactly as the identities read.
    /// Kept public for the parity tests.
    pub fn estimate_containment_in_sequential<M: ContainmentEstimator>(
        &self,
        other: &Query,
        estimator: &M,
    ) -> f64 {
        match self {
            CompoundQuery::Simple(q) => estimator.estimate_containment(q, other),
            CompoundQuery::Union(l, r) | CompoundQuery::Or(l, r) => {
                let left = l.estimate_containment_in_sequential(other, estimator);
                let right = r.estimate_containment_in_sequential(other, estimator);
                let overlap = match (l.flatten_conjunctive(), r.flatten_conjunctive()) {
                    (Some(lq), Some(rq)) => lq
                        .intersect(&rq)
                        .map(|i| estimator.estimate_containment(&i, other))
                        .unwrap_or(0.0),
                    _ => 0.0,
                };
                (left + right - overlap).clamp(0.0, 1.0)
            }
            CompoundQuery::Except(l, r) => {
                let left = l.estimate_containment_in_sequential(other, estimator);
                let overlap = match (l.flatten_conjunctive(), r.flatten_conjunctive()) {
                    (Some(lq), Some(rq)) => lq
                        .intersect(&rq)
                        .map(|i| estimator.estimate_containment(&i, other))
                        .unwrap_or(0.0),
                    _ => 0.0,
                };
                (left - overlap).clamp(0.0, 1.0)
            }
        }
    }

    /// Collects, in fold order, every conjunctive query whose containment rate against the
    /// shared right-hand query the identity tree needs.
    fn collect_containment_queries(&self, out: &mut Vec<Query>) {
        match self {
            CompoundQuery::Simple(q) => out.push(q.clone()),
            CompoundQuery::Union(l, r) | CompoundQuery::Or(l, r) => {
                l.collect_containment_queries(out);
                r.collect_containment_queries(out);
                if let Some(i) = Self::conjunctive_overlap(l, r) {
                    out.push(i);
                }
            }
            CompoundQuery::Except(l, r) => {
                l.collect_containment_queries(out);
                if let Some(i) = Self::conjunctive_overlap(l, r) {
                    out.push(i);
                }
            }
        }
    }

    /// Folds the identity tree over rates precomputed in
    /// [`collect_containment_queries`](Self::collect_containment_queries) order.
    fn fold_containment(&self, rates: &[f64], cursor: &mut usize) -> f64 {
        match self {
            CompoundQuery::Simple(_) => {
                let rate = rates[*cursor];
                *cursor += 1;
                rate
            }
            CompoundQuery::Union(l, r) | CompoundQuery::Or(l, r) => {
                let left = l.fold_containment(rates, cursor);
                let right = r.fold_containment(rates, cursor);
                let overlap = if Self::conjunctive_overlap(l, r).is_some() {
                    let rate = rates[*cursor];
                    *cursor += 1;
                    rate
                } else {
                    0.0
                };
                (left + right - overlap).clamp(0.0, 1.0)
            }
            CompoundQuery::Except(l, r) => {
                let left = l.fold_containment(rates, cursor);
                let overlap = if Self::conjunctive_overlap(l, r).is_some() {
                    let rate = rates[*cursor];
                    *cursor += 1;
                    rate
                } else {
                    0.0
                };
                (left - overlap).clamp(0.0, 1.0)
            }
        }
    }

    /// The intersection of two operands when both are conjunctive and intersectable.
    fn conjunctive_overlap(left: &CompoundQuery, right: &CompoundQuery) -> Option<Query> {
        match (left.flatten_conjunctive(), right.flatten_conjunctive()) {
            (Some(l), Some(r)) => l.intersect(&r),
            _ => None,
        }
    }

    /// Cardinality of the intersection of two compound operands, when both are conjunctive.
    fn intersection_cardinality<M: CardinalityEstimator>(
        left: &CompoundQuery,
        right: &CompoundQuery,
        estimator: &M,
    ) -> f64 {
        match (left.flatten_conjunctive(), right.flatten_conjunctive()) {
            (Some(l), Some(r)) => l
                .intersect(&r)
                .map(|i| estimator.estimate(&i))
                .unwrap_or(0.0),
            // Nested compound operands: fall back to the conservative independence-style bound
            // min(|L|, |R|) — exact reduction would require full DNF expansion.
            _ => left
                .estimate_cardinality(estimator)
                .min(right.estimate_cardinality(estimator)),
        }
    }

    /// Returns the conjunctive query when the compound is a simple leaf.
    fn flatten_conjunctive(&self) -> Option<Query> {
        match self {
            CompoundQuery::Simple(q) => Some(q.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};
    use crn_db::schema::ColumnRef;
    use crn_db::value::CompareOp;
    use crn_estimators::TrueCardinality;
    use crn_exec::Executor;
    use crn_query::ast::Predicate;

    fn pred(col: &str, op: CompareOp, v: i64) -> Predicate {
        Predicate::new(ColumnRef::new(tables::TITLE, col), op, v)
    }

    #[test]
    fn construction_rejects_mismatched_from_clauses() {
        let a = CompoundQuery::simple(Query::scan(tables::TITLE));
        let b = CompoundQuery::simple(Query::scan(tables::CAST_INFO));
        assert_eq!(
            CompoundQuery::union(a.clone(), b).unwrap_err(),
            FromClauseMismatch
        );
        assert_eq!(a.num_components(), 1);
    }

    #[test]
    fn union_except_or_identities_hold_with_the_oracle() {
        // With exact leaf cardinalities the identities are exact for single-table queries
        // (every result row is a distinct base row, so set semantics apply).
        let db = generate_imdb(&ImdbConfig::tiny(91));
        let exec = Executor::new(&db);
        let oracle = TrueCardinality::new(&db);

        let base = Query::scan(tables::TITLE);
        let old = base.with_predicate(pred("production_year", CompareOp::Lt, 1960));
        let features = base.with_predicate(pred("kind_id", CompareOp::Eq, 1));

        let union = CompoundQuery::union(
            CompoundQuery::simple(old.clone()),
            CompoundQuery::simple(features.clone()),
        )
        .unwrap();
        assert_eq!(
            union.estimate_cardinality(&oracle),
            (exec.cardinality(&old) + exec.cardinality(&features)) as f64
        );

        // OR = union minus overlap: count rows satisfying either predicate exactly.
        let or = CompoundQuery::or(
            CompoundQuery::simple(old.clone()),
            CompoundQuery::simple(features.clone()),
        )
        .unwrap();
        let title = db.table(tables::TITLE).unwrap();
        let years = title.column("production_year").unwrap();
        let kinds = title.column("kind_id").unwrap();
        let mut expected_or = 0u64;
        for row in 0..title.row_count() {
            let is_old = years.get_int(row).is_some_and(|y| y < 1960);
            let is_feature = kinds.get_int(row) == Some(1);
            if is_old || is_feature {
                expected_or += 1;
            }
        }
        assert_eq!(or.estimate_cardinality(&oracle), expected_or as f64);

        // EXCEPT = |Q1| - |Q1 ∩ Q2|.
        let except = CompoundQuery::except(
            CompoundQuery::simple(old.clone()),
            CompoundQuery::simple(features.clone()),
        )
        .unwrap();
        let overlap = exec.cardinality(&old.intersect(&features).unwrap());
        assert_eq!(
            except.estimate_cardinality(&oracle),
            (exec.cardinality(&old) - overlap) as f64
        );
    }

    #[test]
    fn or_predicates_helper_builds_two_component_query() {
        let base = Query::scan(tables::TITLE);
        let q = CompoundQuery::or_predicates(
            &base,
            pred("kind_id", CompareOp::Eq, 1),
            pred("kind_id", CompareOp::Eq, 7),
        );
        assert_eq!(q.num_components(), 2);
    }

    #[test]
    fn compound_containment_is_bounded_and_consistent() {
        let db = generate_imdb(&ImdbConfig::tiny(92));
        let oracle = crate::crd2cnt::Crd2Cnt::new(TrueCardinality::new(&db));
        let base = Query::scan(tables::TITLE);
        let narrow = base.with_predicate(pred("production_year", CompareOp::Gt, 2005));
        let wide = base.with_predicate(pred("production_year", CompareOp::Gt, 1900));

        // A simple leaf behaves exactly like the wrapped estimator.
        let simple = CompoundQuery::simple(narrow.clone());
        let direct = oracle.estimate_containment(&narrow, &wide);
        assert!((simple.estimate_containment_in(&wide, &oracle) - direct).abs() < 1e-12);

        // Union containment stays within [0, 1] and is at least each component's rate
        // (up to the subtracted overlap).
        let union = CompoundQuery::union(
            CompoundQuery::simple(narrow),
            CompoundQuery::simple(base.with_predicate(pred("kind_id", CompareOp::Eq, 1))),
        )
        .unwrap();
        let rate = union.estimate_containment_in(&wide, &oracle);
        assert!((0.0..=1.0).contains(&rate));
    }

    /// The batched containment fold must agree with the sequential recursion on every
    /// compound shape, including nested ones.
    #[test]
    fn batched_containment_fold_matches_sequential_recursion() {
        let db = generate_imdb(&ImdbConfig::tiny(61));
        let oracle = crate::crd2cnt::Crd2Cnt::new(TrueCardinality::new(&db));
        let base = Query::scan(tables::TITLE);
        let a = base.with_predicate(pred("production_year", CompareOp::Gt, 2000));
        let b = base.with_predicate(pred("kind_id", CompareOp::Eq, 1));
        let c = base.with_predicate(pred("production_year", CompareOp::Le, 2010));
        let wide = base.with_predicate(pred("production_year", CompareOp::Gt, 1900));

        let union_ab = CompoundQuery::union(
            CompoundQuery::simple(a.clone()),
            CompoundQuery::simple(b.clone()),
        )
        .unwrap();
        let shapes = [
            CompoundQuery::simple(a.clone()),
            union_ab.clone(),
            CompoundQuery::except(
                CompoundQuery::simple(a.clone()),
                CompoundQuery::simple(c.clone()),
            )
            .unwrap(),
            CompoundQuery::or(
                CompoundQuery::simple(b.clone()),
                CompoundQuery::simple(c.clone()),
            )
            .unwrap(),
            // Nested: (a ∪ b) EXCEPT c — the union operand is not conjunctive, so no overlap
            // query is emitted for the outer node.
            CompoundQuery::except(union_ab, CompoundQuery::simple(c)).unwrap(),
        ];
        for compound in shapes {
            let batched = compound.estimate_containment_in(&wide, &oracle);
            let sequential = compound.estimate_containment_in_sequential(&wide, &oracle);
            assert!(
                (batched - sequential).abs() < 1e-12,
                "batched {batched} vs sequential {sequential} for {compound:?}"
            );
        }
    }
}
