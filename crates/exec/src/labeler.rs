//! Batch labelling of training corpora.
//!
//! Building the paper's development dataset requires executing every generated query (and
//! every intersection query) against the database to obtain true cardinalities and containment
//! rates (§3.1.2, §4.1.2).  This module parallelizes that work across threads and caches
//! cardinalities so that shared sub-queries (`Q1`, `Q1 ∩ Q2`) are executed only once.

use crate::executor::Executor;
use crn_db::database::Database;
use crn_query::ast::Query;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A labelled containment-rate sample: the pair, its true containment rate, and the true
/// cardinalities that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainmentSample {
    /// The contained-side query (`Q1`).
    pub q1: Query,
    /// The containing-side query (`Q2`).
    pub q2: Query,
    /// True containment rate `Q1 ⊂% Q2` in `[0, 1]`.
    pub rate: f64,
    /// True cardinality of `Q1`.
    pub card_q1: u64,
    /// True cardinality of `Q2`.
    pub card_q2: u64,
    /// True cardinality of the intersection query `Q1 ∩ Q2`.
    pub card_intersection: u64,
}

/// A labelled cardinality sample.
#[derive(Debug, Clone, PartialEq)]
pub struct CardinalitySample {
    /// The query.
    pub query: Query,
    /// Its true result cardinality.
    pub cardinality: u64,
}

/// An [`Executor`] wrapper that memoizes cardinalities.
///
/// Cardinality look-ups repeat heavily while labelling (e.g. `|Q1|` is needed for every pair
/// containing `Q1`, and the queries-pool technique re-uses pool cardinalities constantly), so
/// the cache is shared behind a mutex; the executor itself is read-only over the database.
pub struct CachingExecutor<'a> {
    executor: Executor<'a>,
    cache: Mutex<HashMap<Query, u64>>,
}

impl<'a> CachingExecutor<'a> {
    /// Creates a caching executor over a database snapshot.
    pub fn new(db: &'a Database) -> Self {
        CachingExecutor {
            executor: Executor::new(db),
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying exact executor.
    pub fn executor(&self) -> Executor<'a> {
        self.executor
    }

    /// Number of cached cardinalities.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }

    /// Cardinality with memoization.
    pub fn cardinality(&self, query: &Query) -> u64 {
        if let Some(&hit) = self.cache.lock().get(query) {
            return hit;
        }
        let value = self.executor.cardinality(query);
        self.cache.lock().insert(query.clone(), value);
        value
    }

    /// Containment rate `q1 ⊂% q2` with memoized cardinalities.
    pub fn containment_rate(&self, q1: &Query, q2: &Query) -> Option<f64> {
        let intersection = q1.intersect(q2)?;
        let card_q1 = self.cardinality(q1);
        if card_q1 == 0 {
            return Some(0.0);
        }
        let card_inter = self.cardinality(&intersection);
        Some(card_inter as f64 / card_q1 as f64)
    }
}

/// Labels a set of query pairs with true containment rates, in parallel.
///
/// Pairs whose FROM clauses differ are skipped (their containment rate is undefined).
pub fn label_containment_pairs(
    db: &Database,
    pairs: &[(Query, Query)],
    num_threads: usize,
) -> Vec<ContainmentSample> {
    let num_threads = num_threads.max(1);
    let cache = CachingExecutor::new(db);
    let results: Mutex<Vec<(usize, ContainmentSample)>> =
        Mutex::new(Vec::with_capacity(pairs.len()));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..num_threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if index >= pairs.len() {
                    break;
                }
                let (q1, q2) = &pairs[index];
                let Some(intersection) = q1.intersect(q2) else {
                    continue;
                };
                let card_q1 = cache.cardinality(q1);
                let card_q2 = cache.cardinality(q2);
                let card_intersection = cache.cardinality(&intersection);
                let rate = if card_q1 == 0 {
                    0.0
                } else {
                    card_intersection as f64 / card_q1 as f64
                };
                results.lock().push((
                    index,
                    ContainmentSample {
                        q1: q1.clone(),
                        q2: q2.clone(),
                        rate,
                        card_q1,
                        card_q2,
                        card_intersection,
                    },
                ));
            });
        }
    });

    let mut results = results.into_inner();
    results.sort_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, sample)| sample).collect()
}

/// Labels a set of queries with true cardinalities, in parallel.
pub fn label_cardinalities(
    db: &Database,
    queries: &[Query],
    num_threads: usize,
) -> Vec<CardinalitySample> {
    let num_threads = num_threads.max(1);
    let executor = Executor::new(db);
    let results: Mutex<Vec<(usize, CardinalitySample)>> =
        Mutex::new(Vec::with_capacity(queries.len()));
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..num_threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if index >= queries.len() {
                    break;
                }
                let query = &queries[index];
                let cardinality = executor.cardinality(query);
                results.lock().push((
                    index,
                    CardinalitySample {
                        query: query.clone(),
                        cardinality,
                    },
                ));
            });
        }
    });

    let mut results = results.into_inner();
    results.sort_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, sample)| sample).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    #[test]
    fn labelled_pairs_match_direct_execution() {
        let db = generate_imdb(&ImdbConfig::tiny(19));
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(19));
        let pairs = gen.generate_pairs(15, 60);
        let samples = label_containment_pairs(&db, &pairs, 4);
        assert_eq!(samples.len(), pairs.len());
        let exec = Executor::new(&db);
        for sample in samples.iter().take(10) {
            let expected = exec.containment_rate(&sample.q1, &sample.q2).unwrap();
            assert!((sample.rate - expected).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&sample.rate));
            assert!(sample.card_intersection <= sample.card_q1.max(1));
        }
    }

    #[test]
    fn label_order_is_stable() {
        let db = generate_imdb(&ImdbConfig::tiny(23));
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(23));
        let pairs = gen.generate_pairs(10, 30);
        let a = label_containment_pairs(&db, &pairs, 1);
        let b = label_containment_pairs(&db, &pairs, 4);
        assert_eq!(
            a, b,
            "parallel labelling must be deterministic in output order"
        );
    }

    #[test]
    fn cardinality_labelling_matches_executor() {
        let db = generate_imdb(&ImdbConfig::tiny(29));
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(29));
        let queries = gen.generate_queries(20);
        let samples = label_cardinalities(&db, &queries, 3);
        assert_eq!(samples.len(), queries.len());
        let exec = Executor::new(&db);
        for s in samples.iter().take(10) {
            assert_eq!(s.cardinality, exec.cardinality(&s.query));
        }
    }

    #[test]
    fn caching_executor_reuses_results() {
        let db = generate_imdb(&ImdbConfig::tiny(31));
        let cache = CachingExecutor::new(&db);
        let q = Query::scan("title");
        let first = cache.cardinality(&q);
        let second = cache.cardinality(&q);
        assert_eq!(first, second);
        assert_eq!(cache.cache_len(), 1);
        assert_eq!(cache.containment_rate(&q, &q), Some(1.0));
    }
}
