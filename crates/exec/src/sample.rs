//! Materialized base-table samples.
//!
//! The strongest MSCN variant the paper compares against ("MSCN with 1000 samples", §6.6)
//! augments each query's featurization with a bitmap per base table: which of a fixed set of
//! materialized sample rows satisfy the query's predicates on that table.  This module
//! materializes those samples and evaluates the bitmaps.

use bytes::{BufMut, Bytes, BytesMut};
use crn_db::database::Database;
use crn_db::table::Table;
use crn_query::ast::Query;
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use std::collections::HashMap;

/// A fixed sample of row ids per table.
#[derive(Debug, Clone)]
pub struct TableSamples {
    /// Number of sample rows requested per table (tables smaller than this are fully sampled).
    pub sample_size: usize,
    samples: HashMap<String, Vec<u32>>,
}

impl TableSamples {
    /// Draws `sample_size` uniform random rows from every table of the database.
    pub fn new(db: &Database, sample_size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = HashMap::new();
        for table in db.tables() {
            let n = table.row_count();
            let k = sample_size.min(n);
            let mut rows: Vec<u32> = if k == n {
                (0..n as u32).collect()
            } else {
                index_sample(&mut rng, n, k)
                    .into_iter()
                    .map(|i| i as u32)
                    .collect()
            };
            rows.sort_unstable();
            samples.insert(table.name().to_string(), rows);
        }
        TableSamples {
            sample_size,
            samples,
        }
    }

    /// The sampled row ids of a table.
    pub fn rows(&self, table: &str) -> Option<&[u32]> {
        self.samples.get(table).map(|v| v.as_slice())
    }

    /// Evaluates the query's predicates on the sample of `table`, returning one bit per sample
    /// row (`true` = the sample row satisfies all predicates of the query on that table).
    pub fn bitmap(&self, db: &Database, query: &Query, table: &str) -> Vec<bool> {
        let Some(rows) = self.samples.get(table) else {
            return Vec::new();
        };
        let Some(table_data) = db.table(table) else {
            return vec![false; rows.len()];
        };
        rows.iter()
            .map(|&row| Self::row_matches(table_data, query, row))
            .collect()
    }

    /// The fraction of sample rows of `table` satisfying the query's predicates.
    ///
    /// This is the classic Bernoulli-sample selectivity estimate; it is also what the
    /// sample-enhanced MSCN effectively learns to exploit.
    pub fn selectivity(&self, db: &Database, query: &Query, table: &str) -> f64 {
        let bitmap = self.bitmap(db, query, table);
        if bitmap.is_empty() {
            return 1.0;
        }
        bitmap.iter().filter(|&&b| b).count() as f64 / bitmap.len() as f64
    }

    /// Serializes a bitmap into a compact byte form (8 sample rows per byte).
    pub fn pack_bitmap(bitmap: &[bool]) -> Bytes {
        let mut bytes = BytesMut::with_capacity(bitmap.len().div_ceil(8));
        for chunk in bitmap.chunks(8) {
            let mut byte = 0u8;
            for (i, &bit) in chunk.iter().enumerate() {
                if bit {
                    byte |= 1 << i;
                }
            }
            bytes.put_u8(byte);
        }
        bytes.freeze()
    }

    /// Deserializes a bitmap produced by [`TableSamples::pack_bitmap`].
    pub fn unpack_bitmap(bytes: &Bytes, len: usize) -> Vec<bool> {
        (0..len)
            .map(|i| {
                let byte = bytes.get(i / 8).copied().unwrap_or(0);
                (byte >> (i % 8)) & 1 == 1
            })
            .collect()
    }

    fn row_matches(table: &Table, query: &Query, row: u32) -> bool {
        query
            .predicates()
            .iter()
            .filter(|p| p.column.table == table.name())
            .all(|p| {
                table
                    .column(&p.column.column)
                    .and_then(|c| c.get_int(row as usize))
                    .map(|v| p.op.eval(v, p.value))
                    .unwrap_or(false)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};
    use crn_db::schema::ColumnRef;
    use crn_db::value::CompareOp;
    use crn_query::ast::Predicate;

    fn db() -> Database {
        generate_imdb(&ImdbConfig::tiny(41))
    }

    #[test]
    fn samples_cover_small_tables_completely() {
        let db = db();
        let samples = TableSamples::new(&db, 10_000, 1);
        for table in db.tables() {
            assert_eq!(samples.rows(table.name()).unwrap().len(), table.row_count());
        }
    }

    #[test]
    fn samples_respect_requested_size() {
        let db = db();
        let samples = TableSamples::new(&db, 50, 1);
        for table in db.tables() {
            let n = samples.rows(table.name()).unwrap().len();
            assert_eq!(n, table.row_count().min(50));
        }
    }

    #[test]
    fn bitmap_agrees_with_predicates() {
        let db = db();
        let samples = TableSamples::new(&db, 64, 7);
        let q = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                ColumnRef::new(tables::TITLE, "kind_id"),
                CompareOp::Eq,
                1,
            )],
        );
        let bitmap = samples.bitmap(&db, &q, tables::TITLE);
        let rows = samples.rows(tables::TITLE).unwrap();
        let title = db.table(tables::TITLE).unwrap();
        for (&row, &bit) in rows.iter().zip(&bitmap) {
            let expected = title.column("kind_id").unwrap().get_int(row as usize) == Some(1);
            assert_eq!(bit, expected);
        }
    }

    #[test]
    fn scan_query_selectivity_is_one() {
        let db = db();
        let samples = TableSamples::new(&db, 64, 7);
        let q = Query::scan(tables::TITLE);
        assert_eq!(samples.selectivity(&db, &q, tables::TITLE), 1.0);
    }

    #[test]
    fn selectivity_estimates_are_close_to_truth_on_full_sample() {
        let db = db();
        // Sampling every row makes the estimate exact.
        let samples = TableSamples::new(&db, usize::MAX, 3);
        let q = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                ColumnRef::new(tables::TITLE, "production_year"),
                CompareOp::Gt,
                1990,
            )],
        );
        let title = db.table(tables::TITLE).unwrap();
        let truth =
            crate::filter::count_table(title, q.predicates()) as f64 / title.row_count() as f64;
        assert!((samples.selectivity(&db, &q, tables::TITLE) - truth).abs() < 1e-12);
    }

    #[test]
    fn bitmap_round_trips_through_packing() {
        let bitmap: Vec<bool> = (0..37).map(|i| i % 3 == 0).collect();
        let packed = TableSamples::pack_bitmap(&bitmap);
        assert_eq!(packed.len(), 5);
        assert_eq!(TableSamples::unpack_bitmap(&packed, bitmap.len()), bitmap);
    }

    #[test]
    fn unknown_table_yields_empty_bitmap() {
        let db = db();
        let samples = TableSamples::new(&db, 16, 9);
        let q = Query::scan(tables::TITLE);
        assert!(samples.bitmap(&db, &q, "unknown").is_empty());
    }
}
