//! Per-table predicate evaluation.
//!
//! The executor first reduces every base table of a query to the set of row ids satisfying the
//! query's column predicates on that table; joins are then evaluated over those filtered sets.

use crn_db::table::Table;
use crn_query::ast::Predicate;

/// Returns the row ids of `table` that satisfy **all** of the given predicates.
///
/// Predicates referencing other tables are ignored by this function (callers pass only the
/// predicates of this table).  NULL values never satisfy a predicate.
pub fn filter_table(table: &Table, predicates: &[Predicate]) -> Vec<u32> {
    let relevant: Vec<&Predicate> = predicates
        .iter()
        .filter(|p| p.column.table == table.name())
        .collect();
    let row_count = table.row_count();
    if relevant.is_empty() {
        return (0..row_count as u32).collect();
    }
    // Resolve columns once, outside the row loop.
    let columns: Vec<_> = relevant
        .iter()
        .map(|p| {
            table
                .column(&p.column.column)
                .unwrap_or_else(|| panic!("unknown column {} in table {}", p.column, table.name()))
        })
        .collect();
    let mut result = Vec::new();
    'rows: for row in 0..row_count {
        for (pred, col) in relevant.iter().zip(&columns) {
            match col.get_int(row) {
                Some(v) if pred.op.eval(v, pred.value) => {}
                _ => continue 'rows,
            }
        }
        result.push(row as u32);
    }
    result
}

/// Counts the rows of `table` satisfying all given predicates without materializing row ids.
pub fn count_table(table: &Table, predicates: &[Predicate]) -> u64 {
    let relevant: Vec<&Predicate> = predicates
        .iter()
        .filter(|p| p.column.table == table.name())
        .collect();
    if relevant.is_empty() {
        return table.row_count() as u64;
    }
    let columns: Vec<_> = relevant
        .iter()
        .map(|p| {
            table
                .column(&p.column.column)
                .unwrap_or_else(|| panic!("unknown column {} in table {}", p.column, table.name()))
        })
        .collect();
    let mut count = 0u64;
    'rows: for row in 0..table.row_count() {
        for (pred, col) in relevant.iter().zip(&columns) {
            match col.get_int(row) {
                Some(v) if pred.op.eval(v, pred.value) => {}
                _ => continue 'rows,
            }
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::schema::{ColumnDef, ColumnRef, TableDef};
    use crn_db::value::CompareOp;
    use crn_query::ast::Predicate;

    fn table() -> Table {
        let def = TableDef {
            name: "t".into(),
            alias: "t".into(),
            columns: vec![
                ColumnDef::key("id"),
                ColumnDef::int("x"),
                ColumnDef::int("y").nullable(),
            ],
            primary_key: Some("id".into()),
        };
        let mut t = Table::new(def);
        t.push_row(&[Some(1), Some(10), Some(100)]);
        t.push_row(&[Some(2), Some(20), None]);
        t.push_row(&[Some(3), Some(30), Some(300)]);
        t.push_row(&[Some(4), Some(40), Some(400)]);
        t
    }

    fn pred(col: &str, op: CompareOp, v: i64) -> Predicate {
        Predicate::new(ColumnRef::new("t", col), op, v)
    }

    #[test]
    fn no_predicates_selects_everything() {
        let t = table();
        assert_eq!(filter_table(&t, &[]), vec![0, 1, 2, 3]);
        assert_eq!(count_table(&t, &[]), 4);
    }

    #[test]
    fn single_predicate_filters_rows() {
        let t = table();
        let p = [pred("x", CompareOp::Gt, 15)];
        assert_eq!(filter_table(&t, &p), vec![1, 2, 3]);
        assert_eq!(count_table(&t, &p), 3);
    }

    #[test]
    fn conjunction_of_predicates() {
        let t = table();
        let p = [pred("x", CompareOp::Gt, 15), pred("x", CompareOp::Lt, 40)];
        assert_eq!(filter_table(&t, &p), vec![1, 2]);
        assert_eq!(count_table(&t, &p), 2);
    }

    #[test]
    fn null_rows_never_match() {
        let t = table();
        // y > 0 matches all non-NULL y rows only.
        let p = [pred("y", CompareOp::Gt, 0)];
        assert_eq!(filter_table(&t, &p), vec![0, 2, 3]);
    }

    #[test]
    fn contradicting_predicates_select_nothing() {
        let t = table();
        let p = [pred("x", CompareOp::Lt, 10), pred("x", CompareOp::Gt, 40)];
        assert!(filter_table(&t, &p).is_empty());
        assert_eq!(count_table(&t, &p), 0);
    }

    #[test]
    fn predicates_on_other_tables_are_ignored() {
        let t = table();
        let p = [Predicate::new(
            ColumnRef::new("other", "x"),
            CompareOp::Eq,
            1,
        )];
        assert_eq!(filter_table(&t, &p).len(), 4);
    }
}
