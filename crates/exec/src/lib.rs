//! `crn-exec` — exact query execution over the in-memory database.
//!
//! This crate turns the database substrate into a labelling oracle:
//!
//! * [`filter`] — per-table predicate evaluation;
//! * [`executor`] — exact cardinalities via dynamic programming over acyclic join trees, plus
//!   containment rates `Q1 ⊂% Q2` (paper §2);
//! * [`labeler`] — parallel, cached batch labelling of training corpora (§3.1.2, §4.1.2);
//! * [`sample`] — materialized base-table samples and per-query bitmaps used by the
//!   sample-enhanced MSCN baseline (§6.6).
//!
//! # Example
//!
//! ```
//! use crn_db::imdb::{generate_imdb, ImdbConfig};
//! use crn_exec::Executor;
//! use crn_query::Query;
//!
//! let db = generate_imdb(&ImdbConfig::tiny(1));
//! let exec = Executor::new(&db);
//! let scan = Query::scan("title");
//! assert_eq!(exec.cardinality(&scan), db.table("title").unwrap().row_count() as u64);
//! assert_eq!(exec.containment_rate(&scan, &scan), Some(1.0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod executor;
pub mod filter;
pub mod labeler;
pub mod sample;

pub use executor::Executor;
pub use labeler::{
    label_cardinalities, label_containment_pairs, CachingExecutor, CardinalitySample,
    ContainmentSample,
};
pub use sample::TableSamples;
