//! Query execution: exact cardinalities and containment rates.
//!
//! The paper needs two ground-truth quantities from the database (both obtained by actually
//! executing queries on the IMDb snapshot, §3.1.2 and §4.1.2):
//!
//! * the result cardinality `|Q|` of a conjunctive query, and
//! * the containment rate `Q1 ⊂% Q2 = |Q1 ∩ Q2| / |Q1|` of a pair of queries with identical
//!   FROM clauses (§2).
//!
//! All queries produced by the generators have **acyclic (tree-shaped) join graphs** — a
//! spanning tree over the chosen tables — so cardinalities can be computed without
//! materializing join results, by dynamic programming over the join tree ("message passing"):
//! each table row is annotated with the number of join-tree combinations below it, and the
//! counts are aggregated bottom-up through hash maps on the join keys.  This is exact and runs
//! in time linear in the table sizes, which is what makes labelling tens of thousands of
//! training pairs feasible.  A naive tuple-materializing executor is kept (and cross-checked in
//! tests) for verification.

use crate::filter::filter_table;
use crn_db::database::Database;
use crn_db::schema::ColumnRef;
use crn_db::table::Table;
use crn_query::ast::{JoinClause, Predicate, Query};
use std::collections::HashMap;

/// Exact query executor over a database snapshot.
#[derive(Debug, Clone, Copy)]
pub struct Executor<'a> {
    db: &'a Database,
}

impl<'a> Executor<'a> {
    /// Creates an executor.
    pub fn new(db: &'a Database) -> Self {
        Executor { db }
    }

    /// The underlying database.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// Computes the exact result cardinality of a conjunctive query.
    ///
    /// Joins must form a forest (no cycles); disconnected components contribute a Cartesian
    /// product, as SQL semantics dictate.
    ///
    /// # Panics
    /// Panics if the query references tables or columns missing from the database, or if the
    /// join graph contains a cycle (the generators never produce either).
    pub fn cardinality(&self, query: &Query) -> u64 {
        let tables: Vec<&str> = query.tables().iter().map(|s| s.as_str()).collect();
        if tables.is_empty() {
            return 0;
        }
        // Filtered row ids per table.
        let filtered: HashMap<&str, Vec<u32>> = tables
            .iter()
            .map(|&name| {
                let table = self
                    .db
                    .table(name)
                    .unwrap_or_else(|| panic!("unknown table {name}"));
                (name, filter_table(table, query.predicates()))
            })
            .collect();

        // Adjacency list of the join tree: table -> (neighbor, own column, neighbor column).
        let mut adjacency: HashMap<&str, Vec<(&str, &ColumnRef, &ColumnRef)>> = HashMap::new();
        for join in query.joins() {
            adjacency.entry(&join.left.table).or_default().push((
                &join.right.table,
                &join.left,
                &join.right,
            ));
            adjacency.entry(&join.right.table).or_default().push((
                &join.left.table,
                &join.right,
                &join.left,
            ));
        }

        // Process each connected component; multiply the component cardinalities.
        let mut visited: HashMap<&str, bool> = tables.iter().map(|&t| (t, false)).collect();
        let mut total: u64 = 1;
        for &root in &tables {
            if visited[&root] {
                continue;
            }
            let component = self.count_component(root, &adjacency, &filtered, &mut visited);
            total = total.saturating_mul(component);
            if total == 0 {
                // Early exit: the whole conjunction is empty.
                // Still mark remaining tables visited for consistency.
                continue;
            }
        }
        total
    }

    /// Counts the join-tree combinations of the connected component rooted at `root`.
    fn count_component<'q>(
        &self,
        root: &'q str,
        adjacency: &HashMap<&'q str, Vec<(&'q str, &'q ColumnRef, &'q ColumnRef)>>,
        filtered: &HashMap<&'q str, Vec<u32>>,
        visited: &mut HashMap<&'q str, bool>,
    ) -> u64 {
        // Weight of each filtered row of `root`: the number of combinations of descendant rows
        // joining with it.  Computed recursively over the join tree.
        let weights = self.subtree_weights(root, None, adjacency, filtered, visited);
        weights.into_iter().sum()
    }

    /// Returns, for every filtered row of `table` (in the order of `filtered[table]`), the
    /// number of join combinations of the subtree rooted at `table` (excluding the edge back to
    /// `parent`).
    fn subtree_weights<'q>(
        &self,
        table: &'q str,
        parent: Option<&str>,
        adjacency: &HashMap<&'q str, Vec<(&'q str, &'q ColumnRef, &'q ColumnRef)>>,
        filtered: &HashMap<&'q str, Vec<u32>>,
        visited: &mut HashMap<&'q str, bool>,
    ) -> Vec<u64> {
        visited.insert(table, true);
        let rows = &filtered[table];
        let mut weights = vec![1u64; rows.len()];
        let Some(edges) = adjacency.get(table) else {
            return weights;
        };
        let table_data = self.db.table(table).expect("table exists");
        for (neighbor, own_col, other_col) in edges {
            if Some(*neighbor) == parent {
                continue;
            }
            assert!(
                !visited.get(*neighbor).copied().unwrap_or(false),
                "cyclic join graph involving table {neighbor}"
            );
            let child_weights =
                self.subtree_weights(neighbor, Some(table), adjacency, filtered, visited);
            // Aggregate the child's weights per join-key value.
            let child_table = self.db.table(neighbor).expect("table exists");
            let child_col = child_table
                .column(&other_col.column)
                .unwrap_or_else(|| panic!("unknown join column {other_col}"));
            let mut per_key: HashMap<i64, u64> = HashMap::new();
            for (child_row, weight) in filtered[*neighbor].iter().zip(&child_weights) {
                if let Some(key) = child_col.get_int(*child_row as usize) {
                    *per_key.entry(key).or_insert(0) += *weight;
                }
            }
            // Multiply into this table's row weights.
            let own_column = table_data
                .column(&own_col.column)
                .unwrap_or_else(|| panic!("unknown join column {own_col}"));
            for (row, weight) in rows.iter().zip(weights.iter_mut()) {
                let matches = own_column
                    .get_int(*row as usize)
                    .and_then(|key| per_key.get(&key).copied())
                    .unwrap_or(0);
                *weight *= matches;
            }
        }
        weights
    }

    /// Computes the containment rate `Q1 ⊂% Q2` on this database (§2).
    ///
    /// Returns a rate in `[0, 1]`.  By definition the rate is `0` when `|Q1| = 0`.  Returns
    /// `None` when the two queries do not share a FROM clause (the rate is undefined then).
    pub fn containment_rate(&self, q1: &Query, q2: &Query) -> Option<f64> {
        let intersection = q1.intersect(q2)?;
        let card_q1 = self.cardinality(q1);
        if card_q1 == 0 {
            return Some(0.0);
        }
        let card_inter = self.cardinality(&intersection);
        Some(card_inter as f64 / card_q1 as f64)
    }

    /// Naive reference executor that materializes all join combinations.
    ///
    /// Exponential in the number of joins and only suitable for small inputs; used to
    /// cross-check [`Executor::cardinality`] in tests and available for debugging.
    pub fn cardinality_naive(&self, query: &Query) -> u64 {
        let tables: Vec<&str> = query.tables().iter().map(|s| s.as_str()).collect();
        if tables.is_empty() {
            return 0;
        }
        // Materialize filtered rows per table, then fold over tables building partial tuples.
        // Tables are ordered by join-graph degree (hubs first) so join clauses become checkable
        // as early as possible and intermediate results stay small.
        let mut ordered = tables.clone();
        let degree = |t: &str| {
            query
                .joins()
                .iter()
                .filter(|j| j.left.table == t || j.right.table == t)
                .count()
        };
        ordered.sort_by_key(|t| std::cmp::Reverse(degree(t)));
        let filtered: Vec<(&str, Vec<u32>)> = ordered
            .iter()
            .map(|&name| {
                let table = self.db.table(name).expect("table exists");
                (name, filter_table(table, query.predicates()))
            })
            .collect();
        let mut partial: Vec<HashMap<&str, u32>> = vec![HashMap::new()];
        for (name, rows) in &filtered {
            let mut next = Vec::new();
            for combo in &partial {
                for &row in rows {
                    let mut extended = combo.clone();
                    extended.insert(name, row);
                    if self.joins_hold(query.joins(), &extended) {
                        next.push(extended);
                    }
                }
            }
            partial = next;
            if partial.is_empty() {
                return 0;
            }
        }
        partial.len() as u64
    }

    /// Checks every join clause whose both sides are already bound in the partial tuple.
    fn joins_hold(&self, joins: &[JoinClause], bound: &HashMap<&str, u32>) -> bool {
        for join in joins {
            let (Some(&left_row), Some(&right_row)) = (
                bound.get(join.left.table.as_str()),
                bound.get(join.right.table.as_str()),
            ) else {
                continue;
            };
            let left = self.column_value(&join.left, left_row);
            let right = self.column_value(&join.right, right_row);
            match (left, right) {
                (Some(l), Some(r)) if l == r => {}
                _ => return false,
            }
        }
        true
    }

    fn column_value(&self, column: &ColumnRef, row: u32) -> Option<i64> {
        self.db
            .table(&column.table)
            .and_then(|t| t.column(&column.column))
            .and_then(|c| c.get_int(row as usize))
    }

    /// Counts rows of a single table matching the given predicates (helper used by the
    /// PostgreSQL-style estimator's sampling validation and by tests).
    pub fn count_single_table(&self, table: &Table, predicates: &[Predicate]) -> u64 {
        crate::filter::count_table(table, predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, tables, ImdbConfig};
    use crn_db::value::CompareOp;
    use crn_query::ast::{JoinClause, Predicate};
    use crn_query::generator::{GeneratorConfig, QueryGenerator};

    fn db() -> Database {
        generate_imdb(&ImdbConfig::tiny(3))
    }

    fn col(t: &str, c: &str) -> ColumnRef {
        ColumnRef::new(t, c)
    }

    #[test]
    fn single_table_scan_counts_all_rows() {
        let db = db();
        let exec = Executor::new(&db);
        let q = Query::scan(tables::TITLE);
        assert_eq!(
            exec.cardinality(&q),
            db.table(tables::TITLE).unwrap().row_count() as u64
        );
    }

    #[test]
    fn single_table_predicate_matches_filter() {
        let db = db();
        let exec = Executor::new(&db);
        let q = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                col(tables::TITLE, "kind_id"),
                CompareOp::Eq,
                1,
            )],
        );
        let expected = exec.count_single_table(db.table(tables::TITLE).unwrap(), q.predicates());
        assert_eq!(exec.cardinality(&q), expected);
        assert!(
            expected > 0,
            "tiny database should contain kind_id = 1 titles"
        );
    }

    #[test]
    fn join_cardinality_without_predicates_equals_fact_table_size() {
        // title.id is a primary key, so joining a fact table with title (no predicates)
        // yields exactly one match per fact row.
        let db = db();
        let exec = Executor::new(&db);
        let q = Query::new(
            [
                tables::TITLE.to_string(),
                tables::MOVIE_COMPANIES.to_string(),
            ],
            [JoinClause::new(
                col(tables::TITLE, "id"),
                col(tables::MOVIE_COMPANIES, "movie_id"),
            )],
            [],
        );
        assert_eq!(
            exec.cardinality(&q),
            db.table(tables::MOVIE_COMPANIES).unwrap().row_count() as u64
        );
    }

    #[test]
    fn tree_count_matches_naive_executor_on_random_queries() {
        let db = db();
        let exec = Executor::new(&db);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::with_max_joins(77, 2));
        for q in gen.generate_queries(40) {
            let fast = exec.cardinality(&q);
            let naive = exec.cardinality_naive(&q);
            assert_eq!(fast, naive, "mismatch for query {q}");
        }
    }

    #[test]
    fn containment_rate_basic_properties() {
        let db = db();
        let exec = Executor::new(&db);
        let q = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                col(tables::TITLE, "production_year"),
                CompareOp::Gt,
                1990,
            )],
        );
        let wider = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                col(tables::TITLE, "production_year"),
                CompareOp::Gt,
                1950,
            )],
        );
        // Q is fully contained in the wider query.
        assert_eq!(exec.containment_rate(&q, &wider), Some(1.0));
        // Self containment is always 1 for non-empty results.
        assert_eq!(exec.containment_rate(&q, &q), Some(1.0));
        // The wider query is only partially contained in the narrower one.
        let partial = exec.containment_rate(&wider, &q).unwrap();
        assert!(partial > 0.0 && partial < 1.0, "rate {partial}");
        // Different FROM clauses have no containment rate.
        assert_eq!(
            exec.containment_rate(&q, &Query::scan(tables::CAST_INFO)),
            None
        );
    }

    #[test]
    fn containment_rate_of_empty_query_is_zero() {
        let db = db();
        let exec = Executor::new(&db);
        let empty = Query::new(
            [tables::TITLE.to_string()],
            [],
            [Predicate::new(
                col(tables::TITLE, "kind_id"),
                CompareOp::Gt,
                100,
            )],
        );
        assert_eq!(exec.cardinality(&empty), 0);
        assert_eq!(
            exec.containment_rate(&empty, &Query::scan(tables::TITLE)),
            Some(0.0)
        );
    }

    #[test]
    fn containment_rate_definition_holds() {
        // x% = |Q1 ∩ Q2| / |Q1| (paper §2): check explicitly on a join query pair.
        let db = db();
        let exec = Executor::new(&db);
        let base = Query::new(
            [tables::TITLE.to_string(), tables::CAST_INFO.to_string()],
            [JoinClause::new(
                col(tables::TITLE, "id"),
                col(tables::CAST_INFO, "movie_id"),
            )],
            [Predicate::new(
                col(tables::CAST_INFO, "role_id"),
                CompareOp::Lt,
                4,
            )],
        );
        let other = base.with_predicate(Predicate::new(
            col(tables::TITLE, "production_year"),
            CompareOp::Gt,
            1980,
        ));
        let rate = exec.containment_rate(&base, &other).unwrap();
        let inter = base.intersect(&other).unwrap();
        let expected = exec.cardinality(&inter) as f64 / exec.cardinality(&base) as f64;
        assert!((rate - expected).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn disconnected_tables_form_cartesian_products() {
        let db = db();
        let exec = Executor::new(&db);
        // Two tables, no join clause: SQL semantics is a cross product.
        let q = Query::new(
            [tables::TITLE.to_string(), tables::MOVIE_KEYWORD.to_string()],
            [],
            [],
        );
        let expected = db.table(tables::TITLE).unwrap().row_count() as u64
            * db.table(tables::MOVIE_KEYWORD).unwrap().row_count() as u64;
        assert_eq!(exec.cardinality(&q), expected);
    }

    #[test]
    fn five_join_star_query_is_computed_exactly() {
        let db = db();
        let exec = Executor::new(&db);
        let mut tables_v: Vec<String> = vec![tables::TITLE.to_string()];
        let mut joins = Vec::new();
        for fact in tables::FACTS {
            tables_v.push(fact.to_string());
            joins.push(JoinClause::new(
                col(tables::TITLE, "id"),
                col(fact, "movie_id"),
            ));
        }
        let q = Query::new(
            tables_v,
            joins,
            [Predicate::new(
                col(tables::TITLE, "kind_id"),
                CompareOp::Eq,
                1,
            )],
        );
        // The tree DP must agree with an independently computed star aggregation.
        let title = db.table(tables::TITLE).unwrap();
        let mut expected: u64 = 0;
        for row in 0..title.row_count() {
            if title.column("kind_id").unwrap().get_int(row) != Some(1) {
                continue;
            }
            let id = title.column("id").unwrap().get_int(row).unwrap();
            let mut product: u64 = 1;
            for fact in tables::FACTS {
                let t = db.table(fact).unwrap();
                let matches = t
                    .column("movie_id")
                    .unwrap()
                    .iter_valid()
                    .filter(|(_, v)| *v == id)
                    .count() as u64;
                product *= matches;
            }
            expected += product;
        }
        assert_eq!(exec.cardinality(&q), expected);
    }
}
