//! A small SQL parser for the conjunctive query dialect used throughout the reproduction.
//!
//! The grammar is intentionally tiny — exactly the queries the paper's model supports:
//!
//! ```text
//! query      := SELECT '*' FROM table (',' table)* [ WHERE conjunction ]
//! conjunction:= clause (AND clause)*
//! clause     := TRUE
//!             | column op column          -- join clause
//!             | column op integer         -- predicate
//! column     := identifier '.' identifier
//! op         := '<' | '<=' | '=' | '<>' | '!=' | '>=' | '>'
//! ```
//!
//! Table aliases from the schema (e.g. `t` for `title`) are accepted and resolved to full
//! table names, so workloads written in JOB-style shorthand parse as well.

use crate::ast::{JoinClause, Predicate, Query, QueryError};
use crn_db::schema::{ColumnRef, Schema};
use crn_db::value::CompareOp;

/// Parses a SQL string into a [`Query`], validating it against `schema`.
pub fn parse_query(sql: &str, schema: &Schema) -> Result<Query, QueryError> {
    let tokens = tokenize(sql);
    let mut parser = Parser {
        tokens: &tokens,
        pos: 0,
        schema,
    };
    let query = parser.parse()?;
    query.validate(schema)?;
    Ok(query)
}

fn tokenize(sql: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let flush = |current: &mut String, tokens: &mut Vec<String>| {
        if !current.is_empty() {
            tokens.push(std::mem::take(current));
        }
    };
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => flush(&mut current, &mut tokens),
            ',' | '*' | ';' | '(' | ')' => {
                flush(&mut current, &mut tokens);
                tokens.push(c.to_string());
            }
            '<' | '>' | '=' | '!' => {
                flush(&mut current, &mut tokens);
                // Two-character operators: <=, >=, <>, !=, ==
                if i + 1 < chars.len() && matches!(chars[i + 1], '=' | '>') {
                    tokens.push(format!("{}{}", c, chars[i + 1]));
                    i += 1;
                } else {
                    tokens.push(c.to_string());
                }
            }
            _ => current.push(c),
        }
        i += 1;
    }
    flush(&mut current, &mut tokens);
    tokens
}

struct Parser<'a> {
    tokens: &'a [String],
    pos: usize,
    schema: &'a Schema,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).map(|s| s.as_str())
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.tokens.get(self.pos).map(|s| s.as_str());
        self.pos += 1;
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        match self.next() {
            Some(t) if t.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(QueryError::Parse(format!(
                "expected {kw}, found {}",
                other.unwrap_or("end of input")
            ))),
        }
    }

    fn parse(&mut self) -> Result<Query, QueryError> {
        self.expect_keyword("SELECT")?;
        // Accept `*` or `COUNT ( * )`-style projections; cardinality semantics are identical
        // as long as DISTINCT is absent (paper §9, "SELECT clause").
        match self.peek() {
            Some("*") => {
                self.next();
            }
            Some(t) if t.eq_ignore_ascii_case("count") => {
                // consume COUNT ( * )
                self.next();
                for expected in ["(", "*", ")"] {
                    match self.next() {
                        Some(tok) if tok == expected => {}
                        other => {
                            return Err(QueryError::Parse(format!(
                                "malformed COUNT(*): expected {expected}, found {}",
                                other.unwrap_or("end of input")
                            )))
                        }
                    }
                }
            }
            other => {
                return Err(QueryError::Parse(format!(
                    "unsupported projection {}",
                    other.unwrap_or("end of input")
                )))
            }
        }
        self.expect_keyword("FROM")?;

        let mut tables = Vec::new();
        loop {
            let t = self
                .next()
                .ok_or_else(|| QueryError::Parse("expected table name".into()))?;
            tables.push(self.resolve_table(t)?);
            match self.peek() {
                Some(",") => {
                    self.next();
                }
                _ => break,
            }
        }

        let mut joins = Vec::new();
        let mut predicates = Vec::new();
        if let Some(t) = self.peek() {
            if t.eq_ignore_ascii_case("WHERE") {
                self.next();
                loop {
                    self.parse_clause(&mut joins, &mut predicates)?;
                    match self.peek() {
                        Some(t) if t.eq_ignore_ascii_case("AND") => {
                            self.next();
                        }
                        Some(";") => {
                            self.next();
                            break;
                        }
                        None => break,
                        Some(other) => {
                            return Err(QueryError::Parse(format!("unexpected token {other}")))
                        }
                    }
                }
            }
        }
        Ok(Query::new(tables, joins, predicates))
    }

    fn parse_clause(
        &mut self,
        joins: &mut Vec<JoinClause>,
        predicates: &mut Vec<Predicate>,
    ) -> Result<(), QueryError> {
        let first = self
            .next()
            .ok_or_else(|| QueryError::Parse("expected clause".into()))?
            .to_string();
        if first.eq_ignore_ascii_case("TRUE") {
            return Ok(());
        }
        let left = self.resolve_column(&first)?;
        let op_token = self
            .next()
            .ok_or_else(|| QueryError::Parse("expected operator".into()))?
            .to_string();
        let op = CompareOp::parse(&op_token)
            .ok_or_else(|| QueryError::Parse(format!("unknown operator {op_token}")))?;
        let rhs = self
            .next()
            .ok_or_else(|| QueryError::Parse("expected right-hand side".into()))?
            .to_string();
        if rhs.contains('.') && rhs.parse::<f64>().is_err() {
            // column-to-column comparison: only equality joins are supported.
            if op != CompareOp::Eq {
                return Err(QueryError::Parse(format!(
                    "only equi-joins are supported, found operator {op}"
                )));
            }
            let right = self.resolve_column(&rhs)?;
            joins.push(JoinClause::new(left, right));
        } else {
            let value: i64 = rhs
                .parse()
                .map_err(|_| QueryError::Parse(format!("invalid literal {rhs}")))?;
            predicates.push(Predicate::new(left, op, value));
        }
        Ok(())
    }

    /// Resolves a table name or alias to the canonical table name.
    fn resolve_table(&self, name: &str) -> Result<String, QueryError> {
        if let Some(t) = self.schema.table(name) {
            return Ok(t.name.clone());
        }
        if let Some(t) = self.schema.table_by_alias(name) {
            return Ok(t.name.clone());
        }
        Err(QueryError::UnknownTable(name.to_string()))
    }

    /// Resolves `table.column` (table may be an alias).
    fn resolve_column(&self, text: &str) -> Result<ColumnRef, QueryError> {
        let (table, column) = text
            .split_once('.')
            .ok_or_else(|| QueryError::Parse(format!("expected table.column, found {text}")))?;
        let table = self.resolve_table(table)?;
        Ok(ColumnRef::new(&table, column))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::imdb_schema;

    #[test]
    fn parses_scan_without_where() {
        let schema = imdb_schema();
        let q = parse_query("SELECT * FROM title", &schema).unwrap();
        assert_eq!(q, Query::scan("title"));
    }

    #[test]
    fn parses_where_true() {
        let schema = imdb_schema();
        let q = parse_query("SELECT * FROM title WHERE TRUE", &schema).unwrap();
        assert_eq!(q, Query::scan("title"));
    }

    #[test]
    fn parses_joins_and_predicates() {
        let schema = imdb_schema();
        let q = parse_query(
            "SELECT * FROM title, movie_companies WHERE title.id = movie_companies.movie_id AND title.production_year > 2000 AND movie_companies.company_id = 17",
            &schema,
        )
        .unwrap();
        assert_eq!(q.tables().len(), 2);
        assert_eq!(q.num_joins(), 1);
        assert_eq!(q.predicates().len(), 2);
    }

    #[test]
    fn accepts_aliases_and_count_star() {
        let schema = imdb_schema();
        let q = parse_query(
            "SELECT COUNT(*) FROM t, mc WHERE t.id = mc.movie_id AND t.kind_id = 1",
            &schema,
        )
        .unwrap();
        assert!(q.tables().contains("title"));
        assert!(q.tables().contains("movie_companies"));
        assert_eq!(q.predicates().len(), 1);
    }

    #[test]
    fn round_trips_through_to_sql() {
        let schema = imdb_schema();
        let original = parse_query(
            "SELECT * FROM title, cast_info WHERE title.id = cast_info.movie_id AND cast_info.role_id <= 2",
            &schema,
        )
        .unwrap();
        let reparsed = parse_query(&original.to_sql(), &schema).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn rejects_unknown_tables_and_columns() {
        let schema = imdb_schema();
        assert!(parse_query("SELECT * FROM nope", &schema).is_err());
        assert!(parse_query("SELECT * FROM title WHERE title.nope = 1", &schema).is_err());
    }

    #[test]
    fn rejects_non_equi_joins_and_garbage() {
        let schema = imdb_schema();
        assert!(parse_query(
            "SELECT * FROM title, movie_companies WHERE title.id < movie_companies.movie_id",
            &schema
        )
        .is_err());
        assert!(parse_query("SELECT * FROM title WHERE title.kind_id LIKE 3", &schema).is_err());
        assert!(parse_query("DELETE FROM title", &schema).is_err());
        assert!(parse_query("SELECT * FROM title WHERE title.kind_id =", &schema).is_err());
    }

    #[test]
    fn operators_with_two_characters_tokenize_correctly() {
        let schema = imdb_schema();
        for (text, expected) in [
            ("<=", CompareOp::Le),
            (">=", CompareOp::Ge),
            ("<>", CompareOp::Ne),
            ("!=", CompareOp::Ne),
        ] {
            let q = parse_query(
                &format!("SELECT * FROM title WHERE title.kind_id {text} 3"),
                &schema,
            )
            .unwrap();
            assert_eq!(q.predicates()[0].op, expected, "operator {text}");
        }
    }
}
