//! Random query generators.
//!
//! Two generators are provided:
//!
//! * [`QueryGenerator`] — the paper's three-step development-set generator (§3.1.2): generate
//!   *initial queries* following the schema join graph, perturb them into "similar but
//!   different" variants, and pair queries that share a FROM clause.
//! * [`ScaleGenerator`] — a differently-parameterized generator mimicking the MSCN training
//!   set generator, used to build the `scale` workload that tests generalization to queries
//!   "not created with the same trained queries' generator" (§6.6).

use crate::ast::{JoinClause, Predicate, Query};
use crn_db::database::Database;
use crn_db::schema::ColumnRef;
use crn_db::value::CompareOp;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of the paper's query-pair generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Random seed.
    pub seed: u64,
    /// Maximum number of joins in generated queries.
    ///
    /// The paper trains with at most two joins "to avoid a combinatorial explosion" and lets
    /// the model generalize to more joins (§3.1.2); evaluation workloads go up to five.
    pub max_joins: usize,
    /// Number of perturbed variants generated per initial query (step 2).
    pub variants_per_initial: usize,
    /// Probability that a perturbation adds a new predicate (instead of editing one).
    pub add_predicate_prob: f64,
    /// Maximum number of predicates drawn per base table in initial queries.
    ///
    /// `None` means "up to the number of non-key columns of the table", as in the paper.
    pub max_predicates_per_table: Option<usize>,
}

impl GeneratorConfig {
    /// The paper's configuration: queries with zero to two joins.
    pub fn paper(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            max_joins: 2,
            variants_per_initial: 3,
            add_predicate_prob: 0.4,
            max_predicates_per_table: None,
        }
    }

    /// A configuration generating queries with up to `max_joins` joins (used for the
    /// evaluation workloads that probe generalization to more joins).
    pub fn with_max_joins(seed: u64, max_joins: usize) -> Self {
        GeneratorConfig {
            max_joins,
            ..GeneratorConfig::paper(seed)
        }
    }
}

/// The paper's three-step query/pair generator.
pub struct QueryGenerator<'a> {
    db: &'a Database,
    config: GeneratorConfig,
    rng: StdRng,
}

impl<'a> QueryGenerator<'a> {
    /// Creates a generator over a database snapshot.
    pub fn new(db: &'a Database, config: GeneratorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        QueryGenerator { db, config, rng }
    }

    /// Step 1: generates `n` initial queries (§3.1.2).
    ///
    /// Each query chooses a connected set of tables (respecting `max_joins`), adds the join
    /// edges connecting them, and draws a uniform number of predicates per base table, each
    /// with a uniform non-key column, a uniform operator from `{<, =, >}` and a literal drawn
    /// from the column's value range in the database.
    pub fn generate_initial(&mut self, n: usize) -> Vec<Query> {
        let mut queries = Vec::with_capacity(n);
        for _ in 0..n {
            queries.push(self.generate_one_initial(None));
        }
        queries
    }

    /// Generates initial queries with an exact number of joins (used to build the evaluation
    /// workloads of Tables 2 and 5, which fix the per-join-count distribution).
    pub fn generate_initial_with_joins(&mut self, n: usize, joins: usize) -> Vec<Query> {
        let mut queries = Vec::with_capacity(n);
        for _ in 0..n {
            queries.push(self.generate_one_initial(Some(joins)));
        }
        queries
    }

    fn generate_one_initial(&mut self, forced_joins: Option<usize>) -> Query {
        let num_joins = match forced_joins {
            Some(j) => j,
            None => self.rng.gen_range(0..=self.config.max_joins),
        };
        let tables = self.choose_connected_tables(num_joins + 1);
        let joins = self.spanning_joins(&tables);
        let mut predicates = Vec::new();
        for table in &tables {
            predicates.extend(self.draw_predicates_for_table(table));
        }
        Query::new(tables, joins, predicates)
    }

    /// Chooses a connected set of `k` tables by a random walk over the join graph.
    fn choose_connected_tables(&mut self, k: usize) -> BTreeSet<String> {
        let schema = self.db.schema();
        let all: Vec<String> = schema.tables().iter().map(|t| t.name.clone()).collect();
        let mut chosen = BTreeSet::new();
        let start = all
            .choose(&mut self.rng)
            .expect("schema has tables")
            .clone();
        chosen.insert(start);
        while chosen.len() < k {
            // Collect neighbors of the current set that are not yet chosen.
            let mut frontier: Vec<String> = chosen
                .iter()
                .flat_map(|t| schema.neighbors(t))
                .filter(|t| !chosen.contains(t))
                .collect();
            frontier.sort();
            frontier.dedup();
            match frontier.choose(&mut self.rng) {
                Some(next) => {
                    chosen.insert(next.clone());
                }
                // The start table has no further joinable neighbors; restart from a table with
                // neighbors (e.g. a fact table was picked for a multi-join query).
                None => {
                    chosen.clear();
                    let with_neighbors: Vec<&String> = all
                        .iter()
                        .filter(|t| !schema.neighbors(t).is_empty())
                        .collect();
                    let start = (*with_neighbors
                        .choose(&mut self.rng)
                        .expect("join graph is non-empty"))
                    .clone();
                    chosen.insert(start);
                }
            }
        }
        chosen
    }

    /// Adds the join edges of a spanning tree over the chosen tables.
    ///
    /// The chosen table set is connected by construction, so a BFS-style growth — always
    /// attaching a table that has an edge into the already-connected component — produces
    /// exactly `|tables| - 1` join clauses.  For the star-shaped IMDb schema this yields the
    /// usual `title.id = fact.movie_id` edges.
    fn spanning_joins(&self, tables: &BTreeSet<String>) -> Vec<JoinClause> {
        let schema = self.db.schema();
        let mut joins = Vec::new();
        let mut remaining: Vec<&String> = tables.iter().collect();
        let mut connected: Vec<&String> = Vec::new();
        if let Some(first) = remaining.pop() {
            connected.push(first);
        }
        while !remaining.is_empty() {
            let attach = remaining.iter().position(|t| {
                connected
                    .iter()
                    .any(|c| schema.join_edge_between(c, t).is_some())
            });
            match attach {
                Some(idx) => {
                    let t = remaining.remove(idx);
                    let (a, b) = connected
                        .iter()
                        .find_map(|c| schema.join_edge_between(c, t))
                        .expect("edge exists by construction");
                    joins.push(JoinClause::new(a, b));
                    connected.push(t);
                }
                // Disconnected table set (cannot happen for sets produced by
                // `choose_connected_tables`); leave the remaining tables as a cross product.
                None => break,
            }
        }
        joins
    }

    fn draw_predicates_for_table(&mut self, table: &str) -> Vec<Predicate> {
        let schema = self.db.schema();
        let def = schema.table(table).expect("table exists");
        let non_key: Vec<ColumnRef> = def
            .non_key_columns()
            .map(|c| ColumnRef::new(table, &c.name))
            .collect();
        if non_key.is_empty() {
            return Vec::new();
        }
        let cap = self
            .config
            .max_predicates_per_table
            .unwrap_or(non_key.len())
            .min(non_key.len());
        let count = self.rng.gen_range(0..=cap);
        // Draw distinct columns so a query never contains contradicting duplicates on the
        // same column from step 1 (step 2 may still add them, which is intended "hardness").
        let mut columns = non_key;
        columns.shuffle(&mut self.rng);
        columns.truncate(count);
        columns
            .into_iter()
            .map(|col| {
                let op = *CompareOp::PAPER.choose(&mut self.rng).expect("non-empty");
                let value = self.draw_value(&col);
                Predicate::new(col, op, value)
            })
            .collect()
    }

    /// Draws a literal from the column's value range in the database (§3.1.2).
    fn draw_value(&mut self, column: &ColumnRef) -> i64 {
        match self.db.column_min_max(column) {
            Some((lo, hi)) if lo < hi => self.rng.gen_range(lo..=hi),
            Some((lo, _)) => lo,
            // Empty column: any literal produces an empty result; zero is as good as any.
            None => 0,
        }
    }

    /// Step 2: generates "similar but different" variants of a query (§3.1.2) by randomly
    /// changing predicate operators or values, or adding predicates.
    pub fn perturb(&mut self, query: &Query) -> Query {
        let add_new =
            query.predicates().is_empty() || self.rng.gen::<f64>() < self.config.add_predicate_prob;
        if add_new {
            // Add a fresh predicate on one of the query's tables.
            let tables: Vec<&String> = query.tables().iter().collect();
            let table = (*tables.choose(&mut self.rng).expect("query has tables")).clone();
            let mut preds = self.draw_predicates_for_table(&table);
            match preds.pop() {
                Some(p) => query.with_predicate(p),
                None => query.clone(),
            }
        } else {
            let idx = self.rng.gen_range(0..query.predicates().len());
            let original = query.predicates()[idx].clone();
            let replacement = if self.rng.gen::<bool>() {
                // Change the operator.
                let op = *CompareOp::PAPER.choose(&mut self.rng).expect("non-empty");
                Predicate::new(original.column.clone(), op, original.value)
            } else {
                // Change the value.
                let value = self.draw_value(&original.column);
                Predicate::new(original.column.clone(), original.op, value)
            };
            query.with_replaced_predicate(idx, replacement)
        }
    }

    /// Steps 1+2: generates a pool of unique queries (initial queries plus perturbed variants).
    ///
    /// This is exactly what the cardinality evaluation workloads use: "we only run the first
    /// two steps of the generator" (§6).
    pub fn generate_queries(&mut self, num_initial: usize) -> Vec<Query> {
        let initial = self.generate_initial(num_initial);
        let mut all = Vec::with_capacity(initial.len() * (1 + self.config.variants_per_initial));
        for q in initial {
            for _ in 0..self.config.variants_per_initial {
                all.push(self.perturb(&q));
            }
            all.push(q);
        }
        dedup_queries(all)
    }

    /// Step 3: pairs queries with identical FROM clauses (§3.1.2).
    ///
    /// Returns up to `num_pairs` unique `(Q1, Q2)` pairs drawn from initial queries and their
    /// perturbed variants.  Pairs are ordered, i.e. `(Q1, Q2)` and `(Q2, Q1)` are distinct
    /// samples (containment is not symmetric).
    pub fn generate_pairs(&mut self, num_initial: usize, num_pairs: usize) -> Vec<(Query, Query)> {
        let initial = self.generate_initial(num_initial);
        let mut pairs = Vec::with_capacity(num_pairs);
        let mut seen = BTreeSet::new();
        // Create a family of variants around each initial query and pair within the family;
        // this matches the paper's goal of "pairs that look similar but whose containment
        // rates vary significantly".
        'outer: loop {
            for q in &initial {
                let mut family = vec![q.clone()];
                for _ in 0..self.config.variants_per_initial {
                    family.push(self.perturb(q));
                }
                // Also occasionally perturb a perturbed query to get second-order variants.
                let second_order = self.perturb(family.last().expect("non-empty"));
                family.push(second_order);
                for _ in 0..family.len() {
                    let a = family.choose(&mut self.rng).expect("non-empty").clone();
                    let b = family.choose(&mut self.rng).expect("non-empty").clone();
                    if a == b || !a.same_from(&b) {
                        continue;
                    }
                    let key = (a.clone(), b.clone());
                    if seen.insert(key) {
                        pairs.push((a, b));
                        if pairs.len() >= num_pairs {
                            break 'outer;
                        }
                    }
                }
            }
            if initial.is_empty() {
                break;
            }
        }
        pairs
    }
}

/// Deduplicates queries while preserving first-seen order.
pub fn dedup_queries(queries: Vec<Query>) -> Vec<Query> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        if seen.insert(q.clone()) {
            out.push(q);
        }
    }
    out
}

/// Configuration for the MSCN-style `scale` workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleGeneratorConfig {
    /// Random seed.
    pub seed: u64,
    /// Maximum number of joins (the paper's `scale` workload has zero to four joins).
    pub max_joins: usize,
    /// Probability of drawing an equality operator (MSCN's generator favours equalities on
    /// dictionary-encoded columns).
    pub eq_bias: f64,
}

impl Default for ScaleGeneratorConfig {
    fn default() -> Self {
        ScaleGeneratorConfig {
            seed: 7,
            max_joins: 4,
            eq_bias: 0.5,
        }
    }
}

/// A second, differently-parameterized query generator.
///
/// Differences from [`QueryGenerator`] (mirroring how the MSCN workload generator differs from
/// the paper's): literals are drawn from *actual rows* rather than uniformly from the value
/// range, every chosen table receives at least one predicate, the operator distribution is
/// biased toward equality, and there is no perturbation step.
pub struct ScaleGenerator<'a> {
    db: &'a Database,
    config: ScaleGeneratorConfig,
    rng: StdRng,
}

impl<'a> ScaleGenerator<'a> {
    /// Creates a generator over a database snapshot.
    pub fn new(db: &'a Database, config: ScaleGeneratorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        ScaleGenerator { db, config, rng }
    }

    /// Generates `n` queries with exactly `joins` joins.
    pub fn generate_with_joins(&mut self, n: usize, joins: usize) -> Vec<Query> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.generate_one(joins));
        }
        out
    }

    /// Generates `n` queries with join counts drawn uniformly from `0..=max_joins`.
    pub fn generate(&mut self, n: usize) -> Vec<Query> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let joins = self.rng.gen_range(0..=self.config.max_joins);
            out.push(self.generate_one(joins));
        }
        out
    }

    fn generate_one(&mut self, joins: usize) -> Query {
        let schema = self.db.schema();
        // Reuse the paper generator's table/join selection machinery with a private instance;
        // the differences are confined to predicate drawing.
        let mut helper = QueryGenerator::new(
            self.db,
            GeneratorConfig {
                seed: self.rng.gen(),
                max_joins: self.config.max_joins,
                ..GeneratorConfig::paper(0)
            },
        );
        let tables = helper.choose_connected_tables(joins + 1);
        let join_clauses = helper.spanning_joins(&tables);
        let mut predicates = Vec::new();
        for table in &tables {
            let def = schema.table(table).expect("table exists");
            let non_key: Vec<ColumnRef> = def
                .non_key_columns()
                .map(|c| ColumnRef::new(table, &c.name))
                .collect();
            if non_key.is_empty() {
                continue;
            }
            // At least one predicate per table, at most three.
            let count = self.rng.gen_range(1..=non_key.len().min(3));
            let mut columns = non_key;
            columns.shuffle(&mut self.rng);
            columns.truncate(count);
            for col in columns {
                let op = if self.rng.gen::<f64>() < self.config.eq_bias {
                    CompareOp::Eq
                } else if self.rng.gen::<bool>() {
                    CompareOp::Lt
                } else {
                    CompareOp::Gt
                };
                let value = self.draw_row_value(&col);
                predicates.push(Predicate::new(col, op, value));
            }
        }
        Query::new(tables, join_clauses, predicates)
    }

    /// Draws a literal from an actual row of the column (so equality predicates are never
    /// trivially empty), falling back to the value range when the column has only NULLs.
    fn draw_row_value(&mut self, column: &ColumnRef) -> i64 {
        let table = self.db.table(&column.table).expect("table exists");
        let col = table.column(&column.column).expect("column exists");
        if table.row_count() == 0 {
            return 0;
        }
        for _ in 0..8 {
            let row = self.rng.gen_range(0..table.row_count());
            if let Some(v) = col.get_int(row) {
                return v;
            }
        }
        col.min_max().map_or(0, |(lo, _)| lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};

    fn db() -> Database {
        generate_imdb(&ImdbConfig::tiny(11))
    }

    #[test]
    fn initial_queries_are_valid_and_respect_max_joins() {
        let db = db();
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(1));
        let queries = gen.generate_initial(200);
        assert_eq!(queries.len(), 200);
        for q in &queries {
            assert!(q.validate(db.schema()).is_ok(), "invalid query {q}");
            assert!(q.num_joins() <= 2, "too many joins in {q}");
            // A query with k joins touches exactly k+1 tables (spanning tree).
            assert_eq!(q.tables().len(), q.num_joins() + 1, "query {q}");
        }
    }

    #[test]
    fn forced_join_count_is_respected() {
        let db = db();
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::with_max_joins(3, 5));
        for joins in 0..=5 {
            for q in gen.generate_initial_with_joins(20, joins) {
                assert_eq!(q.num_joins(), joins);
                assert!(q.validate(db.schema()).is_ok());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let db = db();
        let a = QueryGenerator::new(&db, GeneratorConfig::paper(5)).generate_initial(50);
        let b = QueryGenerator::new(&db, GeneratorConfig::paper(5)).generate_initial(50);
        assert_eq!(a, b);
        let c = QueryGenerator::new(&db, GeneratorConfig::paper(6)).generate_initial(50);
        assert_ne!(a, c);
    }

    #[test]
    fn perturbation_keeps_from_clause() {
        let db = db();
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(9));
        let queries = gen.generate_initial(50);
        for q in &queries {
            let v = gen.perturb(q);
            assert!(v.same_from(q), "perturbation changed FROM: {q} -> {v}");
            assert!(v.validate(db.schema()).is_ok());
        }
    }

    #[test]
    fn pairs_share_from_clause_and_are_unique() {
        let db = db();
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(13));
        let pairs = gen.generate_pairs(60, 300);
        assert_eq!(pairs.len(), 300);
        let mut seen = BTreeSet::new();
        for (a, b) in &pairs {
            assert!(a.same_from(b));
            assert_ne!(a, b);
            assert!(seen.insert((a.clone(), b.clone())), "duplicate pair");
        }
    }

    #[test]
    fn generate_queries_returns_unique_queries() {
        let db = db();
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(17));
        let queries = gen.generate_queries(100);
        let deduped = dedup_queries(queries.clone());
        assert_eq!(queries.len(), deduped.len());
        assert!(queries.len() >= 100);
    }

    #[test]
    fn predicates_only_touch_non_key_columns_of_from_tables() {
        let db = db();
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(23));
        for q in gen.generate_queries(80) {
            for p in q.predicates() {
                assert!(q.tables().contains(&p.column.table));
                let def = db.schema().column(&p.column).unwrap();
                assert!(!def.is_key, "predicate on key column {}", p.column);
            }
        }
    }

    #[test]
    fn scale_generator_produces_valid_queries_with_row_literals() {
        let db = db();
        let mut gen = ScaleGenerator::new(&db, ScaleGeneratorConfig::default());
        let queries = gen.generate(100);
        for q in &queries {
            assert!(q.validate(db.schema()).is_ok());
            assert!(q.num_joins() <= 4);
            // Every table carries at least one predicate in the scale workload.
            for t in q.tables() {
                let has_non_key = db
                    .schema()
                    .table(t)
                    .unwrap()
                    .non_key_columns()
                    .next()
                    .is_some();
                if has_non_key {
                    assert!(
                        q.predicates().iter().any(|p| &p.column.table == t),
                        "table {t} has no predicate in {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn scale_generator_with_fixed_joins() {
        let db = db();
        let mut gen = ScaleGenerator::new(&db, ScaleGeneratorConfig::default());
        for joins in 0..=4 {
            for q in gen.generate_with_joins(10, joins) {
                assert_eq!(q.num_joins(), joins);
            }
        }
    }

    #[test]
    fn dedup_preserves_first_seen_order() {
        let q1 = Query::scan("title");
        let q2 = Query::scan("cast_info");
        let out = dedup_queries(vec![q1.clone(), q2.clone(), q1.clone()]);
        assert_eq!(out, vec![q1, q2]);
    }
}
