//! `crn-query` — the query layer of the containment-rate reproduction.
//!
//! * [`ast`] — the conjunctive query AST: FROM tables (`T`), join clauses (`J`) and column
//!   predicates (`P`), plus the intersection-query construction used by the `Crd2Cnt`
//!   transformation (paper §4.1.1);
//! * [`sql`] — SQL rendering and a small parser for the supported dialect;
//! * [`generator`] — the paper's three-step development-set generator (§3.1.2) and a second,
//!   MSCN-style generator for the `scale` workload (§6.6).
//!
//! # Example
//!
//! ```
//! use crn_db::imdb::{generate_imdb, ImdbConfig};
//! use crn_query::generator::{GeneratorConfig, QueryGenerator};
//!
//! let db = generate_imdb(&ImdbConfig::tiny(1));
//! let mut gen = QueryGenerator::new(&db, GeneratorConfig::paper(1));
//! let pairs = gen.generate_pairs(10, 20);
//! assert_eq!(pairs.len(), 20);
//! for (q1, q2) in &pairs {
//!     assert!(q1.same_from(q2));
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod generator;
pub mod sql;

pub use ast::{JoinClause, Predicate, Query, QueryError};
pub use generator::{
    dedup_queries, GeneratorConfig, QueryGenerator, ScaleGenerator, ScaleGeneratorConfig,
};
pub use sql::parse_query;
