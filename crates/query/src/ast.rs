//! The query abstract syntax tree.
//!
//! The paper restricts itself to conjunctive `SELECT * FROM ... WHERE ...` queries whose WHERE
//! clause is a conjunction of equi-join clauses and column predicates (§2, §3.2.1).  A query is
//! therefore fully described by the three sets the CRN featurization uses:
//!
//! * `T` — the tables in the FROM clause,
//! * `J` — the join clauses,
//! * `P` — the column predicates `(column, op, literal)`.

use crn_db::schema::{ColumnRef, Schema};
use crn_db::value::CompareOp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An equi-join clause `left = right` between two columns of different tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JoinClause {
    /// Left join column.
    pub left: ColumnRef,
    /// Right join column.
    pub right: ColumnRef,
}

impl JoinClause {
    /// Creates a join clause, normalising operand order so that logically identical joins
    /// compare equal regardless of how they were written.
    pub fn new(a: ColumnRef, b: ColumnRef) -> Self {
        if a <= b {
            JoinClause { left: a, right: b }
        } else {
            JoinClause { left: b, right: a }
        }
    }
}

impl fmt::Display for JoinClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

/// A column predicate `column op literal`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Predicate {
    /// The column the predicate filters.
    pub column: ColumnRef,
    /// Comparison operator.
    pub op: CompareOp,
    /// Literal the column is compared against.
    pub value: i64,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(column: ColumnRef, op: CompareOp, value: i64) -> Self {
        Predicate { column, op, value }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.value)
    }
}

/// A conjunctive `SELECT * FROM ... WHERE ...` query.
///
/// All collections are kept sorted/deduplicated so that two logically identical queries are
/// structurally equal; this is what the "unique queries without repetition" requirement of the
/// training-set construction (§4.1.2) relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Query {
    tables: BTreeSet<String>,
    joins: Vec<JoinClause>,
    predicates: Vec<Predicate>,
}

impl Query {
    /// Creates a query from its three component sets.
    ///
    /// Joins and predicates are sorted and deduplicated; exact duplicate predicates carry no
    /// semantics in a conjunction.
    pub fn new(
        tables: impl IntoIterator<Item = String>,
        joins: impl IntoIterator<Item = JoinClause>,
        predicates: impl IntoIterator<Item = Predicate>,
    ) -> Self {
        let tables: BTreeSet<String> = tables.into_iter().collect();
        let mut joins: Vec<JoinClause> = joins.into_iter().collect();
        joins.sort();
        joins.dedup();
        let mut predicates: Vec<Predicate> = predicates.into_iter().collect();
        predicates.sort();
        predicates.dedup();
        Query {
            tables,
            joins,
            predicates,
        }
    }

    /// A single-table query without predicates (`SELECT * FROM table WHERE TRUE`).
    pub fn scan(table: &str) -> Self {
        Query::new([table.to_string()], [], [])
    }

    /// The set `T` of tables in the FROM clause.
    pub fn tables(&self) -> &BTreeSet<String> {
        &self.tables
    }

    /// The set `J` of join clauses.
    pub fn joins(&self) -> &[JoinClause] {
        &self.joins
    }

    /// The set `P` of column predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of join clauses (the paper reports workloads by "number of joins").
    pub fn num_joins(&self) -> usize {
        self.joins.len()
    }

    /// True if both queries have the same FROM clause.
    ///
    /// Containment rates — and the queries-pool matching step of the cardinality technique —
    /// are only defined for queries whose SELECT and FROM clauses are identical (§2).
    pub fn same_from(&self, other: &Query) -> bool {
        self.tables == other.tables
    }

    /// Builds the intersection query `Q1 ∩ Q2` used by the `Crd2Cnt` transformation (§4.1.1):
    /// same SELECT and FROM clause, WHERE clause is the conjunction of both WHERE clauses.
    ///
    /// Returns `None` if the FROM clauses differ (the intersection is not defined then).
    pub fn intersect(&self, other: &Query) -> Option<Query> {
        if !self.same_from(other) {
            return None;
        }
        Some(Query::new(
            self.tables.iter().cloned(),
            self.joins.iter().chain(other.joins.iter()).cloned(),
            self.predicates
                .iter()
                .chain(other.predicates.iter())
                .cloned(),
        ))
    }

    /// Returns a copy of the query with an additional predicate.
    pub fn with_predicate(&self, predicate: Predicate) -> Query {
        Query::new(
            self.tables.iter().cloned(),
            self.joins.iter().cloned(),
            self.predicates.iter().cloned().chain([predicate]),
        )
    }

    /// Returns a copy of the query with the predicate at `index` replaced.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn with_replaced_predicate(&self, index: usize, predicate: Predicate) -> Query {
        let mut predicates: Vec<Predicate> = self.predicates.clone();
        predicates[index] = predicate;
        Query::new(
            self.tables.iter().cloned(),
            self.joins.iter().cloned(),
            predicates,
        )
    }

    /// Returns a copy of the query without the predicate at `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn without_predicate(&self, index: usize) -> Query {
        let mut predicates: Vec<Predicate> = self.predicates.clone();
        predicates.remove(index);
        Query::new(
            self.tables.iter().cloned(),
            self.joins.iter().cloned(),
            predicates,
        )
    }

    /// Validates the query against a schema: every table must exist, every referenced column
    /// must belong to a table in the FROM clause, and join clauses must connect FROM tables.
    pub fn validate(&self, schema: &Schema) -> Result<(), QueryError> {
        if self.tables.is_empty() {
            return Err(QueryError::EmptyFrom);
        }
        for t in &self.tables {
            if schema.table(t).is_none() {
                return Err(QueryError::UnknownTable(t.clone()));
            }
        }
        let check_col = |c: &ColumnRef| -> Result<(), QueryError> {
            if !self.tables.contains(&c.table) {
                return Err(QueryError::TableNotInFrom(c.clone()));
            }
            if schema.column(c).is_none() {
                return Err(QueryError::UnknownColumn(c.clone()));
            }
            Ok(())
        };
        for j in &self.joins {
            check_col(&j.left)?;
            check_col(&j.right)?;
            if j.left.table == j.right.table {
                return Err(QueryError::SelfJoin(j.clone()));
            }
        }
        for p in &self.predicates {
            check_col(&p.column)?;
        }
        Ok(())
    }

    /// Renders the query as SQL text (`SELECT * FROM ... WHERE ...`).
    pub fn to_sql(&self) -> String {
        let tables: Vec<&str> = self.tables.iter().map(|s| s.as_str()).collect();
        let mut sql = format!("SELECT * FROM {}", tables.join(", "));
        let mut clauses: Vec<String> = Vec::new();
        clauses.extend(self.joins.iter().map(|j| j.to_string()));
        clauses.extend(self.predicates.iter().map(|p| p.to_string()));
        if clauses.is_empty() {
            sql.push_str(" WHERE TRUE");
        } else {
            sql.push_str(" WHERE ");
            sql.push_str(&clauses.join(" AND "));
        }
        sql
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sql())
    }
}

/// Errors produced when validating or parsing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The FROM clause is empty.
    EmptyFrom,
    /// A table in the FROM clause does not exist in the schema.
    UnknownTable(String),
    /// A referenced column does not exist in the schema.
    UnknownColumn(ColumnRef),
    /// A referenced column's table is not part of the FROM clause.
    TableNotInFrom(ColumnRef),
    /// A join clause connects a table with itself.
    SelfJoin(JoinClause),
    /// The SQL text could not be parsed.
    Parse(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyFrom => write!(f, "FROM clause is empty"),
            QueryError::UnknownTable(t) => write!(f, "unknown table {t}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            QueryError::TableNotInFrom(c) => {
                write!(f, "column {c} references a table missing from FROM")
            }
            QueryError::SelfJoin(j) => write!(f, "self join {j} is not supported"),
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::imdb_schema;

    fn col(t: &str, c: &str) -> ColumnRef {
        ColumnRef::new(t, c)
    }

    fn title_mc_query() -> Query {
        Query::new(
            ["title".to_string(), "movie_companies".to_string()],
            [JoinClause::new(
                col("title", "id"),
                col("movie_companies", "movie_id"),
            )],
            [Predicate::new(
                col("title", "production_year"),
                CompareOp::Gt,
                2000,
            )],
        )
    }

    #[test]
    fn join_clause_is_order_insensitive() {
        let a = JoinClause::new(col("title", "id"), col("movie_companies", "movie_id"));
        let b = JoinClause::new(col("movie_companies", "movie_id"), col("title", "id"));
        assert_eq!(a, b);
    }

    #[test]
    fn query_normalises_duplicates() {
        let p = Predicate::new(col("title", "kind_id"), CompareOp::Eq, 1);
        let q = Query::new(
            ["title".to_string()],
            [],
            [
                p.clone(),
                p.clone(),
                Predicate::new(col("title", "kind_id"), CompareOp::Eq, 2),
            ],
        );
        assert_eq!(q.predicates().len(), 2);
    }

    #[test]
    fn same_from_and_intersection() {
        let q1 = title_mc_query();
        let q2 = q1.with_predicate(Predicate::new(
            col("movie_companies", "company_id"),
            CompareOp::Lt,
            10,
        ));
        assert!(q1.same_from(&q2));
        let inter = q1.intersect(&q2).unwrap();
        assert_eq!(inter.predicates().len(), 2);
        assert_eq!(inter.joins().len(), 1);
        // Intersection with a different FROM clause is undefined.
        let q3 = Query::scan("title");
        assert!(q1.intersect(&q3).is_none());
    }

    #[test]
    fn intersection_is_commutative_and_idempotent() {
        let q1 = title_mc_query();
        let q2 = q1.with_predicate(Predicate::new(
            col("movie_companies", "company_id"),
            CompareOp::Lt,
            10,
        ));
        assert_eq!(q1.intersect(&q2), q2.intersect(&q1));
        assert_eq!(q1.intersect(&q1).unwrap(), q1);
    }

    #[test]
    fn predicate_edit_helpers() {
        let q = title_mc_query();
        let replaced =
            q.with_replaced_predicate(0, Predicate::new(col("title", "kind_id"), CompareOp::Eq, 3));
        assert_eq!(replaced.predicates().len(), 1);
        assert_eq!(replaced.predicates()[0].column.column, "kind_id");
        let removed = q.without_predicate(0);
        assert!(removed.predicates().is_empty());
        assert_eq!(q.predicates().len(), 1, "original must be unchanged");
    }

    #[test]
    fn validation_accepts_well_formed_queries() {
        let schema = imdb_schema();
        assert_eq!(title_mc_query().validate(&schema), Ok(()));
        assert_eq!(Query::scan("title").validate(&schema), Ok(()));
    }

    #[test]
    fn validation_rejects_malformed_queries() {
        let schema = imdb_schema();
        let empty = Query::new(Vec::<String>::new(), [], []);
        assert_eq!(empty.validate(&schema), Err(QueryError::EmptyFrom));

        let unknown_table = Query::scan("nope");
        assert!(matches!(
            unknown_table.validate(&schema),
            Err(QueryError::UnknownTable(_))
        ));

        let bad_col = Query::new(
            ["title".to_string()],
            [],
            [Predicate::new(col("title", "nope"), CompareOp::Eq, 1)],
        );
        assert!(matches!(
            bad_col.validate(&schema),
            Err(QueryError::UnknownColumn(_))
        ));

        let not_in_from = Query::new(
            ["title".to_string()],
            [],
            [Predicate::new(
                col("movie_companies", "company_id"),
                CompareOp::Eq,
                1,
            )],
        );
        assert!(matches!(
            not_in_from.validate(&schema),
            Err(QueryError::TableNotInFrom(_))
        ));

        let self_join = Query::new(
            ["title".to_string()],
            [JoinClause::new(col("title", "id"), col("title", "kind_id"))],
            [],
        );
        assert!(matches!(
            self_join.validate(&schema),
            Err(QueryError::SelfJoin(_))
        ));
    }

    #[test]
    fn sql_rendering() {
        let q = Query::scan("title");
        assert_eq!(q.to_sql(), "SELECT * FROM title WHERE TRUE");
        let q = title_mc_query();
        let sql = q.to_sql();
        assert!(sql.starts_with("SELECT * FROM movie_companies, title WHERE "));
        assert!(sql.contains("movie_companies.movie_id = title.id"));
        assert!(sql.contains("title.production_year > 2000"));
    }

    #[test]
    fn num_joins_counts_join_clauses() {
        assert_eq!(Query::scan("title").num_joins(), 0);
        assert_eq!(title_mc_query().num_joins(), 1);
    }
}
