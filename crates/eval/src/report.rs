//! Plain-text / Markdown rendering of experiment results.
//!
//! Every experiment produces an [`ExperimentReport`]: a title referencing the paper artifact
//! (e.g. "Table 7 / Figure 10"), a set of named rows and free-form notes.  The same structure
//! renders as an aligned console table (for the `repro` binary) and as Markdown (for
//! `EXPERIMENTS.md`).

use crate::metrics::QErrorSummary;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One rendered experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExperimentReport {
    /// Identifier, e.g. `table7`.
    pub id: String,
    /// Human-readable title, e.g. "Table 7 & Figure 10 — estimation errors on crd_test2".
    pub title: String,
    /// Column headers of the table body (not including the leading row-label column).
    pub headers: Vec<String>,
    /// Rows: a label plus one cell per header.
    pub rows: Vec<(String, Vec<String>)>,
    /// Free-form notes (what to compare against the paper, caveats, parameters used).
    pub notes: Vec<String>,
    /// Pre-rendered ASCII plots (the paper's box-plot figures), printed verbatim after the
    /// table body.
    pub plots: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            ..ExperimentReport::default()
        }
    }

    /// Uses the paper's standard q-error table header.
    pub fn with_qerror_headers(mut self) -> Self {
        self.headers = ["50th", "75th", "90th", "95th", "99th", "max", "mean"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        self
    }

    /// Sets custom headers.
    pub fn with_headers(mut self, headers: &[&str]) -> Self {
        self.headers = headers.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Adds a q-error summary row.
    pub fn push_summary(&mut self, label: impl Into<String>, summary: &QErrorSummary) {
        self.rows.push((
            label.into(),
            vec![
                format_number(summary.p50),
                format_number(summary.p75),
                format_number(summary.p90),
                format_number(summary.p95),
                format_number(summary.p99),
                format_number(summary.max),
                format_number(summary.mean),
            ],
        ));
    }

    /// Adds a row of arbitrary cells.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    /// Adds a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Attaches a pre-rendered ASCII plot (e.g. the box plots of Figures 5/6/9/10/12/13).
    pub fn push_plot(&mut self, plot: impl Into<String>) {
        self.plots.push(plot.into());
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} [{}]", self.title, self.id);
        let label_width = self
            .rows
            .iter()
            .map(|(label, _)| label.len())
            .chain([5])
            .max()
            .unwrap_or(5)
            + 2;
        let cell_width = 12usize;
        // Header line.
        let _ = write!(out, "{:label_width$}", "");
        for header in &self.headers {
            let _ = write!(out, "{header:>cell_width$}");
        }
        let _ = writeln!(out);
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label:<label_width$}");
            for cell in cells {
                let _ = write!(out, "{cell:>cell_width$}");
            }
            let _ = writeln!(out);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        for plot in &self.plots {
            let _ = writeln!(out);
            let _ = writeln!(out, "{plot}");
        }
        out
    }

    /// Renders the report as a Markdown section.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} (`{}`)\n", self.title, self.id);
        let _ = writeln!(out, "| model | {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|---|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for (label, cells) in &self.rows {
            let _ = writeln!(out, "| {} | {} |", label, cells.join(" | "));
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for note in &self.notes {
                let _ = writeln!(out, "> {note}");
            }
        }
        for plot in &self.plots {
            let _ = writeln!(out, "\n```text\n{plot}```");
        }
        out
    }
}

/// Formats a number the way the paper's tables do: two decimals for small values, no decimals
/// for large ones.
pub fn format_number(value: f64) -> String {
    if !value.is_finite() {
        return "inf".to_string();
    }
    if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 100.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_formatting_matches_paper_style() {
        assert_eq!(format_number(2.518), "2.52");
        assert_eq!(format_number(151.3), "151.3");
        assert_eq!(format_number(49327.4), "49327");
        assert_eq!(format_number(f64::INFINITY), "inf");
    }

    #[test]
    fn text_rendering_contains_all_rows_and_notes() {
        let mut report =
            ExperimentReport::new("table3", "Table 3 — containment errors").with_qerror_headers();
        let summary = QErrorSummary::from_errors(&[1.0, 2.0, 3.0, 10.0]);
        report.push_summary("CRN", &summary);
        report.push_summary("Crd2Cnt(PostgreSQL)", &summary);
        report.push_note("compare row ordering with the paper");
        let text = report.render_text();
        assert!(text.contains("Table 3"));
        assert!(text.contains("CRN"));
        assert!(text.contains("Crd2Cnt(PostgreSQL)"));
        assert!(text.contains("note: compare"));
        assert!(text.contains("mean"));
    }

    #[test]
    fn markdown_rendering_is_a_valid_table() {
        let mut report = ExperimentReport::new("t", "Title").with_headers(&["a", "b"]);
        report.push_row("row1", vec!["1".into(), "2".into()]);
        let md = report.render_markdown();
        assert!(md.contains("| model | a | b |"));
        assert!(md.contains("| row1 | 1 | 2 |"));
        assert!(md.starts_with("### Title"));
    }

    #[test]
    fn custom_rows_and_headers() {
        let mut report =
            ExperimentReport::new("table14", "Pool sweep").with_headers(&["50", "100"]);
        report.push_row("median", vec!["3.68".into(), "2.55".into()]);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.headers.len(), 2);
    }
}
