//! The experiment harness: one shared context holding the database, the trained models and the
//! queries pool, reused by every table/figure experiment.
//!
//! Building the context follows the paper's pipeline end to end:
//!
//! 1. generate the synthetic IMDb-like database (§3.1.1 substitute);
//! 2. generate training query pairs with 0–2 joins and label them by execution (§3.1.2);
//! 3. train the CRN model on the pairs (§3.2–3.3);
//! 4. derive the MSCN training set from the same pairs — for every pair, `Q1 ∩ Q2` and `Q1`
//!    with their actual cardinalities, deduplicated (§4.1.2) — and train MSCN on it;
//! 5. profile the database for the PostgreSQL baseline (§4.1.3);
//! 6. generate the queries pool, equally distributed over FROM clauses (§6.2).

use crn_core::{CrnModel, QueriesPool};
use crn_db::database::Database;
use crn_db::imdb::{generate_imdb, ImdbConfig};
use crn_estimators::{MscnModel, PostgresEstimator};
use crn_exec::{
    label_cardinalities, label_containment_pairs, CardinalitySample, ContainmentSample,
};
use crn_nn::{TrainConfig, TrainingHistory};
use crn_query::generator::{
    dedup_queries, GeneratorConfig, QueryGenerator, ScaleGenerator, ScaleGeneratorConfig,
};
use serde::{Deserialize, Serialize};

use crate::workloads::WorkloadSizes;

/// Configuration of a full experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Synthetic database parameters.
    pub db: ImdbConfig,
    /// Number of initial queries fed to the pair generator for the training corpus.
    pub training_initial_queries: usize,
    /// Number of labelled training pairs (the paper uses 100,000; scaled down by default).
    pub training_pairs: usize,
    /// Neural-network training configuration shared by CRN and MSCN.  Its `parallel` field
    /// selects the data-parallel epoch engine (`crn_nn::parallel`): worker threads and the
    /// deterministic shard/reduction mode; the `repro` binary exposes it as
    /// `--threads N [--deterministic]`, and the `THREADS` environment variable seeds the
    /// default.
    pub train: TrainConfig,
    /// Queries-pool size (the paper's default QP has 300 entries, §6.2).
    pub pool_size: usize,
    /// Maximum join count covered by the queries pool.
    pub pool_max_joins: usize,
    /// Workload sizes.
    pub workloads: WorkloadSizes,
    /// Worker threads for ground-truth labelling.
    pub threads: usize,
    /// Master seed (workloads and pools derive their own seeds from it).
    pub seed: u64,
}

impl ExperimentConfig {
    /// Minimal configuration for unit tests and smoke benches (runs in seconds).
    pub fn tiny() -> Self {
        ExperimentConfig {
            db: ImdbConfig::tiny(42),
            training_initial_queries: 40,
            training_pairs: 250,
            train: TrainConfig {
                hidden_size: 24,
                epochs: 12,
                batch_size: 64,
                patience: Some(4),
                ..TrainConfig::default()
            },
            pool_size: 60,
            pool_max_joins: 5,
            workloads: WorkloadSizes::tiny(),
            threads: 4,
            seed: 42,
        }
    }

    /// The default reproduction configuration (minutes on a laptop).
    pub fn small() -> Self {
        ExperimentConfig {
            db: ImdbConfig::small(42),
            training_initial_queries: 600,
            training_pairs: 8000,
            train: TrainConfig {
                hidden_size: 64,
                epochs: 60,
                batch_size: 128,
                patience: Some(10),
                ..TrainConfig::default()
            },
            pool_size: 300,
            pool_max_joins: 5,
            workloads: WorkloadSizes::small(),
            threads: 8,
            seed: 42,
        }
    }

    /// A configuration closer to the paper's scale (tens of minutes to hours).
    pub fn paper() -> Self {
        ExperimentConfig {
            db: ImdbConfig::medium(42),
            training_initial_queries: 4000,
            training_pairs: 40_000,
            train: TrainConfig {
                hidden_size: 256,
                epochs: 80,
                batch_size: 128,
                patience: Some(10),
                ..TrainConfig::default()
            },
            pool_size: 300,
            pool_max_joins: 5,
            workloads: WorkloadSizes::paper(),
            threads: 8,
            seed: 42,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::small()
    }
}

/// Everything the experiments need, built once and shared.
pub struct ExperimentContext {
    /// The configuration used to build the context.
    pub config: ExperimentConfig,
    /// The database snapshot.
    pub db: Database,
    /// Labelled containment training pairs (0–2 joins).
    pub containment_training: Vec<ContainmentSample>,
    /// Labelled cardinality training samples derived per §4.1.2.
    pub cardinality_training: Vec<CardinalitySample>,
    /// The trained CRN model.
    pub crn: CrnModel,
    /// CRN training history (used by Figures 3 and 4).
    pub crn_history: TrainingHistory,
    /// The trained MSCN baseline.
    pub mscn: MscnModel,
    /// MSCN training history.
    pub mscn_history: TrainingHistory,
    /// The PostgreSQL-style baseline.
    pub postgres: PostgresEstimator,
    /// The queries pool.
    pub pool: QueriesPool,
}

impl ExperimentContext {
    /// Builds the full context: generates data, labels it and trains all models.
    pub fn build(config: ExperimentConfig) -> Self {
        let db = generate_imdb(&config.db);
        let containment_training = Self::build_containment_training(&db, &config);
        let cardinality_training = Self::derive_cardinality_training(&containment_training);

        let mut crn = CrnModel::new(&db, config.train.clone());
        let crn_history = crn.fit(&containment_training);

        let mut mscn = MscnModel::new(&db, config.train.clone());
        let mscn_history = mscn.fit(&cardinality_training);

        let postgres = PostgresEstimator::analyze(&db);
        let pool = QueriesPool::generate(
            &db,
            config.pool_size,
            config.pool_max_joins,
            config.seed.wrapping_add(500),
        );

        ExperimentContext {
            config,
            db,
            containment_training,
            cardinality_training,
            crn,
            crn_history,
            mscn,
            mscn_history,
            postgres,
            pool,
        }
    }

    /// Generates and labels the containment-rate training corpus (steps 1–3 of §3.1.2).
    pub fn build_containment_training(
        db: &Database,
        config: &ExperimentConfig,
    ) -> Vec<ContainmentSample> {
        let mut generator = QueryGenerator::new(db, GeneratorConfig::paper(config.seed));
        let pairs =
            generator.generate_pairs(config.training_initial_queries, config.training_pairs);
        label_containment_pairs(db, &pairs, config.threads)
    }

    /// Derives the MSCN training corpus from the containment pairs (§4.1.2): for every pair,
    /// the intersection query and `Q1`, each with its actual cardinality, without repetition.
    pub fn derive_cardinality_training(
        containment: &[ContainmentSample],
    ) -> Vec<CardinalitySample> {
        let mut queries = Vec::with_capacity(containment.len() * 2);
        let mut cards = std::collections::BTreeMap::new();
        for sample in containment {
            if let Some(intersection) = sample.q1.intersect(&sample.q2) {
                cards
                    .entry(intersection.clone())
                    .or_insert(sample.card_intersection);
                queries.push(intersection);
            }
            cards.entry(sample.q1.clone()).or_insert(sample.card_q1);
            queries.push(sample.q1.clone());
        }
        dedup_queries(queries)
            .into_iter()
            .map(|query| {
                let cardinality = cards[&query];
                CardinalitySample { query, cardinality }
            })
            .collect()
    }

    /// Trains the sample-enhanced MSCN variant (`MSCN1000`-style) on data produced by the
    /// *scale* generator — the paper deliberately "makes the test easier" for this variant by
    /// training it with the same generator as the scale workload (§6.6).
    pub fn train_sampled_mscn(
        &self,
        samples_per_table: usize,
        training_queries: usize,
    ) -> MscnModel {
        let mut generator = ScaleGenerator::new(
            &self.db,
            ScaleGeneratorConfig {
                seed: self.config.seed.wrapping_add(700),
                max_joins: 4,
                eq_bias: 0.5,
            },
        );
        let queries = dedup_queries(generator.generate(training_queries));
        let labelled = label_cardinalities(&self.db, &queries, self.config.threads);
        let mut model =
            MscnModel::with_samples(&self.db, samples_per_table, self.config.train.clone());
        model.fit(&labelled);
        model
    }

    /// Restricts the context's pool to `size` entries (used by the Table 14 sweep).
    pub fn pool_of_size(&self, size: usize) -> QueriesPool {
        self.pool.truncated(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_estimators::CardinalityEstimator;
    use crn_query::Query;

    #[test]
    fn tiny_context_builds_and_all_models_answer() {
        let ctx = ExperimentContext::build(ExperimentConfig::tiny());
        assert!(!ctx.containment_training.is_empty());
        assert!(!ctx.cardinality_training.is_empty());
        assert!(!ctx.crn_history.is_empty());
        assert!(!ctx.mscn_history.is_empty());
        assert!(ctx.pool.len() > 10);

        let scan = Query::scan("title");
        assert!(ctx.postgres.estimate(&scan) >= 1.0);
        assert!(ctx.mscn.estimate(&scan) >= 1.0);
        let rate = ctx.crn.predict(&scan, &scan);
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn cardinality_training_is_deduplicated_and_consistent() {
        let config = ExperimentConfig::tiny();
        let db = generate_imdb(&config.db);
        let containment = ExperimentContext::build_containment_training(&db, &config);
        let derived = ExperimentContext::derive_cardinality_training(&containment);
        // No duplicate queries.
        let mut seen = std::collections::BTreeSet::new();
        for s in &derived {
            assert!(
                seen.insert(s.query.clone()),
                "duplicate query in MSCN training set"
            );
        }
        // Labels match the containment samples they came from.
        for c in containment.iter().take(20) {
            let q1_entry = derived
                .iter()
                .find(|s| s.query == c.q1)
                .expect("Q1 present");
            assert_eq!(q1_entry.cardinality, c.card_q1);
        }
        // Roughly twice as many unique queries as pairs is an upper bound.
        assert!(derived.len() <= containment.len() * 2);
    }

    #[test]
    fn pool_of_size_truncates() {
        let ctx = ExperimentContext::build(ExperimentConfig::tiny());
        let pool = ctx.pool_of_size(10);
        assert!(pool.len() <= 10);
    }
}
