//! ASCII rendering of the paper's box plots.
//!
//! Figures 5, 6, 9, 10, 12 and 13 of the paper are box-and-whisker plots of q-error
//! distributions: "the box boundaries are at the 25th/75th percentiles and the horizontal
//! lines mark the 5th/95th percentiles ... the orange horizontal line marks the 50th
//! percentile" (Figure 5's caption).  This module renders the same plots as text, on a
//! logarithmic q-error axis, so the `repro` binary can reproduce the figures (not only the
//! tables) in a terminal.

use crate::metrics::ModelErrors;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The five quantiles a box plot needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// 5th percentile (lower whisker).
    pub p5: f64,
    /// 25th percentile (lower box boundary).
    pub p25: f64,
    /// 50th percentile (median line).
    pub p50: f64,
    /// 75th percentile (upper box boundary).
    pub p75: f64,
    /// 95th percentile (upper whisker).
    pub p95: f64,
}

impl BoxStats {
    /// Computes the box statistics of a q-error list (nearest-rank percentiles).
    ///
    /// Returns `None` when the list is empty.
    pub fn from_errors(errors: &[f64]) -> Option<Self> {
        if errors.is_empty() {
            return None;
        }
        let mut sorted = errors.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));
        let percentile = |p: f64| -> f64 {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(BoxStats {
            p5: percentile(5.0),
            p25: percentile(25.0),
            p50: percentile(50.0),
            p75: percentile(75.0),
            p95: percentile(95.0),
        })
    }
}

/// Renders one box plot per model over a shared logarithmic q-error axis.
///
/// The output looks like:
///
/// ```text
/// q-error (log scale)   1        10       100      1e3      1e4
/// PostgreSQL            |----[=====M========]----------|
/// MSCN                  |-[==M===]-----|
/// ```
pub fn render_box_plots(title: &str, models: &[ModelErrors], width: usize) -> String {
    let width = width.max(30);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- {title} (box: 25th-75th pct, M: median, whiskers: 5th/95th pct; log q-error axis)"
    );

    let stats: Vec<(String, Option<BoxStats>)> = models
        .iter()
        .map(|m| (m.model.clone(), BoxStats::from_errors(&m.errors)))
        .collect();
    // Global axis bounds over all models, in log10 space; q-errors are >= 1.
    let mut max_value: f64 = 10.0;
    for (_, s) in stats.iter().flat_map(|(n, s)| s.map(|s| (n, s))) {
        max_value = max_value.max(s.p95);
    }
    let log_max = max_value.log10().ceil().max(1.0);
    let to_column = |value: f64| -> usize {
        let clamped = value.max(1.0).log10() / log_max;
        ((clamped * (width - 1) as f64).round() as usize).min(width - 1)
    };

    let label_width = stats.iter().map(|(n, _)| n.len()).max().unwrap_or(8).max(8) + 2;

    // Axis line with decade tick marks.
    let mut axis = vec![' '; width];
    let mut ticks = String::new();
    for decade in 0..=(log_max as usize) {
        let column = to_column(10f64.powi(decade as i32));
        axis[column] = '+';
        let label = if decade == 0 {
            "1".to_string()
        } else {
            format!("1e{decade}")
        };
        let _ = write!(ticks, "{label}@{column} ");
    }
    let _ = writeln!(
        out,
        "{:label_width$}{}",
        "q-error",
        axis.iter().collect::<String>()
    );
    let _ = writeln!(out, "{:label_width$}(ticks at {})", "", ticks.trim_end());

    for (name, stats) in &stats {
        let mut row = vec![' '; width];
        match stats {
            Some(s) => {
                let (w_lo, b_lo, med, b_hi, w_hi) = (
                    to_column(s.p5),
                    to_column(s.p25),
                    to_column(s.p50),
                    to_column(s.p75),
                    to_column(s.p95),
                );
                for cell in row.iter_mut().take(w_hi + 1).skip(w_lo) {
                    *cell = '-';
                }
                for cell in row.iter_mut().take(b_hi + 1).skip(b_lo) {
                    *cell = '=';
                }
                row[w_lo] = '|';
                row[w_hi] = '|';
                row[b_lo] = '[';
                row[b_hi] = ']';
                row[med] = 'M';
            }
            None => {
                let message = "(no data)";
                for (cell, ch) in row.iter_mut().zip(message.chars()) {
                    *cell = ch;
                }
            }
        }
        let _ = writeln!(
            out,
            "{name:<label_width$}{}",
            row.iter().collect::<String>()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric_errors(ratio: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| ratio.powi(i as i32 % 7)).collect()
    }

    #[test]
    fn box_stats_are_ordered() {
        let errors = geometric_errors(3.0, 200);
        let stats = BoxStats::from_errors(&errors).unwrap();
        assert!(stats.p5 <= stats.p25);
        assert!(stats.p25 <= stats.p50);
        assert!(stats.p50 <= stats.p75);
        assert!(stats.p75 <= stats.p95);
        assert!(BoxStats::from_errors(&[]).is_none());
        let single = BoxStats::from_errors(&[4.0]).unwrap();
        assert_eq!(single.p5, 4.0);
        assert_eq!(single.p95, 4.0);
    }

    #[test]
    fn rendering_contains_every_model_and_markers() {
        let models = vec![
            ModelErrors::new("PostgreSQL", geometric_errors(10.0, 100)),
            ModelErrors::new("CRN", geometric_errors(2.0, 100)),
            ModelErrors::new("Empty", vec![]),
        ];
        let plot = render_box_plots("Figure 5", &models, 60);
        assert!(plot.contains("PostgreSQL"));
        assert!(plot.contains("CRN"));
        assert!(plot.contains("(no data)"));
        assert!(plot.contains('M'));
        assert!(plot.contains('['));
        assert!(plot.contains("Figure 5"));
        // Every non-header line is bounded by the label width plus the plot width.
        for line in plot.lines().skip(1) {
            assert!(line.len() <= 12 + 2 + 120, "line too long: {line}");
        }
    }

    #[test]
    fn wider_distributions_produce_wider_boxes() {
        let narrow = ModelErrors::new("narrow", geometric_errors(1.5, 200));
        let wide = ModelErrors::new("wide", geometric_errors(20.0, 200));
        let plot = render_box_plots("cmp", &[narrow, wide], 80);
        let narrow_line = plot.lines().find(|l| l.starts_with("narrow")).unwrap();
        let wide_line = plot.lines().find(|l| l.starts_with("wide")).unwrap();
        let box_width = |line: &str| line.matches('=').count() + line.matches('[').count();
        assert!(box_width(wide_line) > box_width(narrow_line));
    }
}
