//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all [--preset tiny|small|paper] [--threads N] [--deterministic] [--markdown <path>]
//! repro <experiment-id> [<experiment-id> ...] [--preset ...]
//! repro serve [--preset ...] [--shards N] [--threads N] [--queries N] [--batch N]
//!             [--async] [--batch-window-us N] [--queue-depth N] [--callers N]
//!             [--class-window-us N] [--class-weights A:B] [--cache-entries N]
//!             [--online] [--refresh-interval N] [--probe-frac F] [--gate-margin F]
//!             [--deadline-us N] [--batch-deadline-us N] [--restart-budget N]
//!             [--checkpoint-dir D] [--checkpoint-every N] [--chaos <plan>]
//!             [--top-k K] [--pool-cap N] [--pool-scale a,b,...]
//!             [--q-error-budget F] [--bench-json <path>]
//!             [--cluster N] [--worker-timeout-us N] [--compact-every N]
//! repro cluster-worker [--threads N]
//! repro list
//! ```
//!
//! `--threads N` runs model training (CRN and MSCN epochs) on the data-parallel shard pool
//! with `N` worker threads, and uses the same count for ground-truth labelling;
//! `--deterministic` selects the canonical shard/reduction order so the trained models are
//! bit-identical for every `N` (see `crn_nn::parallel`).
//!
//! `repro serve` drives the serving stack instead of an experiment: the queries pool is
//! sharded `--shards` ways behind an immutable snapshot and served on the persistent
//! `--threads`-worker pool — synchronously in `--batch`-sized `serve` calls, or through
//! the async request-queue runtime (`--async`) with a closed-loop `--callers`-thread load
//! generator, a `--batch-window-us` cross-call batching window and a `--queue-depth`
//! admission bound.  In both modes the first batch is verified bit-for-bit against
//! sequential serving and any violation exits non-zero (`repro serve --help` has the
//! parameter-selection guidance).
//!
//! Experiment ids are the ones listed in DESIGN.md (`table2`–`table15`, `fig3`–`fig13`,
//! `ablation_crn`, `ablation_final_fn`).  The output is the same set of rows/series the paper
//! reports; absolute numbers differ (different database instance and scale), the *shape* is
//! what should be compared.

use crn_eval::{
    run_experiment, run_serve_demo, ExperimentConfig, ExperimentContext, ServeDemoConfig,
    ALL_EXPERIMENTS,
};
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if args[0] == "serve" {
        run_serve(&args[1..]);
        return;
    }
    if args[0] == "cluster-worker" {
        run_cluster_worker(&args[1..]);
        return;
    }

    let mut experiment_ids: Vec<String> = Vec::new();
    let mut preset = "small".to_string();
    let mut markdown_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut deterministic = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--preset" => {
                preset = iter.next().unwrap_or_else(|| {
                    eprintln!("--preset requires a value (tiny|small|paper)");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--threads requires a worker count");
                    std::process::exit(2);
                });
                threads = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("--threads requires a positive integer, got {value}");
                    std::process::exit(2);
                }));
            }
            "--deterministic" => deterministic = true,
            "--markdown" => {
                markdown_path = Some(iter.next().unwrap_or_else(|| {
                    eprintln!("--markdown requires a path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            "list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            other => experiment_ids.push(other.to_string()),
        }
    }

    let mut config = match preset.as_str() {
        "tiny" => ExperimentConfig::tiny(),
        "small" => ExperimentConfig::small(),
        "paper" => ExperimentConfig::paper(),
        other => {
            eprintln!("unknown preset {other}; expected tiny, small or paper");
            std::process::exit(2);
        }
    };
    if let Some(threads) = threads {
        config.train.parallel.threads = threads.max(1);
        // Ground-truth labelling shares the worker budget.
        config.threads = threads.max(1);
    }
    if deterministic {
        config.train.parallel.deterministic = true;
    }

    let ids: Vec<String> = if experiment_ids.iter().any(|id| id == "all") {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        experiment_ids
    };
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(&id.as_str())
            && !matches!(
                id.as_str(),
                "fig5" | "fig6" | "fig9" | "fig10" | "fig11" | "fig12"
            )
        {
            eprintln!("unknown experiment id: {id} (use `repro list`)");
            std::process::exit(2);
        }
    }

    eprintln!("[repro] building experiment context (preset: {preset}) ...");
    let started = Instant::now();
    let ctx = ExperimentContext::build(config);
    eprintln!(
        "[repro] context ready in {:.1}s: {} training pairs, {} MSCN samples, pool of {} queries",
        started.elapsed().as_secs_f64(),
        ctx.containment_training.len(),
        ctx.cardinality_training.len(),
        ctx.pool.len()
    );

    let mut markdown = String::new();
    for id in &ids {
        let experiment_start = Instant::now();
        match run_experiment(&ctx, id) {
            Some(report) => {
                println!("{}", report.render_text());
                eprintln!(
                    "[repro] {id} finished in {:.1}s",
                    experiment_start.elapsed().as_secs_f64()
                );
                markdown.push_str(&report.render_markdown());
                markdown.push('\n');
            }
            None => eprintln!("[repro] skipping unknown experiment {id}"),
        }
    }

    if let Some(path) = markdown_path {
        let mut file =
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        file.write_all(markdown.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[repro] wrote markdown report to {path}");
    }
    eprintln!("[repro] done in {:.1}s", started.elapsed().as_secs_f64());
}

/// Parses and runs `repro serve ...` (see the module docs for the flags).
fn run_serve(args: &[String]) {
    let mut preset = "tiny".to_string();
    let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
    let mut iter = args.iter();
    let flag_value = |iter: &mut std::slice::Iter<'_, String>, flag: &str| -> String {
        iter.next().cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--preset" => preset = flag_value(&mut iter, "--preset"),
            "--shards" => {
                config.shards = parse_count(&flag_value(&mut iter, "--shards"), "--shards")
            }
            "--threads" => {
                config.threads = parse_count(&flag_value(&mut iter, "--threads"), "--threads")
            }
            "--queries" => {
                config.queries = parse_count(&flag_value(&mut iter, "--queries"), "--queries")
            }
            "--batch" => config.batch = parse_count(&flag_value(&mut iter, "--batch"), "--batch"),
            "--async" => config.async_mode = true,
            "--online" => config.online = true,
            "--refresh-interval" => {
                // Zero is legitimate: it disables model refresh (pool maintenance still
                // runs), the bit-parity mode of the acceptance criterion.
                let value = flag_value(&mut iter, "--refresh-interval");
                config.refresh_interval = value.parse().unwrap_or_else(|_| {
                    eprintln!("--refresh-interval requires a non-negative integer, got {value}");
                    std::process::exit(2);
                });
            }
            "--probe-frac" => {
                let value = flag_value(&mut iter, "--probe-frac");
                config.probe_fraction = match value.parse::<f64>() {
                    Ok(parsed) if (0.0..=0.9).contains(&parsed) => parsed,
                    _ => {
                        eprintln!("--probe-frac requires a fraction in [0, 0.9], got {value}");
                        std::process::exit(2);
                    }
                };
            }
            "--batch-window-us" => {
                // Zero is legitimate: it means "serve whatever has accumulated".
                let value = flag_value(&mut iter, "--batch-window-us");
                config.batch_window_us = value.parse().unwrap_or_else(|_| {
                    eprintln!("--batch-window-us requires a non-negative integer, got {value}");
                    std::process::exit(2);
                });
            }
            "--queue-depth" => {
                config.queue_depth =
                    parse_count(&flag_value(&mut iter, "--queue-depth"), "--queue-depth")
            }
            "--callers" => {
                config.callers = parse_count(&flag_value(&mut iter, "--callers"), "--callers")
            }
            "--bench-json" => {
                config.bench_json = Some(flag_value(&mut iter, "--bench-json"));
            }
            "--gate-margin" => {
                let value = flag_value(&mut iter, "--gate-margin");
                config.gate_margin = match value.parse::<f64>() {
                    Ok(parsed) if (0.0..=0.9).contains(&parsed) => parsed,
                    _ => {
                        eprintln!("--gate-margin requires a fraction in [0, 0.9], got {value}");
                        std::process::exit(2);
                    }
                };
            }
            "--deadline-us" => {
                config.deadline_us = Some(parse_count(
                    &flag_value(&mut iter, "--deadline-us"),
                    "--deadline-us",
                ) as u64);
            }
            "--checkpoint-dir" => {
                config.checkpoint_dir = Some(flag_value(&mut iter, "--checkpoint-dir"));
            }
            "--checkpoint-every" => {
                // Zero is legitimate: the directory is still restored from (and the
                // crash-restore demo writes explicitly), cadence writes are just off.
                let value = flag_value(&mut iter, "--checkpoint-every");
                config.checkpoint_every = value.parse().unwrap_or_else(|_| {
                    eprintln!("--checkpoint-every requires a non-negative integer, got {value}");
                    std::process::exit(2);
                });
            }
            "--restart-budget" => {
                // Zero is legitimate: the first panic of a lane degrades it.
                let value = flag_value(&mut iter, "--restart-budget");
                config.restart_budget = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("--restart-budget requires a non-negative integer, got {value}");
                    std::process::exit(2);
                }));
            }
            "--chaos" => {
                config.chaos = Some(flag_value(&mut iter, "--chaos"));
            }
            "--class-window-us" => {
                // Zero is legitimate: the batch class then inherits the base
                // --batch-window-us window (classes still admit separately).
                let value = flag_value(&mut iter, "--class-window-us");
                config.class_window_us = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("--class-window-us requires a non-negative integer, got {value}");
                    std::process::exit(2);
                }));
            }
            "--class-weights" => {
                let value = flag_value(&mut iter, "--class-weights");
                let parsed = value.split_once(':').and_then(|(interactive, batch)| {
                    Some((
                        interactive.trim().parse::<u32>().ok()?,
                        batch.trim().parse::<u32>().ok()?,
                    ))
                });
                config.class_weights = match parsed {
                    Some(weights) if weights != (0, 0) => Some(weights),
                    _ => {
                        eprintln!(
                            "--class-weights requires INTERACTIVE:BATCH with at least one \
                             non-zero weight (e.g. 3:1), got {value}"
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--cache-entries" => {
                // Zero is legitimate: it disables the estimate cache, restoring the
                // cache-free serving path exactly.
                let value = flag_value(&mut iter, "--cache-entries");
                config.cache_entries = value.parse().unwrap_or_else(|_| {
                    eprintln!("--cache-entries requires a non-negative integer, got {value}");
                    std::process::exit(2);
                });
            }
            "--top-k" => {
                // Zero is legitimate: it keeps the full-pool path, bit-identical to
                // the pre-pool-tier serving semantics.
                let value = flag_value(&mut iter, "--top-k");
                config.top_k = value.parse().unwrap_or_else(|_| {
                    eprintln!("--top-k requires a non-negative integer, got {value}");
                    std::process::exit(2);
                });
            }
            "--pool-cap" => {
                // Zero is legitimate: it means unbounded (no eviction on insert).
                let value = flag_value(&mut iter, "--pool-cap");
                config.pool_cap = value.parse().unwrap_or_else(|_| {
                    eprintln!("--pool-cap requires a non-negative integer, got {value}");
                    std::process::exit(2);
                });
            }
            "--q-error-budget" => {
                let value = flag_value(&mut iter, "--q-error-budget");
                config.q_error_budget = match value.parse::<f64>() {
                    Ok(parsed) if parsed >= 1.0 => parsed,
                    _ => {
                        eprintln!("--q-error-budget requires a factor >= 1.0, got {value}");
                        std::process::exit(2);
                    }
                };
            }
            "--pool-scale" => {
                let value = flag_value(&mut iter, "--pool-scale");
                let sizes: Option<Vec<usize>> = value
                    .split(',')
                    .map(|size| size.trim().parse::<usize>().ok().filter(|&s| s >= 1))
                    .collect();
                config.pool_scale = match sizes {
                    Some(sizes) if !sizes.is_empty() => Some(sizes),
                    _ => {
                        eprintln!(
                            "--pool-scale requires comma-separated positive pool sizes \
                             (e.g. 100000,1000000), got {value}"
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--batch-deadline-us" => {
                config.batch_deadline_us = Some(parse_count(
                    &flag_value(&mut iter, "--batch-deadline-us"),
                    "--batch-deadline-us",
                ) as u64);
            }
            "--metrics-jsonl" => {
                config.metrics_jsonl = Some(flag_value(&mut iter, "--metrics-jsonl"));
            }
            "--metrics-interval-ms" => {
                config.metrics_interval_ms = parse_count(
                    &flag_value(&mut iter, "--metrics-interval-ms"),
                    "--metrics-interval-ms",
                ) as u64;
            }
            "--cluster" => {
                config.cluster = parse_count(&flag_value(&mut iter, "--cluster"), "--cluster");
            }
            "--worker-timeout-us" => {
                config.worker_timeout_us = parse_count(
                    &flag_value(&mut iter, "--worker-timeout-us"),
                    "--worker-timeout-us",
                ) as u64;
            }
            "--compact-every" => {
                // Zero is legitimate: it disables periodic compaction (the default).
                let value = flag_value(&mut iter, "--compact-every");
                config.compact_every = value.parse().unwrap_or_else(|_| {
                    eprintln!("--compact-every requires a non-negative integer, got {value}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                print_serve_usage();
                return;
            }
            other => {
                eprintln!("unknown serve flag {other}");
                std::process::exit(2);
            }
        }
    }
    config.experiment = match preset.as_str() {
        "tiny" => ExperimentConfig::tiny(),
        "small" => ExperimentConfig::small(),
        "paper" => ExperimentConfig::paper(),
        other => {
            eprintln!("unknown preset {other}; expected tiny, small or paper");
            std::process::exit(2);
        }
    };
    config.preset_label = preset;
    match run_serve_demo(&config) {
        Ok(report) => println!("{report}"),
        Err(violation) => {
            // The bit-parity tripwire: a drifted serving path must fail the CI smoke
            // loudly, not scroll past in a log.
            eprintln!("[serve] FATAL: {violation}");
            std::process::exit(1);
        }
    }
}

/// `repro cluster-worker [--threads N]` — the worker half of `repro serve --cluster`.
///
/// Binds an ephemeral loopback listener, announces it on stdout as
/// `CLUSTER_WORKER_PORT=<port>` (the coordinator parses exactly this line), then blocks
/// in the worker serve loop until the coordinator sends Shutdown.  Not meant to be run
/// by hand, but harmless if it is: with no coordinator it just waits for a connection.
fn run_cluster_worker(args: &[String]) {
    let mut threads = 1usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                let value = iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("--threads requires a value");
                    std::process::exit(2);
                });
                threads = parse_count(&value, "--threads");
            }
            other => {
                eprintln!("unknown cluster-worker flag {other}");
                std::process::exit(2);
            }
        }
    }
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| {
        eprintln!("[cluster-worker] cannot bind a loopback listener: {e}");
        std::process::exit(1);
    });
    let port = listener
        .local_addr()
        .expect("a bound listener has an address")
        .port();
    println!("CLUSTER_WORKER_PORT={port}");
    std::io::stdout().flush().expect("announce the port");
    if let Err(e) = crn_cluster::run_worker(listener, threads) {
        eprintln!("[cluster-worker] serve loop failed: {e}");
        std::process::exit(1);
    }
}

/// `repro serve --help`: flags plus the parameter-selection guidance.
fn print_serve_usage() {
    eprintln!(
        "usage: repro serve [--preset tiny|small|paper] [--shards N] [--threads N] \
         [--queries N] [--batch N]\n\
         \x20                  [--async] [--batch-window-us N] [--queue-depth N] \
         [--callers N] [--bench-json <path>]\n\
         \x20                  [--class-window-us N] [--class-weights A:B] \
         [--cache-entries N]\n\
         \x20                  [--online] [--refresh-interval N] [--probe-frac F] \
         [--gate-margin F]\n\
         \x20                  [--deadline-us N] [--batch-deadline-us N] \
         [--restart-budget N] [--checkpoint-dir D] [--checkpoint-every N]\n\
         \x20                  [--chaos <plan>|crash-restore] [--top-k K] \
         [--pool-cap N] [--pool-scale a,b,...] [--q-error-budget F]\n\
         \x20                  [--metrics-jsonl <path>] [--metrics-interval-ms N]\n\
         \x20                  [--cluster N] [--worker-timeout-us N] \
         [--compact-every N]\n\
         \n\
         Serves a synthetic workload through the sharded estimator service — \
         synchronously in --batch-sized\n\
         serve calls, or with --async through the request-queue runtime (bounded \
         admission, cross-call\n\
         batching windows, closed-loop --callers load generator, online pool \
         maintenance).  The first batch\n\
         is always verified bit-for-bit against sequential serving; a violation exits \
         non-zero.\n\
         \n\
         --online runs the continual-learning demo on top: after a baseline segment \
         the workload shifts\n\
         to an equality-biased scale distribution the model never trained on; served \
         truths flow back\n\
         through the maintenance lane, a sliding-window drift detector triggers \
         warm-start fine-tunes,\n\
         and candidates hot-swap into serving only after beating the live model's \
         median q-error on a\n\
         held-out probe set (the validation gate; violations, or an applied refresh \
         that fails to beat\n\
         the frozen model on the shifted segment, exit non-zero).  Emits \
         BENCH_online.json via --bench-json.\n\
         \n\
         Choosing --refresh-interval: feedback records between refresh opportunities. \
         Small intervals\n\
         react fast but fine-tune on thin evidence (more gate rejections); one to two \
         drift windows'\n\
         worth (~16-64 records) is the sweet spot.  0 disables model refresh — \
         serving is then\n\
         bit-identical to --async (pool maintenance still runs).\n\
         \n\
         Choosing --probe-frac: the held-out share of feedback funding the validation \
         gate.  0.2-0.3\n\
         buys a trustworthy gate at modest training-data cost; below ~0.1 the gate \
         gets noisy and a\n\
         bad candidate can slip through on luck.\n\
         \n\
         Choosing --shards: shards bound the per-work-item anchor batch.  Use 1 on a \
         single core (anything\n\
         more is pure merge overhead); on multi-core hosts pick \
         min(FROM-clause bucket size / ~32, worker\n\
         threads) — more shards than threads only adds merge overhead, fewer starves \
         the workers when a\n\
         batch collapses into few FROM-clause groups.\n\
         \n\
         Choosing --threads: the persistent worker pool serving every batch.  Physical \
         cores (or slightly\n\
         below) for a dedicated serving host; 1 reproduces the sequential path with \
         zero thread overhead.\n\
         \n\
         Choosing --batch-window-us (async): the tail-latency budget you are willing to \
         spend on batching.\n\
         0 fuses only what has already queued (lowest latency, least fusion); ~100-500us \
         fuses bursts of\n\
         concurrent callers (the sweet spot at >=4 callers); multi-ms windows maximize \
         fusion for\n\
         throughput-bound replay.  Estimates are bit-identical at every setting — the \
         window only moves\n\
         the latency/throughput trade-off.\n\
         \n\
         Choosing --queue-depth (async): the load-shedding bound.  ~2x (callers x \
         batch) absorbs bursts\n\
         without unbounded queueing; depth 1 degenerates to one-request batches \
         (parity-testing floor).\n\
         Per-caller fairness quotas are queue-depth / callers.\n\
         \n\
         Choosing --class-window-us (async): the Batch-class batching window.  Setting \
         it (or\n\
         --class-weights) switches the load generator to mixed traffic — odd-indexed \
         callers register\n\
         Batch-class — and each class closes batches on its own window: keep the base \
         --batch-window-us\n\
         at the interactive tail budget (~100-500us) and give the batch class \
         multi-ms (2000-20000)\n\
         so replay/backfill traffic fuses maximally without ever holding an \
         interactive request; the\n\
         scheduler always closes the most urgent class first.  0 makes the batch \
         class inherit the base\n\
         window (admission still per class).  Estimates stay bit-identical at every \
         setting.\n\
         \n\
         Choosing --class-weights (async): INTERACTIVE:BATCH shares of the queue \
         depth, the\n\
         anti-starvation bound — a class may only occupy ceil(depth x weight / total) \
         slots, so a batch\n\
         flood can never fill the queue against interactive traffic.  3:1 suits \
         latency-first serving;\n\
         omit the flag to let every class use the whole queue (the single-class \
         behavior).  Every class\n\
         always keeps at least one admissible slot.\n\
         \n\
         Choosing --cache-entries (async): the cross-window estimate cache, keyed on \
         (canonical query\n\
         hash, pool version, model version) so maintenance upserts and model \
         hot-swaps invalidate\n\
         exactly — hits are bit-identical to recomputing, only the compute is \
         skipped.  Size it to\n\
         2-4x the hot working set of distinct queries; repeated-query workloads then \
         serve mostly at\n\
         memory latency.  0 disables the cache and restores the cache-free path \
         exactly.  With the\n\
         cache on, the demo drives the workload twice so the hit path is measured \
         (per-class p50/p99\n\
         and hit rates land in BENCH_serving.json).\n\
         \n\
         Choosing --deadline-us (async): the per-request staleness bound.  A queued \
         request past its\n\
         deadline is shed with an Expired resolution instead of executing — set it to \
         the point where a\n\
         late estimate is worthless to the optimizer (a few ms for interactive \
         planning); off by default\n\
         because expiry under overload is load-shedding policy, not a safety \
         requirement.\n\
         \n\
         Choosing --batch-deadline-us (async): a Batch-class override of --deadline-us. \
         Batch traffic\n\
         rides multi-ms batching windows by design, so a tight interactive deadline \
         would shed it\n\
         spuriously — give batch ~10-50x the interactive deadline (or leave unset to \
         inherit\n\
         --deadline-us for every class).\n\
         \n\
         Choosing --top-k: per-FROM-bucket anchor selection ahead of the containment \
         heads.  0 (default)\n\
         scores nothing and runs model inference over the whole bucket — bit-identical \
         to pre-pool-tier\n\
         serving.  K>0 ranks the bucket by cheap featurization-space similarity \
         (shared joins and\n\
         predicates) and only the K most similar anchors reach the model: per-query \
         cost drops from\n\
         O(bucket) to O(K) inferences + O(bucket) integer scoring.  16-64 holds \
         median q-error at\n\
         million-entry scale (the --pool-scale gates verify this); below ~8 the \
         median over anchors\n\
         thins and quality degrades.  Ranking is deterministic at every shard/thread \
         count.\n\
         \n\
         Choosing --pool-cap: the bounded-capacity pool tier.  Maintenance inserts \
         past the cap evict\n\
         the lowest-retention-weight anchors (weights track feedback q-errors: \
         well-calibrated anchors\n\
         stay, persistently-wrong ones go).  Size it to the memory budget divided by \
         ~entry size;\n\
         0 = unbounded (the default, exactly the pre-cap behavior).\n\
         \n\
         Choosing --pool-scale: the production-scale latency sweep.  Comma-separated \
         pool sizes\n\
         (e.g. 100000,1000000) are synthesized from the preset's pool by literal \
         perturbation; each size\n\
         serves the workload through the full-pool arm and the top-K arm \
         (K = --top-k, default 32),\n\
         recording per-size p50/p99 curves and median q-errors into --bench-json.  \
         The run exits\n\
         non-zero unless (a) the top-K arm's median q-error stays within \
         --q-error-budget of the full\n\
         arm at every size, (b) top-K p50 grows sublinearly across sizes, and (c) \
         top-K beats the full\n\
         arm at the largest size.\n\
         \n\
         Choosing --q-error-budget: the estimator-quality parity bound of the sweep, \
         as a factor\n\
         (1.1 = top-K may cost at most 10% median-q-error headroom).  Tighten toward \
         1.0 to demand\n\
         near-exactness (larger K needed); loosen above ~1.5 only for latency-first \
         deployments.\n\
         \n\
         Choosing --restart-budget: panics per lane per minute the supervisor absorbs \
         by restarting\n\
         before declaring the lane sick and degrading (scheduler -> synchronous \
         serving on the caller\n\
         thread, maintenance -> loud shedding).  The default 3 rides out isolated \
         poison queries; 0 turns\n\
         every panic into an immediate degrade (strictest CI setting).\n\
         \n\
         Choosing --checkpoint-every: applied maintenance records between checkpoint \
         writes to\n\
         --checkpoint-dir (atomic temp-file + rename, checksum-verified manifest; \
         restored on startup).\n\
         The cadence bounds replayable loss: ~the records you can afford to re-learn \
         after a crash.\n\
         Writes serialize the full pool + model, so cadences below ~64 records tax the \
         maintenance lane\n\
         on busy feeds; 0 disables cadence writes.\n\
         \n\
         Choosing --chaos: a deterministic fault plan, either 'crash-restore' (kill \
         the process state at\n\
         the workload midpoint, restore from the checkpoint, require bit-identical \
         estimates) or\n\
         comma-separated site:trigger specs over sites batch-panic, scheduler-kill, \
         maint-panic,\n\
         maint-kill, checkpoint-fail, refresh-panic — e.g. \
         'batch-panic:2,maint-kill,checkpoint-fail:every2'\n\
         (bare site = first occurrence, :N = Nth, :everyN = every Nth).  Occurrence \
         counts, not timers:\n\
         the same plan always kills the same batch.  The run fails unless every \
         admitted ticket resolves;\n\
         BENCH_chaos.json (via --bench-json) carries the full resolution accounting.\n\
         \n\
         Choosing --metrics-jsonl: live observability export.  The serve demos always \
         run with the\n\
         crn-obs layer enabled (per-request spans, per-class log2 latency histograms, \
         a bounded event\n\
         journal of batch closes / restarts / gate decisions / checkpoints / \
         evictions); this flag\n\
         streams periodic JSONL snapshots of every counter, gauge and histogram — \
         plus journal events\n\
         as they happen — to <path>, and prints the end-of-run metrics table.  Each \
         line is one JSON\n\
         object (kind: snapshot|event), safe to tail.  Omit the flag and nothing is \
         exported.\n\
         \n\
         Choosing --metrics-interval-ms: the snapshot cadence of --metrics-jsonl \
         (default 50).  Tens of\n\
         ms suits short demo runs; hundreds of ms suits long soaks where per-snapshot \
         volume matters.\n\
         The emitter is a single background thread reading lock-light shards — \
         cadence does not perturb\n\
         the serving path.\n\
         \n\
         Choosing --cluster: cross-process distributed serving.  N worker processes \
         are forked (this\n\
         binary in cluster-worker mode), each owning the pool shards s with \
         s mod N == its fleet index;\n\
         the coordinator scatters each batch's FROM-clause groups to the owning \
         workers, gathers the\n\
         per-shard entry lists and merges them in canonical shard order — estimates \
         are bit-identical\n\
         to single-process serving at every worker count, and the first batch is \
         verified so at startup\n\
         (non-zero exit on violation).  Use --shards >= N so every worker owns at \
         least one shard; N\n\
         up to the physical cores left after --threads per worker.  A lost worker \
         degrades only its own\n\
         shards (loudly: counted, journaled, Degraded-tagged) and is re-dialed with \
         bounded backoff.\n\
         \n\
         Choosing --worker-timeout-us (cluster): the per-worker gather budget.  A \
         worker that misses it\n\
         is declared lost and its queries degrade to the coordinator-local fallback \
         for that batch —\n\
         never a hang, never a silently-wrong merge.  Set it well above the p99 \
         single-process batch\n\
         latency (10-50x; the default 2s suits CI-sized demos); too tight turns \
         ordinary scheduling\n\
         jitter into spurious degradation.\n\
         \n\
         Choosing --compact-every: applied maintenance records between pool \
         compactions on the\n\
         maintenance lane.  Compaction rebuilds eviction-fragmented shards off the \
         critical path (the\n\
         serving snapshot swaps atomically); with --cluster the compacted shards are \
         re-shipped to their\n\
         owners.  ~4-16x the eviction churn per window keeps fragmentation bounded \
         without busywork;\n\
         0 (default) disables periodic compaction."
    );
}

fn parse_count(value: &str, flag: &str) -> usize {
    match value.parse::<usize>() {
        Ok(parsed) if parsed >= 1 => parsed,
        _ => {
            eprintln!("{flag} requires a positive integer, got {value}");
            std::process::exit(2);
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: repro <all|list|experiment-id ...> [--preset tiny|small|paper] \
         [--threads N] [--deterministic] [--markdown <path>]"
    );
    eprintln!(
        "       repro serve [--preset tiny|small|paper] [--shards N] [--threads N] \
         [--queries N] [--batch N] [--async] [--batch-window-us N] [--queue-depth N] \
         [--callers N] [--class-window-us N] [--class-weights A:B] [--cache-entries N] \
         [--online] [--refresh-interval N] [--probe-frac F] \
         [--gate-margin F] [--deadline-us N] [--batch-deadline-us N] \
         [--restart-budget N] [--checkpoint-dir D] \
         [--checkpoint-every N] [--chaos <plan>] [--top-k K] [--pool-cap N] \
         [--pool-scale a,b,...] [--q-error-budget F] [--bench-json <path>] \
         [--metrics-jsonl <path>] [--metrics-interval-ms N] [--cluster N] \
         [--worker-timeout-us N] [--compact-every N]  \
         (see `repro serve --help`)"
    );
    eprintln!("experiment ids: {}", ALL_EXPERIMENTS.join(", "));
}
