//! Generalization and improvement experiments (paper §6.6 and §7):
//! Table 10 / Figures 12–13, Tables 11–13.

use crate::experiments::cardinality::{cnt2crd_crn, evaluate_headline_models};
use crate::experiments::common::{cardinality_ground_truth, evaluate_cardinality_model};
use crate::harness::ExperimentContext;
use crate::plot::render_box_plots;
use crate::report::ExperimentReport;
use crate::workloads::{crd_test2, scale};
use crn_core::ImprovedEstimator;
use crn_estimators::{CardinalityEstimator, PostgresEstimator};

/// Number of sample rows per base table for the sample-enhanced MSCN variant.  The paper uses
/// 1000; the default reproduction database is smaller, so the same *fraction* of rows is
/// roughly preserved by this constant.
pub const MSCN_SAMPLE_ROWS: usize = 100;

/// Number of training queries generated (with the scale generator) for the sample-enhanced
/// MSCN variant.
pub const MSCN_SAMPLED_TRAINING_QUERIES: usize = 400;

/// Table 10 / Figure 12 — estimation errors on the `scale` workload, including the
/// sample-enhanced MSCN trained on the scale generator's distribution.
pub fn table10_scale(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = scale(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(23),
    );
    let (results, truth) = evaluate_headline_models(ctx, &workload);
    let mut report = ExperimentReport::new(
        "table10",
        "Table 10 & Figure 12 — estimation errors on the scale workload (different generator)",
    )
    .with_qerror_headers();
    for errors in &results {
        report.push_summary(errors.model.clone(), &errors.summary());
    }
    // The sample-enhanced MSCN variant, trained on the scale generator's own distribution
    // (the paper deliberately gives it this advantage, §6.6).
    let sampled = ctx.train_sampled_mscn(MSCN_SAMPLE_ROWS, MSCN_SAMPLED_TRAINING_QUERIES);
    let sampled_errors = evaluate_cardinality_model(&sampled, &workload, &truth);
    report.push_summary(
        format!("{} (scale-trained)", sampled.name()),
        &sampled_errors.summary(),
    );
    report.push_note(format!(
        "{} queries; CRN's training data and queries pool are unchanged (not from the scale generator)",
        workload.len()
    ));
    report.push_note(
        "expected shape (paper): Cnt2Crd(CRN) more robust overall; MSCN-with-samples best at 0-2 joins, CRN best at 3-4 joins".to_string(),
    );
    report
}

/// Figure 13 — estimation errors on `crd_test2` compared across **all** models: the three
/// headline models, the improved models and the sample-enhanced MSCN.
pub fn fig13_all_models(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(22),
    );
    let truth = cardinality_ground_truth(&ctx.db, &workload);
    let mut report = ExperimentReport::new(
        "fig13",
        "Figure 13 — estimation errors on crd_test2, all models",
    )
    .with_qerror_headers();

    let cnt2crd = cnt2crd_crn(ctx);
    let improved_pg = ImprovedEstimator::new(
        PostgresEstimator::from_stats(ctx.postgres.stats().clone()),
        ctx.pool.clone(),
    );
    let improved_mscn = ImprovedEstimator::new(&ctx.mscn, ctx.pool.clone());
    let sampled = ctx.train_sampled_mscn(MSCN_SAMPLE_ROWS, MSCN_SAMPLED_TRAINING_QUERIES);

    let models: Vec<(&str, &dyn CardinalityEstimator)> = vec![
        ("PostgreSQL", &ctx.postgres),
        ("MSCN", &ctx.mscn),
        ("MSCN (with samples)", &sampled),
        ("Improved PostgreSQL", &improved_pg),
        ("Improved MSCN", &improved_mscn),
        ("Cnt2Crd(CRN)", &cnt2crd),
    ];
    let mut all_errors = Vec::new();
    for (label, model) in models {
        let mut errors = evaluate_cardinality_model(model, &workload, &truth);
        errors.model = label.to_string();
        report.push_summary(label, &errors.summary());
        all_errors.push(errors);
    }
    report.push_note("paper: queries-pool based models dominate on many-join queries".to_string());
    report.push_plot(render_box_plots("Figure 13 — box plot", &all_errors, 70));
    report
}

/// Table 11 — PostgreSQL vs Improved PostgreSQL on `crd_test2`.
pub fn table11_improved_postgres(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(22),
    );
    let truth = cardinality_ground_truth(&ctx.db, &workload);
    let improved = ImprovedEstimator::new(
        PostgresEstimator::from_stats(ctx.postgres.stats().clone()),
        ctx.pool.clone(),
    );
    let mut report = ExperimentReport::new(
        "table11",
        "Table 11 — PostgreSQL vs Improved PostgreSQL on crd_test2",
    )
    .with_qerror_headers();
    report.push_summary(
        "PostgreSQL",
        &evaluate_cardinality_model(&ctx.postgres, &workload, &truth).summary(),
    );
    report.push_summary(
        "Improved PostgreSQL",
        &evaluate_cardinality_model(&improved, &workload, &truth).summary(),
    );
    report.push_note("paper reports a ~7x mean improvement without changing the model".to_string());
    report
}

/// Table 12 — MSCN vs Improved MSCN on `crd_test2`.
pub fn table12_improved_mscn(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(22),
    );
    let truth = cardinality_ground_truth(&ctx.db, &workload);
    let improved = ImprovedEstimator::new(&ctx.mscn, ctx.pool.clone());
    let mut report =
        ExperimentReport::new("table12", "Table 12 — MSCN vs Improved MSCN on crd_test2")
            .with_qerror_headers();
    report.push_summary(
        "MSCN",
        &evaluate_cardinality_model(&ctx.mscn, &workload, &truth).summary(),
    );
    report.push_summary(
        "Improved MSCN",
        &evaluate_cardinality_model(&improved, &workload, &truth).summary(),
    );
    report
        .push_note("paper reports a ~122x mean improvement without changing the model".to_string());
    report
}

/// Table 13 — Improved PostgreSQL / Improved MSCN vs Cnt2Crd(CRN) on `crd_test2`.
pub fn table13_improved_vs_crn(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(22),
    );
    let truth = cardinality_ground_truth(&ctx.db, &workload);
    let improved_pg = ImprovedEstimator::new(
        PostgresEstimator::from_stats(ctx.postgres.stats().clone()),
        ctx.pool.clone(),
    );
    let improved_mscn = ImprovedEstimator::new(&ctx.mscn, ctx.pool.clone());
    let cnt2crd = cnt2crd_crn(ctx);
    let mut report = ExperimentReport::new(
        "table13",
        "Table 13 — Improved models vs Cnt2Crd(CRN) on crd_test2",
    )
    .with_qerror_headers();
    for (label, model) in [
        (
            "Improved PostgreSQL",
            &improved_pg as &dyn CardinalityEstimator,
        ),
        ("Improved MSCN", &improved_mscn as &dyn CardinalityEstimator),
        ("Cnt2Crd(CRN)", &cnt2crd as &dyn CardinalityEstimator),
    ] {
        report.push_summary(
            label,
            &evaluate_cardinality_model(model, &workload, &truth).summary(),
        );
    }
    report.push_note(
        "paper: the direct CRN-based pipeline gives the best percentiles up to the 90th"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ExperimentConfig;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::build(ExperimentConfig::tiny()))
    }

    #[test]
    fn table10_includes_sampled_mscn_row() {
        let report = table10_scale(ctx());
        assert_eq!(report.rows.len(), 4);
        assert!(report.rows.iter().any(|(l, _)| l.contains("scale-trained")));
    }

    #[test]
    fn improvement_tables_have_two_rows_each() {
        assert_eq!(table11_improved_postgres(ctx()).rows.len(), 2);
        assert_eq!(table12_improved_mscn(ctx()).rows.len(), 2);
        assert_eq!(table13_improved_vs_crn(ctx()).rows.len(), 3);
    }

    #[test]
    fn fig13_compares_six_models() {
        let report = fig13_all_models(ctx());
        assert_eq!(report.rows.len(), 6);
    }
}
