//! Cardinality estimation experiments (paper §6): Tables 5–9, Figures 9–11.

use crate::experiments::common::{
    cardinality_ground_truth, evaluate_cardinality_model, join_mask, CardinalityGroundTruth,
};
use crate::harness::ExperimentContext;
use crate::metrics::ModelErrors;
use crate::plot::render_box_plots;
use crate::report::{format_number, ExperimentReport};
use crate::workloads::{crd_test1, crd_test2, scale, Workload};
use crn_core::Cnt2Crd;
use crn_estimators::CardinalityEstimator;

/// Builds the paper's main cardinality estimator `Cnt2Crd(CRN)` from the context's CRN model
/// and queries pool, with the PostgreSQL baseline as the out-of-pool fallback (§5.2).
pub fn cnt2crd_crn(ctx: &ExperimentContext) -> Cnt2Crd<&crn_core::CrnModel> {
    Cnt2Crd::new(&ctx.crn, ctx.pool.clone()).with_fallback(Box::new(
        crn_estimators::PostgresEstimator::from_stats(ctx.postgres.stats().clone()),
    ))
}

/// Evaluates the three headline cardinality models on a workload.
pub fn evaluate_headline_models(
    ctx: &ExperimentContext,
    workload: &Workload,
) -> (Vec<ModelErrors>, CardinalityGroundTruth) {
    let truth = cardinality_ground_truth(&ctx.db, workload);
    let cnt2crd = cnt2crd_crn(ctx);
    let models: Vec<(&str, &dyn CardinalityEstimator)> = vec![
        ("PostgreSQL", &ctx.postgres),
        ("MSCN", &ctx.mscn),
        ("Cnt2Crd(CRN)", &cnt2crd),
    ];
    let mut results = Vec::new();
    for (label, model) in models {
        let mut errors = evaluate_cardinality_model(model, workload, &truth);
        errors.model = label.to_string();
        results.push(errors);
    }
    (results, truth)
}

/// Table 5 — distribution of joins in the cardinality workloads.
pub fn table5_workload_distribution(ctx: &ExperimentContext) -> ExperimentReport {
    let sizes = &ctx.config.workloads;
    let seed = ctx.config.seed;
    let w1 = crd_test1(&ctx.db, sizes, seed.wrapping_add(21));
    let w2 = crd_test2(&ctx.db, sizes, seed.wrapping_add(22));
    let ws = scale(&ctx.db, sizes, seed.wrapping_add(23));
    let mut report = ExperimentReport::new(
        "table5",
        "Table 5 — distribution of joins in the cardinality workloads",
    )
    .with_headers(&["0", "1", "2", "3", "4", "5", "overall"]);
    for workload in [&w1, &w2, &ws] {
        let dist = workload.join_distribution(5);
        let mut cells: Vec<String> = dist.iter().map(|c| c.to_string()).collect();
        cells.push(workload.len().to_string());
        report.push_row(workload.name.clone(), cells);
    }
    report.push_note("paper sizes: crd_test1 450, crd_test2 450, scale 500".to_string());
    report
}

fn cardinality_comparison(
    ctx: &ExperimentContext,
    workload: &Workload,
    id: &str,
    title: &str,
    note: &str,
) -> ExperimentReport {
    let (results, _) = evaluate_headline_models(ctx, workload);
    let mut report = ExperimentReport::new(id, title).with_qerror_headers();
    for errors in &results {
        report.push_summary(errors.model.clone(), &errors.summary());
    }
    report.push_note(format!("{} queries; {}", workload.len(), note));
    report.push_plot(render_box_plots(
        &format!("{title} — box plot"),
        &results,
        70,
    ));
    report
}

/// Table 6 / Figure 9 — estimation errors on `crd_test1` (0–2 joins).
pub fn table6_crd_test1(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test1(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(21),
    );
    cardinality_comparison(
        ctx,
        &workload,
        "table6",
        "Table 6 & Figure 9 — cardinality estimation errors on crd_test1 (0-2 joins)",
        "expected shape (paper): MSCN and Cnt2Crd(CRN) competitive, PostgreSQL skewed upward",
    )
}

/// Table 7 / Figure 10 — estimation errors on `crd_test2` (0–5 joins).
pub fn table7_crd_test2(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(22),
    );
    cardinality_comparison(
        ctx,
        &workload,
        "table7",
        "Table 7 & Figure 10 — cardinality estimation errors on crd_test2 (0-5 joins)",
        "expected shape (paper): Cnt2Crd(CRN) mean ~100x lower than MSCN, ~1000x lower than PostgreSQL",
    )
}

/// Table 8 — estimation errors on `crd_test2` restricted to 3–5 joins.
pub fn table8_many_joins(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(22),
    );
    let (results, truth) = evaluate_headline_models(ctx, &workload);
    let mask = join_mask(&truth.join_counts, 3, 5);
    let mut report = ExperimentReport::new(
        "table8",
        "Table 8 — estimation errors on crd_test2, queries with three to five joins only",
    )
    .with_qerror_headers();
    for errors in &results {
        report.push_summary(errors.model.clone(), &errors.summary_where(&mask));
    }
    report.push_note(format!(
        "{} of {} queries have 3-5 joins",
        mask.iter().filter(|&&b| b).count(),
        workload.len()
    ));
    report
}

/// Table 9 / Figure 11 — mean and median q-error per number of joins on `crd_test2`.
pub fn table9_per_join(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(22),
    );
    let (results, truth) = evaluate_headline_models(ctx, &workload);
    let mut report = ExperimentReport::new(
        "table9",
        "Table 9 & Figure 11 — q-error means (and medians) for each number of joins on crd_test2",
    )
    .with_headers(&["0", "1", "2", "3", "4", "5"]);
    for errors in &results {
        let means: Vec<String> = (0..=5)
            .map(|joins| {
                let mask = join_mask(&truth.join_counts, joins, joins);
                format_number(errors.mean_where(&mask))
            })
            .collect();
        report.push_row(format!("{} (mean)", errors.model), means);
        let medians: Vec<String> = (0..=5)
            .map(|joins| {
                let mask = join_mask(&truth.join_counts, joins, joins);
                format_number(errors.median_where(&mask))
            })
            .collect();
        report.push_row(format!("{} (median)", errors.model), medians);
    }
    report.push_note(
        "expected shape (paper): baseline errors grow exponentially with joins; Cnt2Crd(CRN) stays flat"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ExperimentConfig;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::build(ExperimentConfig::tiny()))
    }

    #[test]
    fn table5_reports_three_workloads() {
        let report = table5_workload_distribution(ctx());
        assert_eq!(report.rows.len(), 3);
    }

    #[test]
    fn table6_and_7_report_three_models() {
        for report in [table6_crd_test1(ctx()), table7_crd_test2(ctx())] {
            assert_eq!(report.rows.len(), 3);
            let labels: Vec<&str> = report.rows.iter().map(|(l, _)| l.as_str()).collect();
            assert!(labels.contains(&"PostgreSQL"));
            assert!(labels.contains(&"MSCN"));
            assert!(labels.contains(&"Cnt2Crd(CRN)"));
        }
    }

    #[test]
    fn table8_is_a_subset_of_table7() {
        let report = table8_many_joins(ctx());
        assert_eq!(report.rows.len(), 3);
    }

    #[test]
    fn table9_has_mean_and_median_rows_per_model() {
        let report = table9_per_join(ctx());
        assert_eq!(report.rows.len(), 6);
        assert_eq!(report.headers.len(), 6);
    }
}
