//! Prediction-cost experiments (paper §7.4): Table 14 (queries-pool size sweep) and
//! Table 15 (average prediction time per model).

use crate::experiments::cardinality::cnt2crd_crn;
use crate::experiments::common::{
    average_prediction_time_ms, cardinality_ground_truth, evaluate_cardinality_model,
};
use crate::harness::ExperimentContext;
use crate::report::{format_number, ExperimentReport};
use crate::workloads::crd_test2;
use crn_core::{Cnt2Crd, ImprovedEstimator};
use crn_estimators::{CardinalityEstimator, PostgresEstimator};

/// The pool sizes swept by Table 14, scaled from the configured pool size
/// (the paper sweeps 50..300 in steps of 50 around its 300-entry pool).
pub fn pool_size_sweep(max: usize) -> Vec<usize> {
    let step = (max / 6).max(1);
    (1..=6).map(|i| (i * step).min(max)).collect()
}

/// Table 14 — median/mean q-error and average prediction time for different pool sizes.
pub fn table14_pool_sweep(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(22),
    );
    let truth = cardinality_ground_truth(&ctx.db, &workload);
    let sizes = pool_size_sweep(ctx.pool.len());
    let mut report = ExperimentReport::new(
        "table14",
        "Table 14 — estimation errors and prediction time on crd_test2 vs queries-pool size",
    )
    .with_headers(
        &sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
    );

    let mut medians = Vec::new();
    let mut means = Vec::new();
    let mut times = Vec::new();
    for &size in &sizes {
        let pool = ctx.pool_of_size(size);
        let estimator = Cnt2Crd::new(&ctx.crn, pool).with_fallback(Box::new(
            PostgresEstimator::from_stats(ctx.postgres.stats().clone()),
        ));
        let errors = evaluate_cardinality_model(&estimator, &workload, &truth);
        let summary = errors.summary();
        medians.push(format_number(summary.p50));
        means.push(format_number(summary.mean));
        times.push(format!(
            "{:.1}ms",
            average_prediction_time_ms(&estimator, &workload)
        ));
    }
    report.push_row("Median", medians);
    report.push_row("Mean", means);
    report.push_row("Prediction time", times);
    report.push_note(
        "paper: larger pools improve accuracy but increase per-query prediction time roughly linearly"
            .to_string(),
    );
    report
}

/// Table 15 — average prediction time of a single query for every model.
pub fn table15_prediction_time(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(22),
    );
    let cnt2crd = cnt2crd_crn(ctx);
    let improved_pg = ImprovedEstimator::new(
        PostgresEstimator::from_stats(ctx.postgres.stats().clone()),
        ctx.pool.clone(),
    );
    let improved_mscn = ImprovedEstimator::new(&ctx.mscn, ctx.pool.clone());

    let mut report = ExperimentReport::new(
        "table15",
        "Table 15 — average prediction time of a single query",
    )
    .with_headers(&["avg prediction time"]);
    let models: Vec<(&str, &dyn CardinalityEstimator)> = vec![
        ("PostgreSQL", &ctx.postgres),
        ("MSCN", &ctx.mscn),
        ("Improved PostgreSQL", &improved_pg),
        ("Improved MSCN", &improved_mscn),
        ("Cnt2Crd(CRN)", &cnt2crd),
    ];
    for (label, model) in models {
        let time = average_prediction_time_ms(model, &workload);
        report.push_row(label, vec![format!("{time:.2}ms")]);
    }
    report.push_note(format!(
        "pool size {}; paper ordering: MSCN < PostgreSQL < Cnt2Crd(CRN) < Improved MSCN < Improved PostgreSQL",
        ctx.pool.len()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ExperimentConfig;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::build(ExperimentConfig::tiny()))
    }

    #[test]
    fn pool_sweep_sizes_are_increasing() {
        let sizes = pool_size_sweep(300);
        assert_eq!(sizes, vec![50, 100, 150, 200, 250, 300]);
        assert!(pool_size_sweep(5).iter().all(|&s| (1..=5).contains(&s)));
    }

    #[test]
    fn table14_has_three_rows_one_per_metric() {
        let report = table14_pool_sweep(ctx());
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0].0, "Median");
        assert_eq!(report.rows[2].0, "Prediction time");
    }

    #[test]
    fn table15_reports_five_models() {
        let report = table15_prediction_time(ctx());
        assert_eq!(report.rows.len(), 5);
        // Every cell ends with "ms".
        for (_, cells) in &report.rows {
            assert!(cells[0].ends_with("ms"));
        }
    }
}
