//! Containment-rate estimation experiments (paper §4): Tables 2–4, Figures 5–6.

use crate::experiments::common::{containment_ground_truth, evaluate_containment_model, join_mask};
use crate::harness::ExperimentContext;
use crate::plot::render_box_plots;
use crate::report::ExperimentReport;
use crate::workloads::{cnt_test1, cnt_test2, PairWorkload};
use crn_core::Crd2Cnt;
use crn_estimators::ContainmentEstimator;

/// Table 2 — distribution of joins in the containment workloads.
pub fn table2_workload_distribution(ctx: &ExperimentContext) -> ExperimentReport {
    let sizes = &ctx.config.workloads;
    let w1 = cnt_test1(&ctx.db, sizes, ctx.config.seed.wrapping_add(11));
    let w2 = cnt_test2(&ctx.db, sizes, ctx.config.seed.wrapping_add(12));
    let mut report = ExperimentReport::new(
        "table2",
        "Table 2 — distribution of joins in the containment workloads",
    )
    .with_headers(&["0", "1", "2", "3", "4", "5", "overall"]);
    for workload in [&w1, &w2] {
        let dist = workload.join_distribution(5);
        let mut cells: Vec<String> = dist.iter().map(|c| c.to_string()).collect();
        cells.push(workload.len().to_string());
        report.push_row(workload.name.clone(), cells);
    }
    report.push_note(format!(
        "paper sizes are 1200 pairs per workload; this run uses {} and {} pairs",
        w1.len(),
        w2.len()
    ));
    report
}

/// Shared evaluation of the three containment estimators on a pair workload.
fn containment_comparison(
    ctx: &ExperimentContext,
    workload: &PairWorkload,
    id: &str,
    title: &str,
) -> ExperimentReport {
    let truth = containment_ground_truth(&ctx.db, workload);
    let crd2cnt_postgres = Crd2Cnt::new(&ctx.postgres);
    let crd2cnt_mscn = Crd2Cnt::new(&ctx.mscn);

    let models: Vec<(&str, &dyn ContainmentEstimator)> = vec![
        ("Crd2Cnt(PostgreSQL)", &crd2cnt_postgres),
        ("Crd2Cnt(MSCN)", &crd2cnt_mscn),
        ("CRN", &ctx.crn),
    ];
    let mut report = ExperimentReport::new(id, title).with_qerror_headers();
    let mut all_errors = Vec::new();
    for (label, model) in models {
        let mut errors = evaluate_containment_model(model, workload, &truth);
        errors.model = label.to_string();
        report.push_summary(label, &errors.summary());
        all_errors.push(errors);
    }
    report.push_note(format!(
        "{} pairs; true rates computed by exact execution; q-error floor {}",
        workload.len(),
        crate::metrics::RATE_FLOOR
    ));
    report.push_plot(render_box_plots(
        &format!("{title} — box plot"),
        &all_errors,
        70,
    ));
    report
}

/// Table 3 / Figure 5 — containment estimation errors on `cnt_test1` (0–2 joins).
pub fn table3_cnt_test1(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = cnt_test1(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(11),
    );
    let mut report = containment_comparison(
        ctx,
        &workload,
        "table3",
        "Table 3 & Figure 5 — containment estimation errors on cnt_test1 (0-2 joins)",
    );
    report.push_note(
        "expected shape (paper): CRN and Crd2Cnt(MSCN) close, Crd2Cnt(PostgreSQL) heavy-tailed"
            .to_string(),
    );
    report
}

/// Table 4 / Figure 6 — containment estimation errors on `cnt_test2` (0–5 joins,
/// generalization beyond the training join count).
pub fn table4_cnt_test2(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = cnt_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(12),
    );
    let truth = containment_ground_truth(&ctx.db, &workload);
    let crd2cnt_postgres = Crd2Cnt::new(&ctx.postgres);
    let crd2cnt_mscn = Crd2Cnt::new(&ctx.mscn);
    let models: Vec<(&str, &dyn ContainmentEstimator)> = vec![
        ("Crd2Cnt(PostgreSQL)", &crd2cnt_postgres),
        ("Crd2Cnt(MSCN)", &crd2cnt_mscn),
        ("CRN", &ctx.crn),
    ];

    let mut report = ExperimentReport::new(
        "table4",
        "Table 4 & Figure 6 — containment estimation errors on cnt_test2 (0-5 joins)",
    )
    .with_qerror_headers();
    let many_joins = join_mask(&truth.join_counts, 3, 5);
    for (label, model) in models {
        let errors = evaluate_containment_model(model, &workload, &truth);
        report.push_summary(label, &errors.summary());
        report.push_summary(
            format!("{label} [3-5 joins]"),
            &errors.summary_where(&many_joins),
        );
    }
    report.push_note(
        "expected shape (paper): CRN generalizes to unseen join counts markedly better (≈8x lower mean)".to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ExperimentConfig;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::build(ExperimentConfig::tiny()))
    }

    #[test]
    fn table2_lists_both_workloads() {
        let report = table2_workload_distribution(ctx());
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.headers.len(), 7);
        // cnt_test1 must not contain 3+ join pairs.
        let (_, cells) = &report.rows[0];
        assert_eq!(cells[3], "0");
        assert_eq!(cells[4], "0");
        assert_eq!(cells[5], "0");
    }

    #[test]
    fn table3_compares_three_models() {
        let report = table3_cnt_test1(ctx());
        assert_eq!(report.rows.len(), 3);
        let labels: Vec<&str> = report.rows.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"CRN"));
        assert!(labels.contains(&"Crd2Cnt(PostgreSQL)"));
        assert!(labels.contains(&"Crd2Cnt(MSCN)"));
        let text = report.render_text();
        assert!(text.contains("cnt_test1"));
    }

    #[test]
    fn table4_adds_many_join_breakdown() {
        let report = table4_cnt_test2(ctx());
        assert_eq!(
            report.rows.len(),
            6,
            "three models, each with an all-joins and a 3-5 join row"
        );
    }
}
