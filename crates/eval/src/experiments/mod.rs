//! The per-table / per-figure experiment runners.
//!
//! Every experiment is a function `fn(&ExperimentContext) -> ExperimentReport`; the
//! [`run_experiment`] dispatcher maps the experiment ids used by the `repro` binary and the
//! benches (`table3`, `fig13`, ...) to those functions.  `DESIGN.md` carries the full index of
//! ids, workloads and paper artifacts.

pub mod ablations;
pub mod advanced;
pub mod cardinality;
pub mod common;
pub mod containment;
pub mod timing;
pub mod training;

use crate::harness::ExperimentContext;
use crate::report::ExperimentReport;

/// All experiment ids, in the order they appear in the paper.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig3",
    "fig4",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "fig13",
    "table11",
    "table12",
    "table13",
    "table14",
    "table15",
    "ablation_crn",
    "ablation_final_fn",
];

/// Runs a single experiment by id.
///
/// Returns `None` for unknown ids.  Figure ids that share data with a table (`fig5`/`fig6`,
/// `fig9`–`fig11`, `fig12`) are aliases of the corresponding table experiment.
pub fn run_experiment(ctx: &ExperimentContext, id: &str) -> Option<ExperimentReport> {
    let report = match id {
        "fig3" => training::fig3_hidden_size(ctx),
        "fig4" => training::fig4_convergence(ctx),
        "table2" => containment::table2_workload_distribution(ctx),
        "table3" | "fig5" => containment::table3_cnt_test1(ctx),
        "table4" | "fig6" => containment::table4_cnt_test2(ctx),
        "table5" => cardinality::table5_workload_distribution(ctx),
        "table6" | "fig9" => cardinality::table6_crd_test1(ctx),
        "table7" | "fig10" => cardinality::table7_crd_test2(ctx),
        "table8" => cardinality::table8_many_joins(ctx),
        "table9" | "fig11" => cardinality::table9_per_join(ctx),
        "table10" | "fig12" => advanced::table10_scale(ctx),
        "fig13" => advanced::fig13_all_models(ctx),
        "table11" => advanced::table11_improved_postgres(ctx),
        "table12" => advanced::table12_improved_mscn(ctx),
        "table13" => advanced::table13_improved_vs_crn(ctx),
        "table14" => timing::table14_pool_sweep(ctx),
        "table15" => timing::table15_prediction_time(ctx),
        "ablation_crn" => ablations::ablation_crn_architecture(ctx),
        "ablation_final_fn" => ablations::ablation_final_function(ctx),
        _ => return None,
    };
    Some(report)
}

/// Runs every experiment in paper order.
pub fn run_all(ctx: &ExperimentContext) -> Vec<ExperimentReport> {
    ALL_EXPERIMENTS
        .iter()
        .filter_map(|id| run_experiment(ctx, id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ExperimentConfig;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::build(ExperimentConfig::tiny()))
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(run_experiment(ctx(), "table99").is_none());
        assert!(run_experiment(ctx(), "").is_none());
    }

    #[test]
    fn figure_aliases_resolve_to_table_experiments() {
        let table = run_experiment(ctx(), "table6").unwrap();
        let figure = run_experiment(ctx(), "fig9").unwrap();
        assert_eq!(table.id, figure.id);
    }

    #[test]
    fn every_listed_experiment_runs_and_produces_rows() {
        // The heavy sweeps (fig3, ablations, table10/fig13 which retrain models) are exercised
        // by their own module tests; here cover the fast majority to keep the suite quick.
        for id in [
            "fig4", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
            "table11", "table12", "table13", "table14", "table15",
        ] {
            let report =
                run_experiment(ctx(), id).unwrap_or_else(|| panic!("experiment {id} missing"));
            assert!(!report.rows.is_empty(), "experiment {id} produced no rows");
            assert!(!report.title.is_empty());
        }
    }
}
