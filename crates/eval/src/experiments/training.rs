//! Training-behaviour experiments (paper §3.4–3.5): Figure 3 (hidden-size sweep) and
//! Figure 4 (convergence of the validation q-error).

use crate::harness::ExperimentContext;
use crate::report::{format_number, ExperimentReport};
use crn_core::CrnModel;
use crn_nn::TrainConfig;

/// The hidden-layer sizes swept by the Figure 3 experiment, derived from the context's
/// configured hidden size `H`: `[H/4, H/2, H, 2H]` (the paper sweeps 64…2048 around its
/// chosen 512).
pub fn hidden_size_sweep(base: usize) -> Vec<usize> {
    let mut sizes = vec![(base / 4).max(4), (base / 2).max(8), base, base * 2];
    sizes.dedup();
    sizes
}

/// Figure 3 — mean validation q-error for different hidden layer sizes.
pub fn fig3_hidden_size(ctx: &ExperimentContext) -> ExperimentReport {
    let sizes = hidden_size_sweep(ctx.config.train.hidden_size);
    let mut report = ExperimentReport::new(
        "fig3",
        "Figure 3 — mean q-error on the validation set with different hidden layer sizes",
    )
    .with_headers(&["hidden size", "best validation mean q-error", "epochs run"]);
    for hidden in sizes {
        let config = TrainConfig {
            hidden_size: hidden,
            ..ctx.config.train.clone()
        };
        let mut model = CrnModel::new(&ctx.db, config);
        let history = model.fit(&ctx.containment_training);
        report.push_row(
            format!("H={hidden}"),
            vec![
                hidden.to_string(),
                format_number(history.best_validation),
                history.len().to_string(),
            ],
        );
    }
    report.push_note(
        "paper: accuracy improves with H up to a sweet spot (512), then over-fits; training time grows"
            .to_string(),
    );
    report
}

/// Figure 4 — convergence of the validation q-error across epochs, taken from the CRN training
/// history of the shared context.
pub fn fig4_convergence(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig4",
        "Figure 4 — convergence of the mean q-error on the validation set",
    )
    .with_headers(&["epoch", "train loss", "validation mean q-error"]);
    for stats in &ctx.crn_history.epochs {
        report.push_row(
            format!("epoch {}", stats.epoch),
            vec![
                stats.epoch.to_string(),
                format_number(stats.train_loss),
                format_number(stats.validation_q_error),
            ],
        );
    }
    report.push_note(format!(
        "best epoch {} with validation mean q-error {}",
        ctx.crn_history.best_epoch,
        format_number(ctx.crn_history.best_validation)
    ));
    report.push_note(
        "paper: converges to a mean q-error of ~4.5 after ~120 epochs on the full corpus"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ExperimentConfig;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::build(ExperimentConfig::tiny()))
    }

    #[test]
    fn sweep_sizes_are_increasing_and_nonempty() {
        let sizes = hidden_size_sweep(64);
        assert_eq!(sizes, vec![16, 32, 64, 128]);
        assert!(hidden_size_sweep(4).iter().all(|&s| s >= 4));
    }

    #[test]
    fn fig4_reports_every_trained_epoch() {
        let report = fig4_convergence(ctx());
        assert_eq!(report.rows.len(), ctx().crn_history.len());
        assert!(!report.notes.is_empty());
    }

    #[test]
    fn fig3_trains_one_model_per_hidden_size() {
        // Use a dedicated tiny context so this heavier test does not depend on ordering.
        let report = fig3_hidden_size(ctx());
        assert_eq!(
            report.rows.len(),
            hidden_size_sweep(ctx().config.train.hidden_size).len()
        );
    }
}
