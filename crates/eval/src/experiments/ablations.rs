//! Ablation experiments.
//!
//! These are not tables of the paper; they isolate design choices the paper asserts without a
//! dedicated experiment (see DESIGN.md):
//!
//! * average vs sum pooling in the set encoder (§3.2.2),
//! * the `Expand` combination vs plain concatenation (§3.2.3),
//! * q-error vs MSE vs MAE training objective (§3.2.4),
//! * Median vs Mean vs TrimmedMean final function (§5.3.1).

use crate::experiments::common::{
    cardinality_ground_truth, containment_ground_truth, evaluate_cardinality_model,
    evaluate_containment_model,
};
use crate::harness::ExperimentContext;
use crate::report::ExperimentReport;
use crate::workloads::{cnt_test1, crd_test2};
use crn_core::{Cnt2Crd, Cnt2CrdConfig, CrnModel, CrnOptions, ExpandMode, FinalFunction, Pooling};
use crn_estimators::PostgresEstimator;
use crn_nn::{LossKind, TrainConfig};

/// Ablation: CRN architecture variants (pooling, expand function, training objective).
pub fn ablation_crn_architecture(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = cnt_test1(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(11),
    );
    let truth = containment_ground_truth(&ctx.db, &workload);
    let mut report = ExperimentReport::new(
        "ablation_crn",
        "Ablation — CRN design choices (pooling, Expand, training objective) on cnt_test1",
    )
    .with_qerror_headers();

    let variants: Vec<(&str, CrnOptions, LossKind)> = vec![
        (
            "paper (mean pool, Expand, q-error)",
            CrnOptions::default(),
            LossKind::QError,
        ),
        (
            "sum pooling",
            CrnOptions {
                pooling: Pooling::Sum,
                expand: ExpandMode::Full,
            },
            LossKind::QError,
        ),
        (
            "plain concatenation",
            CrnOptions {
                pooling: Pooling::Mean,
                expand: ExpandMode::Concat,
            },
            LossKind::QError,
        ),
        ("MSE objective", CrnOptions::default(), LossKind::Mse),
        ("MAE objective", CrnOptions::default(), LossKind::Mae),
    ];
    for (label, options, loss) in variants {
        let config = TrainConfig {
            loss,
            ..ctx.config.train.clone()
        };
        let mut model = CrnModel::with_options(&ctx.db, config, options);
        model.fit(&ctx.containment_training);
        let errors = evaluate_containment_model(&model, &workload, &truth);
        report.push_summary(label, &errors.summary());
    }
    report.push_note(
        "paper's claims: mean pooling, the Expand function and the q-error objective each help"
            .to_string(),
    );
    report
}

/// Ablation: the final function `F` of the queries-pool technique (§5.3.1).
pub fn ablation_final_function(ctx: &ExperimentContext) -> ExperimentReport {
    let workload = crd_test2(
        &ctx.db,
        &ctx.config.workloads,
        ctx.config.seed.wrapping_add(22),
    );
    let truth = cardinality_ground_truth(&ctx.db, &workload);
    let mut report = ExperimentReport::new(
        "ablation_final_fn",
        "Ablation — final function of the queries-pool technique on crd_test2",
    )
    .with_qerror_headers();
    for (label, final_function) in [
        ("Median", FinalFunction::Median),
        ("Mean", FinalFunction::Mean),
        ("Trimmed mean (25%)", FinalFunction::TrimmedMean(0.25)),
    ] {
        let estimator = Cnt2Crd::new(&ctx.crn, ctx.pool.clone())
            .with_config(Cnt2CrdConfig {
                final_function,
                ..Cnt2CrdConfig::default()
            })
            .with_fallback(Box::new(PostgresEstimator::from_stats(
                ctx.postgres.stats().clone(),
            )));
        let errors = evaluate_cardinality_model(&estimator, &workload, &truth);
        report.push_summary(label, &errors.summary());
    }
    report.push_note(
        "paper: all final functions are close; the median is the most robust (§5.3.1)".to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ExperimentConfig;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentContext {
        static CTX: OnceLock<ExperimentContext> = OnceLock::new();
        CTX.get_or_init(|| ExperimentContext::build(ExperimentConfig::tiny()))
    }

    #[test]
    fn final_function_ablation_has_three_rows() {
        let report = ablation_final_function(ctx());
        assert_eq!(report.rows.len(), 3);
    }

    #[test]
    fn architecture_ablation_covers_five_variants() {
        let report = ablation_crn_architecture(ctx());
        assert_eq!(report.rows.len(), 5);
    }
}
