//! Shared evaluation helpers used by every experiment.

use crate::metrics::{q_errors, ModelErrors, CARDINALITY_FLOOR, RATE_FLOOR};
use crate::workloads::{PairWorkload, Workload};
use crn_db::database::Database;
use crn_estimators::{CardinalityEstimator, ContainmentEstimator};
use crn_exec::Executor;
use std::time::Instant;

/// Ground truth for a cardinality workload plus per-query join counts.
#[derive(Debug, Clone)]
pub struct CardinalityGroundTruth {
    /// True cardinality per workload query.
    pub cardinalities: Vec<u64>,
    /// Join count per workload query.
    pub join_counts: Vec<usize>,
}

/// Executes every query of a workload to obtain the ground truth.
pub fn cardinality_ground_truth(db: &Database, workload: &Workload) -> CardinalityGroundTruth {
    let executor = Executor::new(db);
    let cardinalities = workload
        .queries
        .iter()
        .map(|q| executor.cardinality(q))
        .collect();
    let join_counts = workload.queries.iter().map(|q| q.num_joins()).collect();
    CardinalityGroundTruth {
        cardinalities,
        join_counts,
    }
}

/// Evaluates a cardinality estimator over a workload against pre-computed ground truth,
/// returning one q-error per query.
pub fn evaluate_cardinality_model(
    model: &dyn CardinalityEstimator,
    workload: &Workload,
    truth: &CardinalityGroundTruth,
) -> ModelErrors {
    let pairs: Vec<(f64, f64)> = workload
        .queries
        .iter()
        .zip(&truth.cardinalities)
        .map(|(query, &card)| (model.estimate(query), card as f64))
        .collect();
    ModelErrors::new(
        model.name().to_string(),
        q_errors(&pairs, CARDINALITY_FLOOR),
    )
}

/// Measures the average prediction latency of a cardinality estimator over a workload,
/// in milliseconds per query.
pub fn average_prediction_time_ms(model: &dyn CardinalityEstimator, workload: &Workload) -> f64 {
    if workload.is_empty() {
        return 0.0;
    }
    let start = Instant::now();
    for query in &workload.queries {
        std::hint::black_box(model.estimate(query));
    }
    start.elapsed().as_secs_f64() * 1000.0 / workload.len() as f64
}

/// Ground truth for a containment workload.
#[derive(Debug, Clone)]
pub struct ContainmentGroundTruth {
    /// True containment rate per pair.
    pub rates: Vec<f64>,
    /// Join count of the first query of each pair.
    pub join_counts: Vec<usize>,
}

/// Executes every pair of a containment workload to obtain true containment rates.
pub fn containment_ground_truth(db: &Database, workload: &PairWorkload) -> ContainmentGroundTruth {
    let executor = Executor::new(db);
    let rates = workload
        .pairs
        .iter()
        .map(|(q1, q2)| executor.containment_rate(q1, q2).unwrap_or(0.0))
        .collect();
    let join_counts = workload
        .pairs
        .iter()
        .map(|(q1, _)| q1.num_joins())
        .collect();
    ContainmentGroundTruth { rates, join_counts }
}

/// Evaluates a containment estimator over a pair workload against pre-computed ground truth.
pub fn evaluate_containment_model(
    model: &dyn ContainmentEstimator,
    workload: &PairWorkload,
    truth: &ContainmentGroundTruth,
) -> ModelErrors {
    let pairs: Vec<(f64, f64)> = workload
        .pairs
        .iter()
        .zip(&truth.rates)
        .map(|((q1, q2), &rate)| (model.estimate_containment(q1, q2), rate))
        .collect();
    ModelErrors::new(model.name().to_string(), q_errors(&pairs, RATE_FLOOR))
}

/// Builds the boolean mask selecting queries with join count in `lo..=hi`.
pub fn join_mask(join_counts: &[usize], lo: usize, hi: usize) -> Vec<bool> {
    join_counts.iter().map(|&j| j >= lo && j <= hi).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{crd_test1, WorkloadSizes};
    use crn_db::imdb::{generate_imdb, ImdbConfig};
    use crn_estimators::TrueCardinality;

    #[test]
    fn oracle_has_q_error_one_everywhere() {
        let db = generate_imdb(&ImdbConfig::tiny(80));
        let workload = crd_test1(&db, &WorkloadSizes::tiny(), 80);
        let truth = cardinality_ground_truth(&db, &workload);
        let oracle = TrueCardinality::new(&db);
        let errors = evaluate_cardinality_model(&oracle, &workload, &truth);
        assert_eq!(errors.errors.len(), workload.len());
        assert!(errors.errors.iter().all(|&e| (e - 1.0).abs() < 1e-9));
        let time = average_prediction_time_ms(&oracle, &workload);
        assert!(time >= 0.0);
    }

    #[test]
    fn join_mask_selects_expected_range() {
        let joins = vec![0, 1, 2, 3, 4, 5];
        assert_eq!(
            join_mask(&joins, 3, 5),
            vec![false, false, false, true, true, true]
        );
        assert_eq!(
            join_mask(&joins, 0, 0),
            vec![true, false, false, false, false, false]
        );
    }
}
