//! `repro serve` — drives the concurrent estimator service end to end.
//!
//! Builds the shared experiment context (database, trained CRN, queries pool), wraps the
//! pool in a [`ShardedPool`] at the requested shard count, wires the model into an
//! [`EstimatorService`] backed by the persistent worker pool, and pushes a synthetic
//! concurrent workload through it in fixed-size batches — printing the per-batch
//! [`ServeStats`] and an aggregate throughput line.
//!
//! The first batch is additionally verified **bit-for-bit** against the sequential
//! single-query `Cnt2Crd` path over the same (flattened) pool, so the CI smoke run fails
//! loudly if sharded serving ever drifts from the sequential semantics.

use crate::harness::{ExperimentConfig, ExperimentContext};
use crn_core::{Cnt2Crd, EstimatorService, ServeStats, ShardedPool};
use crn_estimators::{CardinalityEstimator, PostgresEstimator};
use crn_nn::parallel::WorkerPool;
use crn_query::generator::{GeneratorConfig, QueryGenerator};
use crn_query::Query;
use std::time::Instant;

/// Configuration of one `repro serve` run.
#[derive(Debug, Clone)]
pub struct ServeDemoConfig {
    /// The experiment preset supplying the database, trained model and pool.
    pub experiment: ExperimentConfig,
    /// Pool shard count (`--shards`).
    pub shards: usize,
    /// Worker threads of the persistent pool (`--threads`).
    pub threads: usize,
    /// Total workload size (`--queries`).
    pub queries: usize,
    /// Concurrent queries handed to `serve` per call (`--batch`).
    pub batch: usize,
}

impl ServeDemoConfig {
    /// Defaults matching the tiny CI smoke: 4 shards, 2 threads, 64 queries in batches of 16.
    pub fn new(experiment: ExperimentConfig) -> Self {
        ServeDemoConfig {
            experiment,
            shards: 4,
            threads: 2,
            queries: 64,
            batch: 16,
        }
    }
}

/// Runs the serve demo, returning the printed report (one line per batch plus the summary).
///
/// # Panics
/// Panics if the service's first batch is not bit-identical to the sequential path — this
/// is the CI smoke's parity tripwire.
pub fn run_serve_demo(config: &ServeDemoConfig) -> String {
    let started = Instant::now();
    let ctx = ExperimentContext::build(config.experiment.clone());
    let mut lines = vec![format!(
        "[serve] context ready in {:.1}s: pool of {} entries over {} FROM clauses",
        started.elapsed().as_secs_f64(),
        ctx.pool.len(),
        ctx.pool.num_from_clauses()
    )];

    let sharded = ShardedPool::from_pool(&ctx.pool, config.shards);
    let workers = WorkerPool::shared(config.threads.max(1));
    let service = EstimatorService::new(ctx.crn.clone(), sharded, workers)
        .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db)));

    // `generate_queries` expands each initial query with perturbed variants, so truncate to
    // the requested workload size exactly.
    let mut generator =
        QueryGenerator::new(&ctx.db, GeneratorConfig::paper(ctx.config.seed ^ 0x5e));
    let mut workload: Vec<Query> = generator.generate_queries(config.queries.max(1));
    workload.truncate(config.queries.max(1));

    // Parity tripwire: the first batch must match the sequential single-query path bit for
    // bit (the acceptance contract of the sharded serving subsystem).
    let first_batch = &workload[..workload.len().min(config.batch.max(1))];
    let sequential = Cnt2Crd::new(ctx.crn.clone(), ctx.pool.clone())
        .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db)));
    let response = service.serve(first_batch);
    for (index, (query, estimate)) in first_batch.iter().zip(&response.estimates).enumerate() {
        let expected = sequential.estimate(query);
        assert!(
            *estimate == expected,
            "parity violation at query {index}: service {estimate} vs sequential {expected}"
        );
    }
    lines.push(format!(
        "[serve] parity check passed: {} estimates bit-identical to the sequential path",
        first_batch.len()
    ));

    // The measured run: the whole workload in `batch`-sized serve calls.
    let mut total = ServeStats::default();
    let run_started = Instant::now();
    for chunk in workload.chunks(config.batch.max(1)) {
        let response = service.serve(chunk);
        let stats = response.stats;
        lines.push(format!("[serve] {}", stats.render()));
        total.queries += stats.queries;
        total.groups += stats.groups;
        total.work_items += stats.work_items;
        total.pool_hits += stats.pool_hits;
        total.fallbacks += stats.fallbacks;
        total.snapshot_time += stats.snapshot_time;
        total.group_time += stats.group_time;
        total.compute_time += stats.compute_time;
        total.merge_time += stats.merge_time;
        total.total_time += stats.total_time;
    }
    let elapsed = run_started.elapsed();
    lines.push(format!(
        "[serve] served {} queries over {} shards x {} threads in {:.3}s ({:.0} queries/s); \
         {} pool hits, {} fallbacks; layer time: snapshot {:.1?} group {:.1?} compute {:.1?} \
         merge {:.1?}",
        total.queries,
        config.shards,
        config.threads,
        elapsed.as_secs_f64(),
        total.queries as f64 / elapsed.as_secs_f64().max(1e-9),
        total.pool_hits,
        total.fallbacks,
        total.snapshot_time,
        total.group_time,
        total.compute_time,
        total.merge_time,
    ));
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_demo_runs_on_the_tiny_preset() {
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 24;
        config.batch = 8;
        config.shards = 2;
        config.threads = 2;
        let report = run_serve_demo(&config);
        assert!(report.contains("parity check passed"));
        assert!(report.contains("served 24 queries over 2 shards x 2 threads"));
    }
}
