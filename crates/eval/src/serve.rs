//! `repro serve` — drives the serving stack end to end, synchronously or async.
//!
//! Builds the shared experiment context (database, trained CRN, queries pool), wraps the
//! pool in a [`ShardedPool`] at the requested shard count and wires the model into an
//! [`EstimatorService`] backed by the persistent worker pool.  Two modes:
//!
//! * **Synchronous** (default): pushes a synthetic workload through `serve` in
//!   fixed-size batches — the PR-3 demo — printing per-batch [`ServeStats`] and an
//!   aggregate throughput line.
//! * **Async** (`--async`): stands up a [`ServeRuntime`] over the service and runs a
//!   *closed-loop multi-caller load generator*: `--callers` threads each submit their
//!   share of the workload one request at a time (submit → wait → next, retrying when
//!   admission sheds), exercising the bounded queue, the `--batch-window-us` cross-call
//!   batching window and the per-caller fairness quota; afterwards the maintenance lane
//!   is fed true cardinalities and flushed — the paper's pool-refresh loop live.
//!
//! In both modes the first batch is verified **bit-for-bit** against the sequential
//! single-query `Cnt2Crd` path over the same (flattened) pool; a violation returns an
//! `Err` so the `repro` binary exits non-zero and the CI smoke fails loudly.
//!
//! With `--bench-json <path>` the run additionally emits a machine-readable
//! `BENCH_serving.json` record (p50/p99 latency and throughput for the exact
//! configuration) so the serving perf trajectory is trackable across PRs.

use crate::harness::{ExperimentConfig, ExperimentContext};
use crate::metrics::QErrorSummary;
use crn_cluster::{ClusterClient, ClusterOptions};
use crn_core::{
    Cnt2Crd, Cnt2CrdConfig, CrnModel, EstimatorService, QueriesPool, ServeStats, ShardedPool,
};
use crn_estimators::{CardinalityEstimator, PostgresEstimator};
use crn_nn::parallel::WorkerPool;
use crn_online::{
    Checkpoint, CheckpointError, CheckpointSink, ExecLabeler, OnlineConfig, RefreshController,
    RefreshDecision, RefreshOutcome,
};
use crn_query::generator::{GeneratorConfig, QueryGenerator, ScaleGenerator, ScaleGeneratorConfig};
use crn_query::Query;
use crn_serve::{
    CheckpointWriter, ComputeBackend, FaultInjector, FaultPlan, FeedbackObserver, RuntimeConfig,
    ServeRuntime, SloClass, SupervisorPolicy,
};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one `repro serve` run.
#[derive(Debug, Clone)]
pub struct ServeDemoConfig {
    /// The experiment preset supplying the database, trained model and pool.
    pub experiment: ExperimentConfig,
    /// The preset's name, echoed into the bench JSON (`--preset`).
    pub preset_label: String,
    /// Pool shard count (`--shards`).
    pub shards: usize,
    /// Worker threads of the persistent pool (`--threads`).
    pub threads: usize,
    /// Total workload size (`--queries`).
    pub queries: usize,
    /// Synchronous mode: concurrent queries handed to `serve` per call (`--batch`).
    /// Async mode: the runtime's batch size threshold.
    pub batch: usize,
    /// Drive the async request-queue runtime instead of direct `serve` calls (`--async`).
    pub async_mode: bool,
    /// Async batching window in microseconds (`--batch-window-us`).
    pub batch_window_us: u64,
    /// Async bounded submission-queue depth (`--queue-depth`).
    pub queue_depth: usize,
    /// Closed-loop load-generator threads (`--callers`).
    pub callers: usize,
    /// Emit the machine-readable latency/throughput record here (`--bench-json`).
    pub bench_json: Option<String>,
    /// Drive the online model-refresh demo (`--online`): async serving plus a
    /// drifting-workload phase with feedback, drift detection, gated fine-tuning and
    /// hot-swap.
    pub online: bool,
    /// Feedback records between refresh checks in the online demo
    /// (`--refresh-interval`); 0 disables refresh entirely (pool maintenance still
    /// runs — the parity mode of the acceptance criterion).
    pub refresh_interval: usize,
    /// Fraction of the feedback stream held out as the validation gate's probe set
    /// (`--probe-frac`).
    pub probe_fraction: f64,
    /// Relative margin a refresh candidate must beat the live model by at the
    /// validation gate (`--gate-margin`, default 0 = strictly better).
    pub gate_margin: f64,
    /// Per-request deadline in µs for async submissions (`--deadline-us`); `None`
    /// disables deadlines (requests wait however long the queue takes).
    pub deadline_us: Option<u64>,
    /// Checkpoint directory (`--checkpoint-dir`): restored from on startup when it
    /// holds a committed checkpoint, written to on the maintenance cadence.
    pub checkpoint_dir: Option<String>,
    /// Applied maintenance records between checkpoint writes (`--checkpoint-every`);
    /// 0 disables cadence-driven checkpoints.
    pub checkpoint_every: u64,
    /// Per-lane restart budget inside the supervisor's window (`--restart-budget`);
    /// `None` keeps the default policy.
    pub restart_budget: Option<u32>,
    /// Deterministic fault plan (`--chaos`): either `crash-restore` (the kill-and-
    /// recover checkpoint demo) or a [`FaultPlan`] spec like
    /// `batch-panic:2,maint-kill,checkpoint-fail:every2`.
    pub chaos: Option<String>,
    /// Batch-class batching window in µs (`--class-window-us`); `None` keeps the
    /// runtime's default batch-class window, 0 makes the batch class inherit the base
    /// window.  Setting this (or `--class-weights`) switches the async demo to mixed
    /// traffic: odd-indexed callers register as `Batch`-class.
    pub class_window_us: Option<u64>,
    /// Weighted admission shares `interactive:batch` (`--class-weights A:B`); `None`
    /// disables weighting — every class may use the whole queue depth.
    pub class_weights: Option<(u32, u32)>,
    /// Cross-window estimate cache capacity in entries (`--cache-entries`); 0 disables
    /// the cache entirely.  With the cache on, the async demo drives the workload
    /// twice so the second pass measures the hit path.
    pub cache_entries: usize,
    /// Top-K anchor selection per FROM bucket (`--top-k`); 0 keeps the full-pool path,
    /// which is bit-identical to the pre-pool-tier serving semantics.
    pub top_k: usize,
    /// Total pool capacity (`--pool-cap`); 0 = unbounded.  With a bound, maintenance
    /// inserts past it evict the lowest-retention-weight anchors.
    pub pool_cap: usize,
    /// The estimator-quality parity budget of the pool-scale sweep
    /// (`--q-error-budget`): the top-K arm's median q-error may exceed the full-pool
    /// arm's by at most this factor, else the sweep errors out (non-zero exit).
    pub q_error_budget: f64,
    /// Pool sizes of the production-scale latency sweep (`--pool-scale a,b,...`);
    /// `None` runs the regular demo instead.
    pub pool_scale: Option<Vec<usize>>,
    /// Batch-class deadline in µs (`--batch-deadline-us`); `None` inherits
    /// `--deadline-us` for batch traffic too.
    pub batch_deadline_us: Option<u64>,
    /// Live metrics export: append one JSON snapshot line (plus journal events) to this
    /// path on every interval tick (`--metrics-jsonl`).
    pub metrics_jsonl: Option<String>,
    /// Export interval in milliseconds for `--metrics-jsonl` (`--metrics-interval-ms`).
    pub metrics_interval_ms: u64,
    /// Cross-process distributed serving (`--cluster N`): fork N worker processes, ship
    /// them the shard subsets and serve the workload through the scatter/gather
    /// coordinator instead of the in-process service.  0 keeps single-process serving.
    pub cluster: usize,
    /// Per-worker gather timeout in µs for cluster mode (`--worker-timeout-us`); a
    /// worker that misses it is declared lost and its queries degrade loudly.
    pub worker_timeout_us: u64,
    /// Applied maintenance records between pool compactions on the maintenance lane
    /// (`--compact-every`); 0 disables periodic compaction.
    pub compact_every: u64,
}

impl ServeDemoConfig {
    /// Defaults matching the tiny CI smoke: 4 shards, 2 threads, 64 queries in batches of
    /// 16; async mode off (flags switch it on) with a 200µs window, depth 32, 4 callers.
    pub fn new(experiment: ExperimentConfig) -> Self {
        ServeDemoConfig {
            experiment,
            preset_label: "tiny".to_string(),
            shards: 4,
            threads: 2,
            queries: 64,
            batch: 16,
            async_mode: false,
            batch_window_us: 200,
            queue_depth: 32,
            callers: 4,
            bench_json: None,
            online: false,
            refresh_interval: 16,
            probe_fraction: 0.25,
            gate_margin: 0.0,
            deadline_us: None,
            checkpoint_dir: None,
            checkpoint_every: 0,
            restart_budget: None,
            chaos: None,
            class_window_us: None,
            class_weights: None,
            cache_entries: 0,
            top_k: 0,
            pool_cap: 0,
            q_error_budget: 1.1,
            pool_scale: None,
            batch_deadline_us: None,
            metrics_jsonl: None,
            metrics_interval_ms: 50,
            cluster: 0,
            worker_timeout_us: 2_000_000,
            compact_every: 0,
        }
    }
}

/// One configuration's latency/throughput record inside [`BenchSummary`].
#[derive(Debug, Clone, Serialize)]
pub struct BenchRecord {
    /// `"sync"` or `"async"`.
    pub mode: String,
    /// The experiment preset.
    pub preset: String,
    /// Pool shard count.
    pub shards: usize,
    /// Worker threads.
    pub threads: usize,
    /// Async queue depth (0 in sync mode).
    pub queue_depth: usize,
    /// Async batching window in µs (0 in sync mode).
    pub batch_window_us: u64,
    /// Concurrent callers (1 in sync mode: the driver thread).
    pub callers: usize,
    /// Queries served.
    pub queries: usize,
    /// Batches executed (serve calls in sync mode).
    pub batches: u64,
    /// Mean executed batch size — the cross-call fusion factor.
    pub mean_batch: f64,
    /// Admission rejections observed by the load generator (always 0 in sync mode).
    pub rejected: u64,
    /// Median latency in µs (per request in async mode, per serve call in sync mode).
    pub p50_us: f64,
    /// 99th-percentile latency in µs.
    pub p99_us: f64,
    /// Mean latency in µs.
    pub mean_us: f64,
    /// End-to-end served queries per second.
    pub throughput_qps: f64,
    /// Callers registered `Batch`-class (0 outside the mixed async mode).
    pub batch_callers: usize,
    /// The batch class's effective batching window in µs (0 in sync mode).
    pub class_window_us: u64,
    /// Median / 99th-percentile latency in µs over interactive-class requests only
    /// (0 when no interactive caller ran).
    pub interactive_p50_us: f64,
    /// See [`BenchRecord::interactive_p50_us`].
    pub interactive_p99_us: f64,
    /// Median / 99th-percentile latency in µs over batch-class requests only
    /// (0 when no batch caller ran).
    pub batch_p50_us: f64,
    /// See [`BenchRecord::batch_p50_us`].
    pub batch_p99_us: f64,
    /// Configured estimate-cache capacity (0 = cache off).
    pub cache_entries: usize,
    /// Estimate-cache hits / misses over the whole run (warmup included).
    pub cache_hits: u64,
    /// See [`BenchRecord::cache_hits`].
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when the cache never probed.
    pub cache_hit_rate: f64,
    /// Pool entries this configuration served from.
    pub pool_entries: usize,
    /// Top-K anchor selection in force (0 = full-pool path).
    pub top_k: usize,
    /// Median q-error of the served estimates against executed truths — measured by
    /// the pool-scale sweep (0 in the regular demos, which gate on bit-parity with the
    /// sequential path instead).
    pub median_q_error: f64,
    /// Histogram-derived interactive-class p50 (µs): the driver's measured latencies
    /// replayed through a `crn-obs` log₂ histogram, cross-checked in-process against
    /// the sort-based `interactive_p50_us` to within one bucket.  0 outside async mode
    /// or when the class saw no traffic.
    pub hist_interactive_p50_us: u64,
    /// See [`BenchRecord::hist_interactive_p50_us`].
    pub hist_interactive_p99_us: u64,
    /// Histogram-derived batch-class p50 (µs); see
    /// [`BenchRecord::hist_interactive_p50_us`].
    pub hist_batch_p50_us: u64,
    /// See [`BenchRecord::hist_batch_p50_us`].
    pub hist_batch_p99_us: u64,
    /// Requests whose resolved ticket carried a recorded span.
    pub span_requests: usize,
    /// Mean per-request queue-wait segment (µs) over the recorded spans.
    pub span_queue_wait_us: f64,
    /// Mean batch-wait segment (µs): batch close → serve start, probe time excluded.
    pub span_batch_wait_us: f64,
    /// Mean cache-probe segment (µs); 0 with the cache off.
    pub span_cache_probe_us: f64,
    /// Mean shard-compute segment (µs) attributed from the service's phase stats.
    pub span_shard_compute_us: f64,
    /// Mean merge segment (µs) attributed from the service's phase stats.
    pub span_merge_us: f64,
    /// Worker processes of the cluster mode (0 = single-process serving).
    pub cluster_workers: usize,
    /// Queries answered by the coordinator-local degraded path (0 outside cluster
    /// mode; non-zero means a worker was lost or timed out mid-run).
    pub degraded_queries: u64,
}

/// The `BENCH_serving.json` shape: a schema tag plus one record per measured config.
#[derive(Debug, Clone, Serialize)]
pub struct BenchSummary {
    /// Format version tag for downstream tooling.
    pub schema: String,
    /// The measured configurations.
    pub configs: Vec<BenchRecord>,
}

/// Nearest-rank percentile over an unsorted latency sample (µs), 0 for an empty sample.
fn percentile_us(latencies: &mut [f64], fraction: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((latencies.len() - 1) as f64 * fraction).round() as usize;
    latencies[rank]
}

/// Runs the serve demo, returning the printed report (one line per batch plus the
/// summary) — or an `Err` describing the first bit-parity violation, which the `repro`
/// binary turns into a non-zero exit (the CI smoke's tripwire).
pub fn run_serve_demo(config: &ServeDemoConfig) -> Result<String, String> {
    let started = Instant::now();
    let ctx = ExperimentContext::build(config.experiment.clone());
    let mut lines = vec![format!(
        "[serve] context ready in {:.1}s: pool of {} entries over {} FROM clauses",
        started.elapsed().as_secs_f64(),
        ctx.pool.len(),
        ctx.pool.num_from_clauses()
    )];

    // The production-scale sweep replaces the regular demo outright: it builds its own
    // pools (one per requested size) and gates on estimator-quality parity and
    // sublinear latency growth instead of bit-parity with a single configuration.
    if let Some(sizes) = &config.pool_scale {
        let records = match run_pool_scale_sweep(config, &ctx, sizes, &mut lines) {
            Ok(records) => records,
            Err(violation) => {
                eprintln!("{}", lines.join("\n"));
                return Err(violation);
            }
        };
        if let Some(path) = &config.bench_json {
            let summary = BenchSummary {
                schema: "crn-serve-bench-v1".to_string(),
                configs: records,
            };
            let json =
                serde_json::to_string(&summary).map_err(|e| format!("bench json render: {e}"))?;
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            lines.push(format!("[serve] wrote pool-scale bench summary to {path}"));
        }
        return Ok(lines.join("\n"));
    }

    // Startup restore: with --checkpoint-dir pointing at a committed checkpoint, the
    // serving state (pool + model, optimizer moments included) comes from disk instead
    // of the freshly-built context — a restarted process resumes exactly where the
    // crashed one checkpointed.  A corrupt or version-skewed checkpoint fails loudly;
    // only a *missing* one falls back to the fresh context.
    let (model, base_pool) = match config.checkpoint_dir.as_deref() {
        Some(dir) => {
            let restore_started = Instant::now();
            match Checkpoint::load(dir) {
                Ok((checkpoint, manifest)) => {
                    lines.push(format!(
                        "[serve] restored checkpoint seq {} (model v{}, pool {} entries) \
                         from {dir} in {:.0}us",
                        manifest.sequence,
                        checkpoint.model_version,
                        checkpoint.pool.len(),
                        restore_started.elapsed().as_secs_f64() * 1e6,
                    ));
                    (checkpoint.model, checkpoint.pool)
                }
                Err(CheckpointError::Missing) => {
                    lines.push(format!(
                        "[serve] no committed checkpoint in {dir}; starting fresh"
                    ));
                    (ctx.crn.clone(), ctx.pool.clone())
                }
                Err(e) => return Err(format!("checkpoint restore from {dir} failed: {e}")),
            }
        }
        None => (ctx.crn.clone(), ctx.pool.clone()),
    };

    let mut sharded = ShardedPool::from_pool(&base_pool, config.shards);
    if config.pool_cap > 0 {
        sharded = sharded.with_capacity(config.pool_cap);
    }
    // One estimator config for BOTH the served and the sequential path: parity then
    // holds at any --top-k, because the two paths select the same ranked anchor set.
    let estimator_config = Cnt2CrdConfig {
        top_k: config.top_k,
        ..Cnt2CrdConfig::default()
    };
    let workers = WorkerPool::shared(config.threads.max(1));
    // The demo always runs with observability enabled (the hist/span fields in the
    // bench record come from it); the zero-overhead disabled path is pinned by the
    // serving-runtime tests and the obs-off criterion baseline instead.
    let obs = crn_obs::Obs::new(crn_obs::ObsConfig::enabled());
    let service = Arc::new(
        EstimatorService::new(model.clone(), sharded, workers)
            .with_config(estimator_config)
            .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db)))
            .with_obs(&obs),
    );

    // `generate_queries` expands each initial query with perturbed variants, so truncate to
    // the requested workload size exactly.
    let mut generator =
        QueryGenerator::new(&ctx.db, GeneratorConfig::paper(ctx.config.seed ^ 0x5e));
    let mut workload: Vec<Query> = generator.generate_queries(config.queries.max(1));
    workload.truncate(config.queries.max(1));

    // Cluster mode replaces the in-process service with the scatter/gather coordinator
    // over forked worker processes; it builds its own sequential oracle from the same
    // model and pool, so the startup parity tripwire spans process boundaries.
    if config.cluster > 0 {
        let record = match run_cluster_demo(
            config,
            &ctx,
            estimator_config,
            &model,
            &base_pool,
            &workload,
            &mut lines,
        ) {
            Ok(record) => record,
            Err(violation) => {
                eprintln!("{}", lines.join("\n"));
                return Err(violation);
            }
        };
        if let Some(path) = &config.bench_json {
            let summary = BenchSummary {
                schema: "crn-serve-bench-v1".to_string(),
                configs: vec![record],
            };
            let json =
                serde_json::to_string(&summary).map_err(|e| format!("bench json render: {e}"))?;
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            lines.push(format!("[serve] wrote cluster bench summary to {path}"));
        }
        return Ok(lines.join("\n"));
    }

    let sequential = Cnt2Crd::new(model, base_pool)
        .with_config(estimator_config)
        .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db)));

    if let Some(plan) = &config.chaos {
        let summary = if plan.trim() == "crash-restore" {
            run_crash_restore_demo(config, &ctx, &workload, &mut lines)
        } else {
            run_chaos_demo(config, &ctx, &service, &obs, plan, &workload, &mut lines)
        };
        let summary = match summary {
            Ok(summary) => summary,
            Err(violation) => {
                eprintln!("{}", lines.join("\n"));
                return Err(violation);
            }
        };
        if let Some(path) = &config.bench_json {
            let json =
                serde_json::to_string(&summary).map_err(|e| format!("bench json render: {e}"))?;
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            lines.push(format!("[serve] wrote chaos bench summary to {path}"));
        }
        return Ok(lines.join("\n"));
    }

    if config.online {
        let summary = match run_online_demo(
            config,
            &ctx,
            &service,
            &obs,
            &sequential,
            &workload,
            &mut lines,
        ) {
            Ok(summary) => summary,
            Err(violation) => {
                // The report so far is the diagnostic context of the violation: emit it
                // on stderr so the CI log shows what led up to the non-zero exit.
                eprintln!("{}", lines.join("\n"));
                return Err(violation);
            }
        };
        if let Some(path) = &config.bench_json {
            let json =
                serde_json::to_string(&summary).map_err(|e| format!("bench json render: {e}"))?;
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            lines.push(format!("[serve] wrote online bench summary to {path}"));
        }
        return Ok(lines.join("\n"));
    }

    let record = if config.async_mode {
        run_async_demo(
            config,
            &ctx,
            &service,
            &obs,
            &sequential,
            &workload,
            &mut lines,
        )?
    } else {
        run_sync_demo(config, &service, &sequential, &workload, &mut lines)?
    };

    if let Some(path) = &config.bench_json {
        let summary = BenchSummary {
            schema: "crn-serve-bench-v1".to_string(),
            configs: vec![record],
        };
        let json =
            serde_json::to_string(&summary).map_err(|e| format!("bench json render: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        lines.push(format!("[serve] wrote bench summary to {path}"));
    }
    Ok(lines.join("\n"))
}

/// The startup parity tripwire shared by both modes: every estimate of the first batch
/// must be bit-identical to the sequential single-query path.
fn verify_parity(
    estimates: &[f64],
    queries: &[Query],
    sequential: &Cnt2Crd<crn_core::CrnModel>,
    mode: &str,
) -> Result<(), String> {
    for (index, (query, estimate)) in queries.iter().zip(estimates).enumerate() {
        let expected = sequential.estimate(query);
        if *estimate != expected {
            return Err(format!(
                "parity violation ({mode}) at query {index}: served {estimate} vs \
                 sequential {expected}"
            ));
        }
    }
    Ok(())
}

/// The synchronous demo: the whole workload in `batch`-sized `serve` calls.
fn run_sync_demo(
    config: &ServeDemoConfig,
    service: &EstimatorService<crn_core::CrnModel>,
    sequential: &Cnt2Crd<crn_core::CrnModel>,
    workload: &[Query],
    lines: &mut Vec<String>,
) -> Result<BenchRecord, String> {
    let first_batch = &workload[..workload.len().min(config.batch.max(1))];
    let response = service.serve(first_batch);
    verify_parity(&response.estimates, first_batch, sequential, "sync")?;
    lines.push(format!(
        "[serve] parity check passed: {} estimates bit-identical to the sequential path",
        first_batch.len()
    ));

    let mut total = ServeStats::default();
    let mut latencies_us: Vec<f64> = Vec::new();
    let run_started = Instant::now();
    for chunk in workload.chunks(config.batch.max(1)) {
        let call_started = Instant::now();
        let response = service.serve(chunk);
        latencies_us.push(call_started.elapsed().as_secs_f64() * 1e6);
        lines.push(format!("[serve] {}", response.stats.render()));
        total.accumulate(&response.stats);
    }
    let elapsed = run_started.elapsed();
    let batches = latencies_us.len() as u64;
    lines.push(format!(
        "[serve] served {} queries over {} shards x {} threads in {:.3}s ({:.0} queries/s); \
         {} pool hits, {} fallbacks; layer time: snapshot {:.1?} group {:.1?} compute {:.1?} \
         merge {:.1?}",
        total.queries,
        config.shards,
        config.threads,
        elapsed.as_secs_f64(),
        total.queries as f64 / elapsed.as_secs_f64().max(1e-9),
        total.pool_hits,
        total.fallbacks,
        total.snapshot_time,
        total.group_time,
        total.compute_time,
        total.merge_time,
    ));
    let mean_us = latencies_us.iter().sum::<f64>() / latencies_us.len().max(1) as f64;
    Ok(BenchRecord {
        mode: "sync".to_string(),
        preset: config.preset_label.clone(),
        shards: config.shards,
        threads: config.threads,
        queue_depth: 0,
        batch_window_us: 0,
        callers: 1,
        queries: total.queries,
        batches,
        mean_batch: total.queries as f64 / batches.max(1) as f64,
        rejected: 0,
        p50_us: percentile_us(&mut latencies_us, 0.50),
        p99_us: percentile_us(&mut latencies_us, 0.99),
        mean_us,
        throughput_qps: total.queries as f64 / elapsed.as_secs_f64().max(1e-9),
        batch_callers: 0,
        class_window_us: 0,
        interactive_p50_us: 0.0,
        interactive_p99_us: 0.0,
        batch_p50_us: 0.0,
        batch_p99_us: 0.0,
        cache_entries: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_hit_rate: 0.0,
        pool_entries: service.pool().len(),
        top_k: config.top_k,
        median_q_error: 0.0,
        hist_interactive_p50_us: 0,
        hist_interactive_p99_us: 0,
        hist_batch_p50_us: 0,
        hist_batch_p99_us: 0,
        span_requests: 0,
        span_queue_wait_us: 0.0,
        span_batch_wait_us: 0.0,
        span_cache_probe_us: 0.0,
        span_shard_compute_us: 0.0,
        span_merge_us: 0.0,
        cluster_workers: 0,
        degraded_queries: 0,
    })
}

/// The cluster demo (`repro serve --cluster N`): forks N worker *processes* (this same
/// binary in `cluster-worker` mode), ships each its shard subset over the wire,
/// verifies the first scatter/gather batch **bit-for-bit** against the sequential
/// single-query path (the cross-process parity tripwire — a violation exits non-zero),
/// then drives the workload through a closed-loop [`ServeRuntime`] over the coordinator
/// and reports latency plus the degraded-query accounting.
#[allow(clippy::too_many_arguments)]
fn run_cluster_demo(
    config: &ServeDemoConfig,
    ctx: &ExperimentContext,
    estimator_config: Cnt2CrdConfig,
    model: &CrnModel,
    base_pool: &QueriesPool,
    workload: &[Query],
    lines: &mut Vec<String>,
) -> Result<BenchRecord, String> {
    use std::io::BufRead;

    let kill_fleet = |children: &mut Vec<std::process::Child>| {
        for child in children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    };

    // Fork the fleet: each worker binds an ephemeral loopback port and announces it on
    // stdout as `CLUSTER_WORKER_PORT=<port>` before blocking in its serve loop.
    let workers = config.cluster;
    let exe = std::env::current_exe().map_err(|e| format!("cluster: current_exe: {e}"))?;
    let mut children: Vec<std::process::Child> = Vec::new();
    let mut addrs: Vec<std::net::SocketAddr> = Vec::new();
    let spawn_started = Instant::now();
    for worker in 0..workers {
        let mut child = std::process::Command::new(&exe)
            .arg("cluster-worker")
            .arg("--threads")
            .arg(config.threads.max(1).to_string())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cluster: fork worker {worker}: {e}"))?;
        let stdout = child.stdout.take().expect("piped stdout");
        children.push(child);
        let mut reader = std::io::BufReader::new(stdout);
        let mut line = String::new();
        let port = loop {
            line.clear();
            let read = reader
                .read_line(&mut line)
                .map_err(|e| format!("cluster: worker {worker} stdout: {e}"))?;
            if read == 0 {
                kill_fleet(&mut children);
                return Err(format!(
                    "cluster: worker {worker} exited before announcing its port"
                ));
            }
            if let Some(rest) = line.trim().strip_prefix("CLUSTER_WORKER_PORT=") {
                match rest.parse::<u16>() {
                    Ok(port) => break port,
                    Err(e) => {
                        kill_fleet(&mut children);
                        return Err(format!(
                            "cluster: worker {worker} announced a bad port {rest:?}: {e}"
                        ));
                    }
                }
            }
        };
        addrs.push(std::net::SocketAddr::from(([127, 0, 0, 1], port)));
    }
    lines.push(format!(
        "[serve] cluster: forked {workers} worker processes in {:.0}ms ({})",
        spawn_started.elapsed().as_secs_f64() * 1e3,
        addrs
            .iter()
            .map(|addr| addr.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    ));

    let options = ClusterOptions {
        config: estimator_config,
        worker_timeout: std::time::Duration::from_micros(config.worker_timeout_us.max(1)),
        ..ClusterOptions::default()
    };
    let client =
        match ClusterClient::connect(&addrs, model.clone(), base_pool, config.shards, options) {
            Ok(client) => client.with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db))),
            Err(e) => {
                kill_fleet(&mut children);
                return Err(format!("cluster: connect failed: {e}"));
            }
        };

    // The startup parity tripwire, now spanning process boundaries: the first
    // scatter/gather batch must match the sequential single-query oracle bit-for-bit.
    let sequential = Cnt2Crd::new(model.clone(), base_pool.clone())
        .with_config(estimator_config)
        .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db)));
    let first_batch = &workload[..workload.len().min(config.batch.max(1))];
    let response = client.serve(first_batch);
    if !response.degraded.is_empty() {
        kill_fleet(&mut children);
        return Err(format!(
            "cluster: startup batch degraded queries {:?} — fleet unhealthy at launch",
            response.degraded
        ));
    }
    if let Err(violation) = verify_parity(&response.estimates, first_batch, &sequential, "cluster")
    {
        kill_fleet(&mut children);
        return Err(violation);
    }
    lines.push(format!(
        "[serve] cluster parity check passed: {} scatter/gather estimates bit-identical \
         to the sequential path",
        first_batch.len()
    ));

    // The measured run: the same closed-loop load shape as the async demo, but the
    // runtime's backend is the cluster coordinator — every batch crosses the wire.
    let callers = config.callers.max(1);
    let client = Arc::new(client);
    let runtime = ServeRuntime::new(
        Arc::clone(&client),
        resilient_runtime_config(config, callers),
    );
    let run_started = Instant::now();
    let mut latencies_us: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let runtime = &runtime;
        let handles: Vec<_> = (0..callers)
            .map(|caller| {
                scope.spawn(move || {
                    let mut own = Vec::new();
                    for (index, query) in workload.iter().enumerate() {
                        if index % callers == caller {
                            let submitted = Instant::now();
                            let outcome = runtime
                                .submit_retrying(caller as u64, query)
                                .expect("the driver owns the runtime")
                                .wait();
                            if outcome.is_ok() {
                                own.push(submitted.elapsed().as_secs_f64() * 1e6);
                            }
                        }
                    }
                    own
                })
            })
            .collect();
        for handle in handles {
            latencies_us.extend(handle.join().expect("caller thread"));
        }
    });
    let elapsed = run_started.elapsed();

    // Maintenance-lane feedback: upserts are mirrored locally and forwarded to the
    // owning worker, and (with --compact-every) periodic compaction re-ships the
    // compacted shards — the cross-process pool-refresh loop live.
    let executor = crn_exec::Executor::new(&ctx.db);
    for query in workload.iter().take(workload.len().min(8)) {
        let cardinality = executor.cardinality(query);
        if runtime.record_feedback(query.clone(), cardinality).is_err() {
            break;
        }
    }
    runtime.flush();
    let runtime_stats = runtime.shutdown();

    let stats = client.stats();
    lines.push(format!(
        "[serve] cluster: {} coordinator batches over {} workers ({} up at shutdown); \
         {} degraded queries, {} worker losses, {} reconnects, {} upserts forwarded",
        stats.batches,
        stats.workers,
        stats.workers_up,
        stats.degraded_queries,
        stats.worker_losses,
        stats.reconnects,
        stats.upserts_forwarded,
    ));

    // Orderly teardown: Shutdown frames first, then reap; a worker that survived a
    // severed link cannot receive the frame, so reap with a bounded grace period.
    client.shutdown_workers();
    for (worker, mut child) in children.into_iter().enumerate() {
        let mut reaped = false;
        for _ in 0..250 {
            match child.try_wait() {
                Ok(Some(status)) => {
                    if !status.success() {
                        lines.push(format!(
                            "[serve] cluster: worker {worker} exited with {status}"
                        ));
                    }
                    reaped = true;
                    break;
                }
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(20)),
                Err(e) => {
                    lines.push(format!("[serve] cluster: worker {worker} wait failed: {e}"));
                    reaped = true;
                    break;
                }
            }
        }
        if !reaped {
            let _ = child.kill();
            let _ = child.wait();
            lines.push(format!(
                "[serve] cluster: worker {worker} missed the shutdown grace period; killed"
            ));
        }
    }

    let total_queries = latencies_us.len();
    let mean_us = latencies_us.iter().sum::<f64>() / latencies_us.len().max(1) as f64;
    Ok(BenchRecord {
        mode: "cluster".to_string(),
        preset: config.preset_label.clone(),
        shards: config.shards,
        threads: config.threads,
        queue_depth: config.queue_depth,
        batch_window_us: config.batch_window_us,
        callers,
        queries: total_queries,
        batches: runtime_stats.batches,
        mean_batch: if runtime_stats.batches == 0 {
            0.0
        } else {
            runtime_stats.completed as f64 / runtime_stats.batches as f64
        },
        rejected: runtime_stats.rejected_queue_full
            + runtime_stats.rejected_caller_quota
            + runtime_stats.rejected_class_share,
        p50_us: percentile_us(&mut latencies_us, 0.50),
        p99_us: percentile_us(&mut latencies_us, 0.99),
        mean_us,
        throughput_qps: total_queries as f64 / elapsed.as_secs_f64().max(1e-9),
        batch_callers: 0,
        class_window_us: 0,
        interactive_p50_us: 0.0,
        interactive_p99_us: 0.0,
        batch_p50_us: 0.0,
        batch_p99_us: 0.0,
        cache_entries: config.cache_entries,
        cache_hits: 0,
        cache_misses: 0,
        cache_hit_rate: 0.0,
        pool_entries: base_pool.len(),
        top_k: config.top_k,
        median_q_error: 0.0,
        hist_interactive_p50_us: 0,
        hist_interactive_p99_us: 0,
        hist_batch_p50_us: 0,
        hist_batch_p99_us: 0,
        span_requests: 0,
        span_queue_wait_us: 0.0,
        span_batch_wait_us: 0.0,
        span_cache_probe_us: 0.0,
        span_shard_compute_us: 0.0,
        span_merge_us: 0.0,
        cluster_workers: workers,
        degraded_queries: stats.degraded_queries,
    })
}

/// Deterministically grows the context pool to `target` entries by cloning
/// predicate-bearing anchors with shifted literals and perturbed cardinalities — the
/// synthetic production-scale pool of the `--pool-scale` sweep.  Every variant keeps
/// its base's structure (FROM clause, joins, predicate shapes), so the workload
/// exercises the same FROM buckets at every size and bucket sizes grow proportionally
/// with the pool.
fn synthesize_pool(base: &QueriesPool, target: usize) -> Result<QueriesPool, String> {
    if base.len() >= target {
        return Ok(base.truncated(target));
    }
    let mut pool = base.clone();
    let perturbable: Vec<(Query, u64)> = base
        .entries()
        .iter()
        .filter(|e| !e.query.predicates().is_empty())
        .map(|e| (e.query.clone(), e.cardinality))
        .collect();
    if perturbable.is_empty() {
        return Err("pool-scale: the base pool has no predicate-bearing entries".to_string());
    }
    let mut variant = 0usize;
    // `insert` dedups, so a (rare) literal collision with a resident entry just skips a
    // variant; the attempt bound keeps a pathological base pool from spinning forever.
    let max_attempts = target.saturating_mul(2) + 1_000;
    while pool.len() < target {
        if variant > max_attempts {
            return Err(format!(
                "pool-scale: could not synthesize {target} entries ({} after {variant} \
                 attempts)",
                pool.len()
            ));
        }
        let (query, cardinality) = &perturbable[variant % perturbable.len()];
        let round = (variant / perturbable.len() + 1) as i64;
        let predicate = query.predicates()[0].clone();
        let shifted = crn_query::ast::Predicate::new(
            predicate.column.clone(),
            predicate.op,
            predicate.value.wrapping_add(round.wrapping_mul(7_919)),
        );
        pool.insert(
            query.with_replaced_predicate(0, shifted),
            cardinality + (variant % 31) as u64 + 1,
        );
        variant += 1;
    }
    Ok(pool)
}

/// The production-scale latency sweep (`repro serve --pool-scale a,b,...`): per
/// requested pool size, the whole workload is served query-at-a-time through two arms —
/// the full-pool path (`top_k = 0`, per-anchor model inference over entire FROM
/// buckets) and the top-K path (cheap featurization-space scoring selects the K most
/// similar anchors; only those reach the model) — recording per-query p50/p99 latency
/// curves and median q-errors into `BENCH_serving.json`.
///
/// Hard gates (each returns `Err`, so `repro` exits non-zero and CI fails loudly):
///
/// * **Estimator-quality parity budget**, per size: the top-K arm's median q-error must
///   not exceed the full arm's by more than `--q-error-budget`.
/// * **Sublinear growth**, with ≥ 2 sizes: the top-K arm's p50 may grow by at most half
///   the pool-size ratio between the smallest and largest size (the full arm's per-query
///   cost is Θ(bucket), i.e. linear in the pool).
/// * **Top-K wins at scale**: at the largest size the top-K arm's p50 must sit below
///   the full arm's.
fn run_pool_scale_sweep(
    config: &ServeDemoConfig,
    ctx: &ExperimentContext,
    sizes: &[usize],
    lines: &mut Vec<String>,
) -> Result<Vec<BenchRecord>, String> {
    if sizes.is_empty() {
        return Err("--pool-scale needs at least one size".to_string());
    }
    let top_k = if config.top_k > 0 { config.top_k } else { 32 };
    let workers = WorkerPool::shared(config.threads.max(1));
    let mut generator =
        QueryGenerator::new(&ctx.db, GeneratorConfig::paper(ctx.config.seed ^ 0x5e));
    let mut workload: Vec<Query> = generator.generate_queries(config.queries.max(1));
    workload.truncate(config.queries.max(1));
    let executor = crn_exec::Executor::new(&ctx.db);
    let truths: Vec<u64> = workload.iter().map(|q| executor.cardinality(q)).collect();
    lines.push(format!(
        "[serve] pool-scale sweep: sizes {:?}, top-K {top_k}, {} queries/arm, q-error \
         budget {:.2}x",
        sizes,
        workload.len(),
        config.q_error_budget,
    ));

    let mut records: Vec<BenchRecord> = Vec::new();
    // Per size: (pool entries, full-arm p50 µs, top-K-arm p50 µs).
    let mut curve: Vec<(usize, f64, f64)> = Vec::new();
    for &size in sizes {
        let pool = synthesize_pool(&ctx.pool, size)?;
        let mut arm_median = [0.0f64; 2];
        let mut arm_p50 = [0.0f64; 2];
        for (arm, k) in [(0usize, 0usize), (1, top_k)] {
            let service = EstimatorService::new(
                ctx.crn.clone(),
                ShardedPool::from_pool(&pool, config.shards),
                workers.clone(),
            )
            .with_config(Cnt2CrdConfig {
                top_k: k,
                ..Cnt2CrdConfig::default()
            })
            .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db)));
            // One warmup serve primes lazily-built state so the measured single-query
            // latencies below are steady-state retrieval + inference.
            let _ = service.serve(&workload[..1]);
            let mut latencies_us: Vec<f64> = Vec::with_capacity(workload.len());
            let mut estimates: Vec<f64> = Vec::with_capacity(workload.len());
            let run_started = Instant::now();
            for query in &workload {
                let serve_started = Instant::now();
                let response = service.serve(std::slice::from_ref(query));
                latencies_us.push(serve_started.elapsed().as_secs_f64() * 1e6);
                estimates.push(response.estimates[0]);
            }
            let elapsed = run_started.elapsed();
            let median = median_q_error(&estimates, &truths);
            let mean_us = latencies_us.iter().sum::<f64>() / latencies_us.len().max(1) as f64;
            let p50 = percentile_us(&mut latencies_us, 0.50);
            let p99 = percentile_us(&mut latencies_us, 0.99);
            arm_median[arm] = median;
            arm_p50[arm] = p50;
            records.push(BenchRecord {
                mode: if k == 0 {
                    "pool-scale-full".to_string()
                } else {
                    "pool-scale-topk".to_string()
                },
                preset: config.preset_label.clone(),
                shards: config.shards,
                threads: config.threads,
                queue_depth: 0,
                batch_window_us: 0,
                callers: 1,
                queries: workload.len(),
                batches: workload.len() as u64,
                mean_batch: 1.0,
                rejected: 0,
                p50_us: p50,
                p99_us: p99,
                mean_us,
                throughput_qps: workload.len() as f64 / elapsed.as_secs_f64().max(1e-9),
                batch_callers: 0,
                class_window_us: 0,
                interactive_p50_us: 0.0,
                interactive_p99_us: 0.0,
                batch_p50_us: 0.0,
                batch_p99_us: 0.0,
                cache_entries: 0,
                cache_hits: 0,
                cache_misses: 0,
                cache_hit_rate: 0.0,
                pool_entries: pool.len(),
                top_k: k,
                median_q_error: median,
                hist_interactive_p50_us: 0,
                hist_interactive_p99_us: 0,
                hist_batch_p50_us: 0,
                hist_batch_p99_us: 0,
                span_requests: 0,
                span_queue_wait_us: 0.0,
                span_batch_wait_us: 0.0,
                span_cache_probe_us: 0.0,
                span_shard_compute_us: 0.0,
                span_merge_us: 0.0,
                cluster_workers: 0,
                degraded_queries: 0,
            });
        }
        lines.push(format!(
            "[serve] pool {} entries: full p50 {:.0}us (median q-error {:.3}) vs top-{} \
             p50 {:.0}us (median q-error {:.3})",
            pool.len(),
            arm_p50[0],
            arm_median[0],
            top_k,
            arm_p50[1],
            arm_median[1],
        ));
        // The estimator-quality parity budget, per size.
        if arm_median[1] > arm_median[0] * config.q_error_budget {
            return Err(format!(
                "pool-scale quality violation at {} entries: top-{top_k} median q-error \
                 {:.3} exceeds the full-pool {:.3} by more than the {:.2}x budget",
                pool.len(),
                arm_median[1],
                arm_median[0],
                config.q_error_budget,
            ));
        }
        curve.push((pool.len(), arm_p50[0], arm_p50[1]));
    }

    if curve.len() >= 2 {
        let (first_size, _, first_topk) = curve[0];
        let (last_size, last_full, last_topk) = curve[curve.len() - 1];
        let size_ratio = last_size as f64 / first_size.max(1) as f64;
        let growth = last_topk / first_topk.max(1e-9);
        if growth > 0.5 * size_ratio {
            return Err(format!(
                "pool-scale latency violation: top-{top_k} p50 grew {growth:.2}x over a \
                 {size_ratio:.2}x pool-size ratio (bound: {:.2}x) — retrieval is not \
                 sublinear",
                0.5 * size_ratio,
            ));
        }
        if last_topk >= last_full {
            return Err(format!(
                "pool-scale latency violation: top-{top_k} p50 {last_topk:.0}us is not \
                 below the full-pool p50 {last_full:.0}us at {last_size} entries",
            ));
        }
        lines.push(format!(
            "[serve] pool-scale gates hold: top-{top_k} p50 grew {growth:.2}x over a \
             {size_ratio:.2}x size ratio (bound {:.2}x) and beats the full path at \
             {last_size} entries",
            0.5 * size_ratio,
        ));
    }
    Ok(records)
}

/// The async demo: runtime + closed-loop multi-caller load generator + maintenance lane.
#[allow(clippy::too_many_arguments)]
fn run_async_demo(
    config: &ServeDemoConfig,
    ctx: &ExperimentContext,
    service: &Arc<EstimatorService<crn_core::CrnModel>>,
    obs: &crn_obs::Obs,
    sequential: &Cnt2Crd<crn_core::CrnModel>,
    workload: &[Query],
    lines: &mut Vec<String>,
) -> Result<BenchRecord, String> {
    let callers = config.callers.max(1);
    let runtime_config = resilient_runtime_config(config, callers).with_obs(obs.clone());
    let runtime = ServeRuntime::new(Arc::clone(service), runtime_config);
    attach_checkpoint_sink(config, service, &runtime, lines);
    let emitter = spawn_metrics_emitter(config, obs, lines)?;
    lines.push(format!(
        "[serve] async runtime up: window {}us, queue depth {}, per-caller quota {}, \
         batch max {}, deadline {}, restart budget {}/lane",
        config.batch_window_us,
        runtime.config().queue_depth,
        runtime.config().per_caller_depth,
        runtime.config().batch_max,
        match config.deadline_us {
            Some(us) => format!("{us}us"),
            None => "off".to_string(),
        },
        runtime.config().restart_policy.max_restarts,
    ));

    // Mixed SLO-class traffic: setting either class knob registers every odd-indexed
    // caller as `Batch`-class, so the run exercises per-class windows and (with
    // `--class-weights`) the weighted admission shares.
    let mixed = config.class_window_us.is_some() || config.class_weights.is_some();
    let batch_callers = if mixed { callers / 2 } else { 0 };
    if mixed {
        for caller in 0..callers {
            if caller % 2 == 1 {
                runtime.register_caller(caller as u64, SloClass::Batch);
            }
        }
        let class_window = runtime.config().class_window(SloClass::Batch);
        lines.push(format!(
            "[serve] SLO classes on: {} interactive + {} batch callers, batch-class \
             window {:.0}us, weights {}, cache {} entries",
            callers - batch_callers,
            batch_callers,
            class_window.as_secs_f64() * 1e6,
            match config.class_weights {
                Some((i, b)) => format!("{i}:{b}"),
                None => "off".to_string(),
            },
            config.cache_entries,
        ));
    }

    // Parity tripwire: the first batch goes through the *runtime* (so the whole
    // queue → scheduler → service path is on the hook), checked against the sequential
    // single-query semantics.  Closed-loop one at a time: the warmup then neither skews
    // `max_batch` nor the fusion stats of the measured run below.
    let first_batch = &workload[..workload.len().min(config.batch.max(1))];
    let estimates = serve_all(&runtime, 0, first_batch)?;
    verify_parity(&estimates, first_batch, sequential, "async")?;
    lines.push(format!(
        "[serve] parity check passed: {} async estimates bit-identical to the sequential \
         path",
        first_batch.len()
    ));

    // The measured run: closed-loop callers, per-request latencies bucketed by SLO
    // class.  With the cache on the workload runs twice, so the second pass measures
    // the hit path.  Every counter reported below deltas against this snapshot so the
    // parity warmup stays out of the measured figures.
    let passes = if config.cache_entries > 0 { 2 } else { 1 };
    let pre_load = runtime.stats();
    let run_started = Instant::now();
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut interactive_us: Vec<f64> = Vec::new();
    let mut batch_us: Vec<f64> = Vec::new();
    let mut spans: Vec<crn_obs::RequestTrace> = Vec::new();
    let mut queued_gauge = [0u64; SloClass::COUNT];
    // The driver's own view of the measured latencies, replayed through crn-obs log₂
    // histograms: same samples as the sort-based percentiles below, so the two must
    // agree to within one bucket (the cross-check at the end of this function).
    let driver_hists = [
        obs.hist("driver.latency_us.interactive"),
        obs.hist("driver.latency_us.batch"),
    ];
    std::thread::scope(|scope| {
        let runtime = &runtime;
        let handles: Vec<_> = (0..callers)
            .map(|caller| {
                scope.spawn(move || {
                    let mut own = Vec::new();
                    let mut own_spans = Vec::new();
                    for _pass in 0..passes {
                        for (index, query) in workload.iter().enumerate() {
                            if index % callers == caller {
                                let submitted = Instant::now();
                                let outcome = runtime
                                    .submit_retrying(caller as u64, query)
                                    .expect("the driver owns the runtime")
                                    .wait();
                                // Expired/failed tickets are visible in the runtime's
                                // own counters; only served requests fund the latency
                                // sample.
                                if let Ok(outcome) = outcome {
                                    own.push(submitted.elapsed().as_secs_f64() * 1e6);
                                    if let Some(trace) = outcome.trace {
                                        own_spans.push(trace);
                                    }
                                    debug_assert!(outcome.estimate >= 0.0);
                                }
                            }
                        }
                    }
                    (caller, own, own_spans)
                })
            })
            .collect();
        // A mid-load point-in-time sample of the per-class queue-depth gauge: the
        // closed-loop callers are in flight right now, so this observes live depths
        // (possibly 0 when the scheduler drains faster than submission).
        std::thread::sleep(std::time::Duration::from_micros(500));
        queued_gauge = runtime.stats().queued_by_class;
        for handle in handles {
            let (caller, own, own_spans) = handle.join().expect("caller thread");
            let class = if mixed && caller % 2 == 1 {
                SloClass::Batch
            } else {
                SloClass::Interactive
            };
            for &latency in &own {
                driver_hists[class.index()].record(latency as u64);
            }
            if class == SloClass::Batch {
                batch_us.extend(own.iter().copied());
            } else {
                interactive_us.extend(own.iter().copied());
            }
            latencies_us.extend(own);
            spans.extend(own_spans);
        }
    });
    let elapsed = run_started.elapsed();

    // Cache parity tripwire: with the cache warm, re-serving the warmup batch replays
    // from it — and must STILL be bit-identical to the sequential single-query path.
    // (Runs before the feedback phase: maintenance upserts move the pool version, which
    // by design would turn these replays back into recomputations.)
    if config.cache_entries > 0 {
        let replayed = serve_all(&runtime, 0, first_batch)?;
        verify_parity(&replayed, first_batch, sequential, "async-cache")?;
        lines.push(format!(
            "[serve] cache parity check passed: {} warm replays bit-identical to the \
             sequential path",
            first_batch.len()
        ));
    }

    // The maintenance lane: feed true cardinalities of the first few served queries back
    // into the pool (the §5.2 refresh loop) and wait for the upserts to land.
    let executor = crn_exec::Executor::new(&ctx.db);
    let feedback = workload.len().min(8);
    for query in workload.iter().take(feedback) {
        let cardinality = executor.cardinality(query);
        if runtime.record_feedback(query.clone(), cardinality).is_err() {
            break;
        }
    }
    runtime.flush();

    let class_window = runtime.config().class_window(SloClass::Batch);
    let base_window = runtime.config().batch_window;
    let stats = runtime.shutdown();
    let rejected =
        stats.rejected_queue_full + stats.rejected_caller_quota + stats.rejected_class_share
            - pre_load.rejected_queue_full
            - pre_load.rejected_caller_quota
            - pre_load.rejected_class_share;
    let load_completed = stats.completed - pre_load.completed;
    let load_batches = stats.batches - pre_load.batches;
    let load_mean_batch = if load_batches == 0 {
        0.0
    } else {
        load_completed as f64 / load_batches as f64
    };
    lines.push(format!(
        "[serve] async: {} completed in {} batches (mean {:.2}, max {}, {} coalesced) — \
         {} size-closed, {} window-closed, {} drain-closed; {} rejections absorbed by \
         retries; maintenance applied {} refreshes, {} failed (pool now {} entries)",
        load_completed,
        load_batches,
        load_mean_batch,
        stats.max_batch,
        stats.coalesced,
        stats.size_closes - pre_load.size_closes,
        stats.window_closes - pre_load.window_closes,
        stats.drain_closes - pre_load.drain_closes,
        rejected,
        stats.maintenance_applied,
        stats.maintenance_failed,
        service.pool().len(),
    ));
    lines.push(format!(
        "[serve] resilience: {} expired, {} failed, {} degraded, {} sync-served; \
         restarts scheduler {} maintenance {}{}{}; checkpoints {} written, {} failed",
        stats.expired,
        stats.failed,
        stats.degraded,
        stats.sync_served,
        stats.scheduler_restarts,
        stats.maintenance_restarts,
        if stats.degraded_sync_mode {
            " [DEGRADED-SYNC]"
        } else {
            ""
        },
        if stats.maintenance_down {
            " [MAINTENANCE DOWN]"
        } else {
            ""
        },
        stats.checkpoints_written,
        stats.checkpoints_failed,
    ));
    lines.push(format!(
        "[serve] aggregate (incl. parity warmup) {}",
        stats.serve.render()
    ));
    // The complete counter audit: every RuntimeStats scalar, printed from the same
    // enumeration the field-coverage test pins — a counter added to the struct without
    // extending `counter_fields` fails that test, so this line can never silently lag.
    lines.push(format!(
        "[serve] runtime counters: {}",
        stats
            .counter_fields()
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect::<Vec<_>>()
            .join(" ")
    ));
    let total_queries = latencies_us.len();
    let mean_us = latencies_us.iter().sum::<f64>() / total_queries.max(1) as f64;
    let p50 = percentile_us(&mut latencies_us, 0.50);
    let p99 = percentile_us(&mut latencies_us, 0.99);
    lines.push(format!(
        "[serve] served {} queries via {} callers in {:.3}s ({:.0} queries/s); latency \
         p50 {:.0}us p99 {:.0}us mean {:.0}us; mid-load queue gauge interactive {} \
         batch {}",
        total_queries,
        callers,
        elapsed.as_secs_f64(),
        total_queries as f64 / elapsed.as_secs_f64().max(1e-9),
        p50,
        p99,
        mean_us,
        queued_gauge[SloClass::Interactive.index()],
        queued_gauge[SloClass::Batch.index()],
    ));

    let interactive_p50 = percentile_us(&mut interactive_us, 0.50);
    let interactive_p99 = percentile_us(&mut interactive_us, 0.99);
    let batch_p50 = percentile_us(&mut batch_us, 0.50);
    let batch_p99 = percentile_us(&mut batch_us, 0.99);
    if mixed {
        lines.push(format!(
            "[serve] per-class latency: interactive p50 {:.0}us p99 {:.0}us ({} \
             requests), batch p50 {:.0}us p99 {:.0}us ({} requests); {} class-share \
             rejections absorbed",
            interactive_p50,
            interactive_p99,
            interactive_us.len(),
            batch_p50,
            batch_p99,
            batch_us.len(),
            stats.rejected_class_share - pre_load.rejected_class_share,
        ));
        // The SLO tripwire: when the batch class genuinely batches longer than the
        // interactive window, interactive tail latency must sit strictly below batch
        // tail latency — otherwise the classes aren't isolating and the smoke fails.
        if class_window > base_window && !interactive_us.is_empty() && !batch_us.is_empty() {
            if interactive_p99 >= batch_p99 {
                return Err(format!(
                    "SLO violation: interactive p99 {interactive_p99:.0}us is not \
                     strictly below batch p99 {batch_p99:.0}us despite a {:.0}us \
                     batch-class window",
                    class_window.as_secs_f64() * 1e6
                ));
            }
            lines.push(format!(
                "[serve] SLO holds: interactive p99 {interactive_p99:.0}us < batch \
                 p99 {batch_p99:.0}us"
            ));
        }
    }
    if config.cache_entries > 0 {
        lines.push(format!(
            "[serve] estimate cache: {} hits / {} misses ({:.1}% hit rate), {} \
             insertions, {} evictions over {} entries",
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_hit_rate() * 100.0,
            stats.cache_insertions,
            stats.cache_evictions,
            config.cache_entries,
        ));
    }

    // Histogram-vs-sort cross-check over the identical driver samples, per class.
    if !interactive_us.is_empty() {
        lines.push(check_hist_vs_sort(
            "driver.latency_us.interactive",
            &driver_hists[SloClass::Interactive.index()],
            interactive_p50,
            interactive_p99,
            interactive_us.len(),
        )?);
    }
    if !batch_us.is_empty() {
        lines.push(check_hist_vs_sort(
            "driver.latency_us.batch",
            &driver_hists[SloClass::Batch.index()],
            batch_p50,
            batch_p99,
            batch_us.len(),
        )?);
    }

    // Per-request phase breakdown: mean of each span segment over every resolved
    // request that carried a trace (computed and cache-hit paths both do).
    let span_requests = spans.len();
    let span_mean = |segment: fn(&crn_obs::RequestTrace) -> u64| {
        spans.iter().map(|trace| segment(trace) as f64).sum::<f64>() / span_requests.max(1) as f64
    };
    let span_queue_wait_us = span_mean(|t| t.queue_wait_us);
    let span_batch_wait_us = span_mean(|t| t.batch_wait_us);
    let span_cache_probe_us = span_mean(|t| t.cache_probe_us);
    let span_shard_compute_us = span_mean(|t| t.shard_compute_us);
    let span_merge_us = span_mean(|t| t.merge_us);
    lines.push(format!(
        "[serve] span breakdown over {span_requests} requests (mean µs): queue-wait \
         {span_queue_wait_us:.0}, batch-wait {span_batch_wait_us:.0}, cache-probe \
         {span_cache_probe_us:.0}, shard-compute {span_shard_compute_us:.0}, merge \
         {span_merge_us:.0}"
    ));
    finish_metrics(emitter, obs, lines);

    Ok(BenchRecord {
        mode: "async".to_string(),
        preset: config.preset_label.clone(),
        shards: config.shards,
        threads: config.threads,
        queue_depth: config.queue_depth,
        batch_window_us: config.batch_window_us,
        callers,
        queries: total_queries,
        batches: load_batches,
        mean_batch: load_mean_batch,
        rejected,
        p50_us: p50,
        p99_us: p99,
        mean_us,
        throughput_qps: total_queries as f64 / elapsed.as_secs_f64().max(1e-9),
        batch_callers,
        class_window_us: if mixed {
            (class_window.as_secs_f64() * 1e6).round() as u64
        } else {
            0
        },
        interactive_p50_us: interactive_p50,
        interactive_p99_us: interactive_p99,
        batch_p50_us: batch_p50,
        batch_p99_us: batch_p99,
        cache_entries: config.cache_entries,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_hit_rate: stats.cache_hit_rate(),
        pool_entries: service.pool().len(),
        top_k: config.top_k,
        median_q_error: 0.0,
        hist_interactive_p50_us: driver_hists[SloClass::Interactive.index()].quantile(0.50),
        hist_interactive_p99_us: driver_hists[SloClass::Interactive.index()].quantile(0.99),
        hist_batch_p50_us: driver_hists[SloClass::Batch.index()].quantile(0.50),
        hist_batch_p99_us: driver_hists[SloClass::Batch.index()].quantile(0.99),
        span_requests,
        span_queue_wait_us,
        span_batch_wait_us,
        span_cache_probe_us,
        span_shard_compute_us,
        span_merge_us,
        cluster_workers: 0,
        degraded_queries: 0,
    })
}

/// The `BENCH_online.json` shape: everything the online-refresh demo measured.
#[derive(Debug, Clone, Serialize)]
pub struct OnlineBenchSummary {
    /// Format version tag for downstream tooling.
    pub schema: String,
    /// The experiment preset.
    pub preset: String,
    /// Pool shard count.
    pub shards: usize,
    /// Worker threads.
    pub threads: usize,
    /// Feedback records between refresh checks (0 = refresh disabled).
    pub refresh_interval: usize,
    /// Held-out probe fraction of the feedback stream.
    pub probe_frac: f64,
    /// Baseline-segment queries served (the distribution the model trained on).
    pub baseline_queries: usize,
    /// Median q-error on the baseline segment.
    pub baseline_median: f64,
    /// Shifted-segment evaluation queries (held out of all feedback).
    pub shifted_eval_queries: usize,
    /// Median q-error of the frozen model on the shifted eval segment over the
    /// *original* pool (pure staleness, before any feedback).
    pub shifted_frozen_median: f64,
    /// Median q-error of the frozen model on the shifted eval segment over the *final*
    /// (maintenance-refreshed) pool — isolates what pool refresh alone bought.
    pub shifted_frozen_final_median: f64,
    /// Median q-error of the live (possibly hot-swapped) model on the shifted eval
    /// segment over the final pool — the model refresh's contribution on top.
    pub shifted_refreshed_median: f64,
    /// Feedback records fed through the maintenance lane.
    pub feedback_records: usize,
    /// Refresh cycles started / applied / gate-rejected / without training pairs.
    pub refreshes_attempted: u64,
    /// See [`OnlineBenchSummary::refreshes_attempted`].
    pub refreshes_applied: u64,
    /// See [`OnlineBenchSummary::refreshes_attempted`].
    pub refreshes_rejected: u64,
    /// See [`OnlineBenchSummary::refreshes_attempted`].
    pub refreshes_without_pairs: u64,
    /// The served model version at the end of the run (1 = never swapped).
    pub model_version: u64,
    /// Maintenance-lane upserts applied / failed over the whole run.
    pub maintenance_applied: u64,
    /// See [`OnlineBenchSummary::maintenance_applied`].
    pub maintenance_failed: u64,
    /// Duplicate in-window requests coalesced by the runtime.
    pub coalesced: u64,
}

/// Serves `queries` through the runtime closed-loop on one caller, returning the
/// estimates in query order.
fn serve_all<B: ComputeBackend + Send + Sync + 'static>(
    runtime: &ServeRuntime<B>,
    caller: u64,
    queries: &[Query],
) -> Result<Vec<f64>, String> {
    queries
        .iter()
        .map(|query| {
            let ticket = runtime
                .submit_retrying(caller, query)
                .map_err(|e| format!("submission failed: {e}"))?;
            ticket
                .wait()
                .map(|outcome| outcome.estimate)
                .map_err(|e| format!("ticket unresolved: {e}"))
        })
        .collect()
}

/// Median q-error of `(estimate, truth)` pairs (nearest-rank p50, cardinality floor 1).
fn median_q_error(estimates: &[f64], truths: &[u64]) -> f64 {
    let pairs: Vec<(f64, f64)> = estimates
        .iter()
        .zip(truths)
        .map(|(&e, &t)| (e, t as f64))
        .collect();
    QErrorSummary::from_pairs(&pairs, crate::metrics::CARDINALITY_FLOOR).p50
}

/// The online model-refresh demo (`repro serve --online`): a drifting-workload run over
/// the full subsystem — async serving, maintenance-lane feedback, drift detection,
/// gated warm-start fine-tuning and validated hot-swap — reporting median q-errors
/// before/after refresh on the shifted segment.
///
/// Phases:
///
/// 1. **Parity tripwire** — the first batch through the runtime must be bit-identical
///    to the sequential path (same as `--async`; with refresh disabled the whole run
///    stays on model version 1, so `--online` serving is bit-identical to `--async`).
/// 2. **Baseline segment** — the training-distribution workload; its median q-error
///    calibrates the drift threshold.
/// 3. **Shift** — traffic switches to the MSCN-style scale generator (equality-biased
///    predicates, literals from actual rows — a distribution the model never saw).  A
///    held-out eval slice measures the frozen model's staleness; the rest flows back as
///    `(query, true cardinality, estimate)` feedback, and every `--refresh-interval`
///    records the controller gets a refresh opportunity.
/// 4. **Verdict** — the same eval slice re-served after the refreshes, plus a
///    frozen-model evaluation over the *final* pool so the model refresh's contribution
///    is separated from what pool maintenance alone bought.  Any violated gate
///    invariant, an applied refresh that fails to beat the frozen model on the shifted
///    segment, or a swap with refresh disabled returns `Err` — `repro` exits non-zero
///    and the CI smoke fails loudly.
#[allow(clippy::too_many_arguments)]
fn run_online_demo(
    config: &ServeDemoConfig,
    ctx: &ExperimentContext,
    service: &Arc<EstimatorService<CrnModel>>,
    obs: &crn_obs::Obs,
    sequential: &Cnt2Crd<CrnModel>,
    workload: &[Query],
    lines: &mut Vec<String>,
) -> Result<OnlineBenchSummary, String> {
    let runtime_config = RuntimeConfig::default()
        .with_window_us(config.batch_window_us)
        .with_queue_depth(config.queue_depth.max(1))
        .with_batch_max(config.batch.max(1))
        .with_obs(obs.clone());
    let runtime = ServeRuntime::new(Arc::clone(service), runtime_config);
    let emitter = spawn_metrics_emitter(config, obs, lines)?;
    let refresh_enabled = config.refresh_interval > 0;
    lines.push(format!(
        "[serve] online runtime up: refresh {} (interval {}), probe fraction {:.2}",
        if refresh_enabled { "ON" } else { "OFF" },
        config.refresh_interval,
        config.probe_fraction,
    ));

    // Phase 1 — the parity tripwire (identical to --async: the queue → scheduler →
    // service path on the hook against sequential serving).
    let first_batch = &workload[..workload.len().min(config.batch.max(1))];
    let estimates = serve_all(&runtime, 0, first_batch)?;
    verify_parity(&estimates, first_batch, sequential, "online")?;
    lines.push(format!(
        "[serve] parity check passed: {} online estimates bit-identical to the \
         sequential path",
        first_batch.len()
    ));

    // Phase 2 — baseline segment: the distribution the model trained on.
    let executor = crn_exec::Executor::new(&ctx.db);
    let baseline_estimates = serve_all(&runtime, 0, workload)?;
    let baseline_truths: Vec<u64> = workload.iter().map(|q| executor.cardinality(q)).collect();
    let baseline_median = median_q_error(&baseline_estimates, &baseline_truths);
    lines.push(format!(
        "[serve] baseline segment: {} queries, median q-error {:.3}",
        workload.len(),
        baseline_median,
    ));

    // The controller, with its drift threshold calibrated off the healthy segment.
    let drift_threshold = (baseline_median * 1.3).max(2.0);
    let online_config = OnlineConfig {
        drift_threshold,
        drift_window: 32,
        min_observations: 12,
        // Well-fed cycles over trigger-happy ones: a fine-tune on a dozen records with
        // a 4-record probe gate is noise on both sides of the gate.
        min_fresh: 24,
        probe_fraction: config.probe_fraction,
        min_probe: 6,
        fine_tune_epochs: 8,
        seed: ctx.config.seed,
        gate_margin: config.gate_margin,
        ..OnlineConfig::default()
    };
    let controller = Arc::new(
        RefreshController::new(
            Arc::clone(service),
            Box::new(ExecLabeler::new(
                Arc::new(ctx.db.clone()),
                config.threads.max(1),
            )),
            online_config,
        )
        .with_obs(obs),
    );
    runtime.set_feedback_observer(Arc::clone(&controller) as Arc<dyn FeedbackObserver>);

    // Phase 3 — the shift: scale-generator traffic (equality-biased, actual-row
    // literals, no perturbation clusters), filtered to pool-covered FROM clauses.  A
    // held-out eval slice never enters any feedback; the rest is the feedback stream.
    let eval_size = (config.queries / 4).clamp(8, 64);
    let feedback_size = config.queries.max(eval_size * 2);
    let mut generator = ScaleGenerator::new(
        &ctx.db,
        ScaleGeneratorConfig {
            seed: ctx.config.seed ^ 0xd41f,
            max_joins: ctx.config.pool_max_joins.min(2),
            eq_bias: 0.7,
        },
    );
    // Keep only pool-covered queries with a non-trivial true cardinality: equality-
    // biased predicates often select ~0 rows, where the q-error floor makes every
    // estimator look perfect and the segment medians stop discriminating.  The
    // cardinalities computed here ARE the segment's ground truth — cached alongside
    // each query so the expensive executions are never repeated.
    let shifted: Vec<(Query, u64)> = generator
        .generate((eval_size + feedback_size) * 8)
        .into_iter()
        .filter(|q| ctx.pool.matching(q).next().is_some())
        .filter_map(|q| {
            let cardinality = executor.cardinality(&q);
            (cardinality >= 4).then_some((q, cardinality))
        })
        .take(eval_size + feedback_size)
        .collect();
    if shifted.len() < eval_size + 8 {
        return Err(format!(
            "shifted workload too small: {} pool-covered queries",
            shifted.len()
        ));
    }
    let (eval_pairs, feedback_slice) = shifted.split_at(eval_size.min(shifted.len() / 3));
    let eval_slice: Vec<Query> = eval_pairs.iter().map(|(q, _)| q.clone()).collect();
    let eval_truths: Vec<u64> = eval_pairs.iter().map(|(_, c)| *c).collect();
    let eval_slice = &eval_slice[..];

    // Frozen-model staleness on the shifted eval slice, over the original pool.
    let frozen_model = (*service.model()).clone();
    let pre_estimates = serve_all(&runtime, 1, eval_slice)?;
    let shifted_frozen_median = median_q_error(&pre_estimates, &eval_truths);
    lines.push(format!(
        "[serve] shifted segment: frozen model median q-error {:.3} over {} held-out \
         queries (baseline was {:.3}, drift threshold {:.3})",
        shifted_frozen_median,
        eval_slice.len(),
        baseline_median,
        drift_threshold,
    ));

    // The feedback stream: serve, observe truth, feed the maintenance lane; every
    // `refresh_interval` records the controller gets its refresh opportunity.
    let mut outcomes: Vec<RefreshOutcome> = Vec::new();
    let chunk_size = if refresh_enabled {
        config.refresh_interval
    } else {
        feedback_slice.len().max(1)
    };
    for chunk in feedback_slice.chunks(chunk_size) {
        let chunk_queries: Vec<Query> = chunk.iter().map(|(q, _)| q.clone()).collect();
        let estimates = serve_all(&runtime, 2, &chunk_queries)?;
        for ((query, truth), estimate) in chunk.iter().zip(&estimates) {
            if runtime
                .record_observed(query.clone(), *truth, *estimate)
                .is_err()
            {
                return Err("maintenance lane rejected feedback".to_string());
            }
        }
        runtime.flush();
        if refresh_enabled {
            if let Some(outcome) = controller.refresh_if_needed() {
                lines.push(format!(
                    "[serve] refresh cycle: {:?} — probe median live {:.3} vs candidate \
                     {:.3} ({} fresh, {} pairs, {} replayed) -> model v{}",
                    outcome.decision,
                    outcome.live_probe_median,
                    outcome.candidate_probe_median,
                    outcome.fresh_records,
                    outcome.labeled_pairs,
                    outcome.replayed,
                    outcome.model_version,
                ));
                if !outcome.gate_respected() {
                    return Err(format!(
                        "validation-gate violation: applied refresh with candidate \
                         probe median {:.3} >= live {:.3}",
                        outcome.candidate_probe_median, outcome.live_probe_median
                    ));
                }
                outcomes.push(outcome);
            }
        }
    }
    runtime.flush();

    // Phase 4 — the verdict on the same held-out slice.
    let post_estimates = serve_all(&runtime, 1, eval_slice)?;
    let shifted_refreshed_median = median_q_error(&post_estimates, &eval_truths);
    // Frozen model over the *final* pool: what §5.2 pool maintenance alone would have
    // achieved, so the model swap's contribution is attributable.
    let final_pool = service.pool().to_pool();
    let frozen_final = Cnt2Crd::new(frozen_model, final_pool)
        .with_config(*service.config())
        .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db)));
    let frozen_final_estimates: Vec<f64> = eval_slice
        .iter()
        .map(|q| frozen_final.estimate(q))
        .collect();
    let shifted_frozen_final_median = median_q_error(&frozen_final_estimates, &eval_truths);

    let applied = outcomes
        .iter()
        .filter(|o| o.decision == RefreshDecision::Applied)
        .count();
    let online_stats = controller.stats();
    let stats = runtime.shutdown();
    lines.push(format!(
        "[serve] shifted segment after {} applied refresh(es): median q-error {:.3} \
         (frozen model on the same final pool: {:.3}; pre-feedback: {:.3})",
        applied, shifted_refreshed_median, shifted_frozen_final_median, shifted_frozen_median,
    ));
    lines.push(format!(
        "[serve] online summary: {} feedback records, {} cycles ({} applied, {} \
         rejected by the gate, {} without pairs), model v{}; maintenance applied {} \
         refreshes, {} failed (pool now {} entries); {} requests coalesced",
        online_stats.feedback_seen,
        online_stats.refreshes_attempted,
        online_stats.refreshes_applied,
        online_stats.refreshes_rejected,
        online_stats.refreshes_without_pairs,
        service.model_version(),
        stats.maintenance_applied,
        stats.maintenance_failed,
        service.pool().len(),
        stats.coalesced,
    ));

    // Hard tripwires for the CI smoke.
    if !refresh_enabled && service.model_version() != 1 {
        return Err(format!(
            "refresh disabled but the model was swapped to v{}",
            service.model_version()
        ));
    }
    if refresh_enabled && applied == 0 {
        return Err(format!(
            "drifting-workload demo applied no refresh ({} cycles: {} rejected, {} \
             without pairs; window median {:.3}, threshold {:.3})",
            online_stats.refreshes_attempted,
            online_stats.refreshes_rejected,
            online_stats.refreshes_without_pairs,
            online_stats.window_median,
            drift_threshold,
        ));
    }
    if applied > 0 && shifted_refreshed_median >= shifted_frozen_final_median {
        return Err(format!(
            "post-refresh median q-error {shifted_refreshed_median:.3} is not strictly \
             better than the frozen-model baseline {shifted_frozen_final_median:.3} on \
             the shifted segment"
        ));
    }
    finish_metrics(emitter, obs, lines);

    Ok(OnlineBenchSummary {
        schema: "crn-online-bench-v1".to_string(),
        preset: config.preset_label.clone(),
        shards: config.shards,
        threads: config.threads,
        refresh_interval: config.refresh_interval,
        probe_frac: config.probe_fraction,
        baseline_queries: workload.len(),
        baseline_median,
        shifted_eval_queries: eval_slice.len(),
        shifted_frozen_median,
        shifted_frozen_final_median,
        shifted_refreshed_median,
        feedback_records: feedback_slice.len(),
        refreshes_attempted: online_stats.refreshes_attempted,
        refreshes_applied: online_stats.refreshes_applied,
        refreshes_rejected: online_stats.refreshes_rejected,
        refreshes_without_pairs: online_stats.refreshes_without_pairs,
        model_version: service.model_version(),
        maintenance_applied: stats.maintenance_applied,
        maintenance_failed: stats.maintenance_failed,
        coalesced: stats.coalesced,
    })
}

/// The shared runtime configuration of the async/chaos demos: batching knobs plus the
/// fault-tolerance knobs (deadline, restart budget, checkpoint cadence).
/// Starts the periodic JSONL metrics emitter when `--metrics-jsonl` is set.
fn spawn_metrics_emitter(
    config: &ServeDemoConfig,
    obs: &crn_obs::Obs,
    lines: &mut Vec<String>,
) -> Result<Option<crn_obs::JsonlEmitter>, String> {
    let Some(path) = &config.metrics_jsonl else {
        return Ok(None);
    };
    let interval_ms = config.metrics_interval_ms.max(1);
    let emitter = crn_obs::JsonlEmitter::spawn(
        obs.clone(),
        std::path::Path::new(path),
        std::time::Duration::from_millis(interval_ms),
    )
    .map_err(|e| format!("cannot open metrics jsonl {path}: {e}"))?;
    lines.push(format!(
        "[serve] metrics: JSONL export to {path} every {interval_ms}ms"
    ));
    Ok(Some(emitter))
}

/// Stops the emitter (flushing a final snapshot plus any undrained journal events) and,
/// when export was on, appends the end-of-run plain-text metrics table to the report.
fn finish_metrics(
    emitter: Option<crn_obs::JsonlEmitter>,
    obs: &crn_obs::Obs,
    lines: &mut Vec<String>,
) {
    if let Some(emitter) = emitter {
        emitter.stop();
        lines.push("[serve] metrics table:".to_string());
        lines.extend(
            crn_obs::render_table(&obs.snapshot())
                .lines()
                .map(|line| format!("  {line}")),
        );
    }
}

/// The histogram/sort agreement tripwire: the driver's measured latencies were replayed
/// into a `crn-obs` log₂ histogram, so each reported percentile must land within one
/// bucket of the sort-based oracle over the identical sample — else the histogram path
/// is broken and the run fails loudly.
fn check_hist_vs_sort(
    name: &str,
    hist: &crn_obs::HistHandle,
    sorted_p50: f64,
    sorted_p99: f64,
    samples: usize,
) -> Result<String, String> {
    let hist_p50 = hist.quantile(0.50);
    let hist_p99 = hist.quantile(0.99);
    for (label, hist_value, sorted_value) in
        [("p50", hist_p50, sorted_p50), ("p99", hist_p99, sorted_p99)]
    {
        let hist_bucket = crn_obs::bucket_index(hist_value);
        let sorted_bucket = crn_obs::bucket_index(sorted_value as u64);
        if hist_bucket.abs_diff(sorted_bucket) > 1 {
            return Err(format!(
                "histogram/sort divergence on {name} {label}: hist {hist_value}us \
                 (bucket {hist_bucket}) vs sorted {sorted_value:.0}us (bucket \
                 {sorted_bucket}) over {samples} samples"
            ));
        }
    }
    Ok(format!(
        "[serve] hist/sort agree on {name}: hist p50 {hist_p50}us p99 {hist_p99}us vs \
         sorted p50 {sorted_p50:.0}us p99 {sorted_p99:.0}us ({samples} samples)"
    ))
}

fn resilient_runtime_config(config: &ServeDemoConfig, callers: usize) -> RuntimeConfig {
    let mut runtime_config = RuntimeConfig::default()
        .with_window_us(config.batch_window_us)
        .with_queue_depth(config.queue_depth.max(1))
        .with_per_caller_depth((config.queue_depth.max(1) / callers).max(1))
        .with_batch_max(config.batch.max(1))
        .with_checkpoint_every(config.checkpoint_every);
    if let Some(micros) = config.deadline_us {
        runtime_config = runtime_config.with_deadline_us(micros);
    }
    if let Some(micros) = config.batch_deadline_us {
        runtime_config = runtime_config.with_class_deadline_us(SloClass::Batch, micros);
    }
    if let Some(budget) = config.restart_budget {
        runtime_config = runtime_config
            .with_restart_policy(SupervisorPolicy::default().with_max_restarts(budget));
    }
    if let Some(micros) = config.class_window_us {
        runtime_config = runtime_config.with_class_window_us(SloClass::Batch, micros);
    }
    if let Some((interactive, batch)) = config.class_weights {
        runtime_config = runtime_config.with_class_weights([interactive, batch]);
    }
    runtime_config
        .with_cache_entries(config.cache_entries)
        .with_compact_every(config.compact_every)
}

/// Wires a [`CheckpointSink`] into the runtime's maintenance lane when
/// `--checkpoint-dir` is set (the cadence itself comes from `--checkpoint-every`).
fn attach_checkpoint_sink(
    config: &ServeDemoConfig,
    service: &Arc<EstimatorService<CrnModel>>,
    runtime: &ServeRuntime<EstimatorService<CrnModel>>,
    lines: &mut Vec<String>,
) {
    if let Some(dir) = &config.checkpoint_dir {
        let sink = Arc::new(CheckpointSink::new(Arc::clone(service), dir.clone()));
        runtime.set_checkpoint_writer(sink as Arc<dyn CheckpointWriter>);
        lines.push(format!(
            "[serve] checkpointing to {dir} every {} applied maintenance records",
            config.checkpoint_every
        ));
    }
}

/// The `BENCH_chaos.json` shape: the fault-injection run's resolution accounting.  The
/// headline field is `unresolved`, which must be 0 — every admitted ticket resolves
/// (computed, degraded, expired or failed) under every plan.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosBenchSummary {
    /// Format version tag for downstream tooling.
    pub schema: String,
    /// The experiment preset.
    pub preset: String,
    /// The fault plan driven (`crash-restore` or a [`FaultPlan`] spec).
    pub plan: String,
    /// Worker threads.
    pub threads: usize,
    /// Closed-loop callers.
    pub callers: usize,
    /// Requests admitted.
    pub submitted: u64,
    /// Tickets resolved with a computed estimate.
    pub completed: u64,
    /// Tickets resolved with a degraded (fallback-path) estimate.
    pub degraded: u64,
    /// Tickets shed at their deadline.
    pub expired: u64,
    /// Tickets failed outright (fallback path itself panicked).
    pub failed: u64,
    /// `submitted - (completed + degraded + expired + failed)` — MUST be 0.
    pub unresolved: u64,
    /// Requests served synchronously on the caller thread after a scheduler degrade.
    pub sync_served: u64,
    /// Whether the run ended in degraded synchronous serving.
    pub degraded_sync_mode: bool,
    /// Whether the maintenance lane was down at shutdown.
    pub maintenance_down: bool,
    /// Supervisor restarts of the scheduler lane.
    pub scheduler_restarts: u64,
    /// Supervisor restarts of the maintenance lane.
    pub maintenance_restarts: u64,
    /// Faults the injector actually fired.
    pub faults_injected: u64,
    /// Maintenance records applied / failed.
    pub maintenance_applied: u64,
    /// See [`ChaosBenchSummary::maintenance_applied`].
    pub maintenance_failed: u64,
    /// Checkpoints committed / failed during the run.
    pub checkpoints_written: u64,
    /// See [`ChaosBenchSummary::checkpoints_written`].
    pub checkpoints_failed: u64,
    /// Crash-restore only: µs to load + verify + rebuild serving state from disk.
    pub restore_micros: Option<f64>,
    /// Crash-restore only: whether the restored run's estimates were bit-identical to
    /// the uninterrupted run's.
    pub bit_identical: Option<bool>,
}

/// The deterministic fault-injection demo (`repro serve --chaos <plan>`): drives the
/// workload through a runtime whose injector fires the plan's faults at exact
/// occurrence counts (no wall clock, no randomness — the same plan always kills the
/// same batch), then checks the headline invariant: **every admitted ticket resolved**.
#[allow(clippy::too_many_arguments)]
fn run_chaos_demo(
    config: &ServeDemoConfig,
    ctx: &ExperimentContext,
    service: &Arc<EstimatorService<CrnModel>>,
    obs: &crn_obs::Obs,
    plan_text: &str,
    workload: &[Query],
    lines: &mut Vec<String>,
) -> Result<ChaosBenchSummary, String> {
    let plan = FaultPlan::parse(plan_text).map_err(|e| format!("--chaos: {e}"))?;
    let injector = FaultInjector::new(plan);
    let callers = config.callers.max(1);
    let runtime = ServeRuntime::with_faults(
        Arc::clone(service),
        resilient_runtime_config(config, callers).with_obs(obs.clone()),
        Arc::clone(&injector),
    );
    attach_checkpoint_sink(config, service, &runtime, lines);
    let emitter = spawn_metrics_emitter(config, obs, lines)?;
    lines.push(format!(
        "[serve] chaos runtime up: plan '{plan_text}', {} callers, deadline {}, restart \
         budget {}/lane",
        callers,
        match config.deadline_us {
            Some(us) => format!("{us}us"),
            None => "off".to_string(),
        },
        runtime.config().restart_policy.max_restarts,
    ));

    // The load phase: closed-loop callers, every outcome tallied, none unwrapped — a
    // hung `wait()` here is exactly the bug the invariant exists to catch.
    let run_started = Instant::now();
    std::thread::scope(|scope| {
        for caller in 0..callers {
            let runtime = &runtime;
            scope.spawn(move || {
                for (index, query) in workload.iter().enumerate() {
                    if index % callers == caller {
                        if let Ok(ticket) = runtime.submit_retrying(caller as u64, query) {
                            // Any resolution is acceptable under chaos; what is not
                            // acceptable is no resolution (wait() blocking forever).
                            let _ = ticket.wait();
                        }
                    }
                }
            });
        }
    });

    // The maintenance phase: feedback records so maintenance-lane faults (maint-panic,
    // maint-kill, checkpoint-fail) have upserts to fire on.
    let executor = crn_exec::Executor::new(&ctx.db);
    let mut feedback_sent = 0usize;
    for query in workload.iter().take(workload.len().min(12)) {
        let cardinality = executor.cardinality(query);
        if runtime.record_feedback(query.clone(), cardinality).is_ok() {
            feedback_sent += 1;
        }
    }
    runtime.flush();
    let elapsed = run_started.elapsed();

    let fired: Vec<String> = injector
        .fired()
        .iter()
        .map(|fault| format!("{}#{}", fault.site.name(), fault.occurrence))
        .collect();
    let stats = runtime.shutdown();
    lines.push(format!(
        "[serve] chaos: {} faults fired [{}] in {:.3}s; {} submitted -> {} computed, {} \
         degraded, {} expired, {} failed ({} sync-served); restarts scheduler {} \
         maintenance {}{}{}",
        stats.faults_injected,
        fired.join(", "),
        elapsed.as_secs_f64(),
        stats.submitted,
        stats.completed,
        stats.degraded,
        stats.expired,
        stats.failed,
        stats.sync_served,
        stats.scheduler_restarts,
        stats.maintenance_restarts,
        if stats.degraded_sync_mode {
            " [DEGRADED-SYNC]"
        } else {
            ""
        },
        if stats.maintenance_down {
            " [MAINTENANCE DOWN]"
        } else {
            ""
        },
    ));
    lines.push(format!(
        "[serve] chaos maintenance: {} of {feedback_sent} records applied, {} failed; \
         checkpoints {} written, {} failed",
        stats.maintenance_applied,
        stats.maintenance_failed,
        stats.checkpoints_written,
        stats.checkpoints_failed,
    ));

    let resolved = stats.completed + stats.degraded + stats.expired + stats.failed;
    let unresolved = stats.submitted.saturating_sub(resolved);
    if unresolved != 0 {
        return Err(format!(
            "chaos invariant violated: {} of {} admitted tickets never resolved \
             (plan '{plan_text}')",
            unresolved, stats.submitted
        ));
    }
    lines.push(format!(
        "[serve] chaos invariant holds: all {} admitted tickets resolved",
        stats.submitted
    ));
    let restart_events = obs
        .events_since(0)
        .iter()
        .filter(|entry| matches!(entry.event, crn_obs::Event::SupervisorRestart { .. }))
        .count();
    lines.push(format!(
        "[serve] journal: {} events recorded ({} supervisor restarts)",
        obs.snapshot().journal_recorded,
        restart_events,
    ));
    finish_metrics(emitter, obs, lines);
    Ok(ChaosBenchSummary {
        schema: "crn-chaos-bench-v1".to_string(),
        preset: config.preset_label.clone(),
        plan: plan_text.to_string(),
        threads: config.threads,
        callers,
        submitted: stats.submitted,
        completed: stats.completed,
        degraded: stats.degraded,
        expired: stats.expired,
        failed: stats.failed,
        unresolved,
        sync_served: stats.sync_served,
        degraded_sync_mode: stats.degraded_sync_mode,
        maintenance_down: stats.maintenance_down,
        scheduler_restarts: stats.scheduler_restarts,
        maintenance_restarts: stats.maintenance_restarts,
        faults_injected: stats.faults_injected,
        maintenance_applied: stats.maintenance_applied,
        maintenance_failed: stats.maintenance_failed,
        checkpoints_written: stats.checkpoints_written,
        checkpoints_failed: stats.checkpoints_failed,
        restore_micros: None,
        bit_identical: None,
    })
}

/// Serves `segment` closed-loop on one caller, feeding each served `(query, truth,
/// estimate)` triple through the maintenance lane, then flushes and shuts down —
/// returning the runtime's final stats.  The building block of the crash-restore demo:
/// both lineages (uninterrupted and restored) run their halves through this exact path,
/// so any divergence is attributable to the checkpoint round-trip alone.
fn serve_segment_with_feedback(
    config: &ServeDemoConfig,
    service: &Arc<EstimatorService<CrnModel>>,
    observer: Option<&Arc<RefreshController>>,
    segment: &[Query],
    truths: &[u64],
) -> Result<crn_serve::RuntimeStats, String> {
    let runtime = ServeRuntime::new(Arc::clone(service), resilient_runtime_config(config, 1));
    if let Some(observer) = observer {
        runtime.set_feedback_observer(Arc::clone(observer) as Arc<dyn FeedbackObserver>);
    }
    for (query, truth) in segment.iter().zip(truths) {
        let estimate = runtime
            .submit_retrying(0, query)
            .map_err(|e| format!("submission failed: {e}"))?
            .wait()
            .map_err(|e| format!("ticket unresolved: {e}"))?
            .estimate;
        runtime
            .record_observed(query.clone(), *truth, estimate)
            .map_err(|e| format!("maintenance rejected feedback: {e}"))?;
    }
    runtime.flush();
    Ok(runtime.shutdown())
}

/// The crash-and-restore demo (`repro serve --chaos crash-restore`): runs the workload
/// twice — once uninterrupted, once "crashed" at the midpoint and restored from the
/// checkpoint written there — and requires the two lineages' final estimates to be
/// **bit-identical** over the whole workload.  The checkpoint round-trip (pool, model,
/// optimizer moments and controller counters, through JSON and back) is the only thing
/// that differs between the lineages, so this pins exact-restoration end to end.
fn run_crash_restore_demo(
    config: &ServeDemoConfig,
    ctx: &ExperimentContext,
    workload: &[Query],
    lines: &mut Vec<String>,
) -> Result<ChaosBenchSummary, String> {
    let threads = config.threads.max(1);
    let executor = crn_exec::Executor::new(&ctx.db);
    let truths: Vec<u64> = workload.iter().map(|q| executor.cardinality(q)).collect();
    let split = (workload.len() / 2).max(1).min(workload.len());
    let (first_half, second_half) = workload.split_at(split);
    let (first_truths, second_truths) = truths.split_at(split);
    let build_service = |model: CrnModel, pool: &QueriesPool| {
        Arc::new(
            EstimatorService::new(
                model,
                ShardedPool::from_pool(pool, config.shards),
                WorkerPool::shared(threads),
            )
            .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db))),
        )
    };
    let (dir, ephemeral_dir) = match &config.checkpoint_dir {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!("crn_crash_restore_{}", std::process::id())),
            true,
        ),
    };

    // Lineage A — uninterrupted: both halves, then the final estimates over the whole
    // workload (the reference the restored lineage must match bit for bit).
    let reference_service = build_service(ctx.crn.clone(), &ctx.pool);
    serve_segment_with_feedback(config, &reference_service, None, first_half, first_truths)?;
    serve_segment_with_feedback(config, &reference_service, None, second_half, second_truths)?;
    let reference = reference_service.serve(workload).estimates;
    lines.push(format!(
        "[serve] crash-restore: uninterrupted lineage done ({} queries, pool now {} \
         entries)",
        workload.len(),
        reference_service.pool().len(),
    ));

    // Lineage B — crashed: first half with a live refresh controller observing the
    // feedback, checkpoint at the midpoint, then the process state is dropped.
    let crashed_service = build_service(ctx.crn.clone(), &ctx.pool);
    let controller = Arc::new(RefreshController::new(
        Arc::clone(&crashed_service),
        Box::new(ExecLabeler::new(Arc::new(ctx.db.clone()), threads)),
        OnlineConfig {
            gate_margin: config.gate_margin,
            ..OnlineConfig::default()
        },
    ));
    let first_stats = serve_segment_with_feedback(
        config,
        &crashed_service,
        Some(&controller),
        first_half,
        first_truths,
    )?;
    let sink = CheckpointSink::new(Arc::clone(&crashed_service), dir.clone())
        .with_controller(Arc::clone(&controller));
    let manifest = sink
        .write()
        .map_err(|e| format!("midpoint checkpoint: {e}"))?;
    let counters_at_crash = controller.stats();
    lines.push(format!(
        "[serve] crash-restore: checkpoint seq {} committed at the midpoint ({} feedback \
         records observed); crashing",
        manifest.sequence, counters_at_crash.feedback_seen,
    ));
    drop(sink);
    drop(controller);
    drop(crashed_service); // the "crash": every in-memory artifact of lineage B is gone

    // Restore: load + verify + rebuild the service and controller from disk alone.
    let restore_started = Instant::now();
    let (checkpoint, loaded_manifest) =
        Checkpoint::load(&dir).map_err(|e| format!("restore: {e}"))?;
    let restored_service = build_service(checkpoint.model, &checkpoint.pool);
    let restored_controller = Arc::new(RefreshController::new(
        Arc::clone(&restored_service),
        Box::new(ExecLabeler::new(Arc::new(ctx.db.clone()), threads)),
        OnlineConfig {
            gate_margin: config.gate_margin,
            ..OnlineConfig::default()
        },
    ));
    let online_state = checkpoint
        .online
        .ok_or("restore: checkpoint holds no controller state")?;
    restored_controller.restore_state(online_state);
    let restore_micros = restore_started.elapsed().as_secs_f64() * 1e6;
    if loaded_manifest != manifest {
        return Err("restore: reloaded manifest differs from the committed one".to_string());
    }
    let restored_counters = restored_controller.stats();
    if restored_counters.feedback_seen != counters_at_crash.feedback_seen
        || restored_counters.refreshes_attempted != counters_at_crash.refreshes_attempted
    {
        return Err(format!(
            "restore: controller counters did not round-trip ({} vs {} feedback records)",
            restored_counters.feedback_seen, counters_at_crash.feedback_seen
        ));
    }
    lines.push(format!(
        "[serve] crash-restore: restored seq {} in {restore_micros:.0}us (pool {} \
         entries, controller counters intact)",
        loaded_manifest.sequence,
        restored_service.pool().len(),
    ));

    // The restored lineage finishes the run, then the verdict: bit-identical finals.
    let second_stats = serve_segment_with_feedback(
        config,
        &restored_service,
        Some(&restored_controller),
        second_half,
        second_truths,
    )?;
    let restored = restored_service.serve(workload).estimates;
    let mut bit_identical = true;
    for (index, (a, b)) in restored.iter().zip(&reference).enumerate() {
        if a != b {
            lines.push(format!(
                "[serve] crash-restore MISMATCH at query {index}: restored {a} vs \
                 uninterrupted {b}"
            ));
            bit_identical = false;
        }
    }
    if ephemeral_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if !bit_identical {
        return Err(
            "crash-restore violation: restored lineage is not bit-identical to the \
             uninterrupted one"
                .to_string(),
        );
    }
    lines.push(format!(
        "[serve] crash-restore invariant holds: {} estimates bit-identical after \
         mid-run crash + restore",
        restored.len()
    ));
    let submitted = first_stats.submitted + second_stats.submitted;
    Ok(ChaosBenchSummary {
        schema: "crn-chaos-bench-v1".to_string(),
        preset: config.preset_label.clone(),
        plan: "crash-restore".to_string(),
        threads: config.threads,
        callers: 1,
        submitted,
        completed: first_stats.completed + second_stats.completed,
        degraded: first_stats.degraded + second_stats.degraded,
        expired: first_stats.expired + second_stats.expired,
        failed: first_stats.failed + second_stats.failed,
        unresolved: 0,
        sync_served: first_stats.sync_served + second_stats.sync_served,
        degraded_sync_mode: second_stats.degraded_sync_mode,
        maintenance_down: second_stats.maintenance_down,
        scheduler_restarts: first_stats.scheduler_restarts + second_stats.scheduler_restarts,
        maintenance_restarts: first_stats.maintenance_restarts + second_stats.maintenance_restarts,
        faults_injected: 0,
        maintenance_applied: first_stats.maintenance_applied + second_stats.maintenance_applied,
        maintenance_failed: first_stats.maintenance_failed + second_stats.maintenance_failed,
        checkpoints_written: 1,
        checkpoints_failed: 0,
        restore_micros: Some(restore_micros),
        bit_identical: Some(bit_identical),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_demo_runs_on_the_tiny_preset() {
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 24;
        config.batch = 8;
        config.shards = 2;
        config.threads = 2;
        let report = run_serve_demo(&config).expect("parity holds");
        assert!(report.contains("parity check passed"));
        assert!(report.contains("served 24 queries over 2 shards x 2 threads"));
    }

    /// The full online demo on the tiny preset: drift detected, at least one gated
    /// refresh applied, post-refresh median strictly better than the frozen model on
    /// the shifted segment, and the machine-readable summary written.
    #[test]
    fn online_demo_refreshes_and_emits_bench_json() {
        let dir = std::env::temp_dir().join("crn_online_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_online.json");
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 64;
        config.batch = 16;
        config.shards = 4;
        config.threads = 2;
        config.online = true;
        config.refresh_interval = 16;
        config.probe_fraction = 0.25;
        config.bench_json = Some(path.to_string_lossy().to_string());
        let report = run_serve_demo(&config).expect("gates hold and the refresh improves");
        assert!(report.contains("online runtime up"));
        assert!(report.contains("parity check passed"));
        assert!(report.contains("refresh cycle: Applied"));
        assert!(report.contains("maintenance applied"));
        let json = std::fs::read_to_string(&path).expect("bench json written");
        std::fs::remove_file(&path).ok();
        assert!(json.contains("crn-online-bench-v1"));
        assert!(json.contains("refreshes_applied"));
        assert!(json.contains("shifted_refreshed_median"));
        assert!(json.contains("maintenance_failed"));
    }

    /// `--online` with refresh disabled is the PR-4 async path bit-for-bit: the model
    /// version never moves and the post-segment medians coincide exactly with the
    /// frozen model over the same pool.
    #[test]
    fn online_demo_with_refresh_disabled_never_swaps() {
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 48;
        config.batch = 16;
        config.shards = 2;
        config.threads = 2;
        config.online = true;
        config.refresh_interval = 0;
        let report = run_serve_demo(&config).expect("parity mode always passes");
        assert!(report.contains("refresh OFF"));
        assert!(report.contains("model v1"));
        assert!(report.contains("0 cycles"));
    }

    /// The fault-plan chaos demo: every injected fault fires at its scripted
    /// occurrence, every admitted ticket resolves, and the run's resolution accounting
    /// lands in BENCH_chaos.json.
    #[test]
    fn chaos_demo_resolves_every_ticket_and_emits_bench_json() {
        let dir = std::env::temp_dir().join("crn_chaos_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_chaos.json");
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 24;
        config.batch = 8;
        config.shards = 2;
        config.threads = 2;
        config.chaos = Some("batch-panic:2,maint-kill".to_string());
        config.bench_json = Some(path.to_string_lossy().to_string());
        let report = run_serve_demo(&config).expect("every ticket resolves");
        assert!(report.contains("chaos runtime up"));
        assert!(report.contains("batch-panic#2"));
        assert!(report.contains("maint-kill#1"));
        assert!(report.contains("chaos invariant holds"));
        let json = std::fs::read_to_string(&path).expect("bench json written");
        std::fs::remove_dir_all(&dir).ok();
        assert!(json.contains("crn-chaos-bench-v1"));
        assert!(json.contains("\"unresolved\":0"));
        assert!(json.contains("\"degraded\":"));
        assert!(json.contains("\"maintenance_restarts\":1"));
    }

    /// The crash-restore demo: a mid-run crash restored from the checkpoint must serve
    /// bit-identically to the uninterrupted lineage, and the restore latency lands in
    /// the bench record.
    #[test]
    fn crash_restore_demo_is_bit_identical() {
        let dir = std::env::temp_dir().join("crn_crash_restore_demo_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_chaos.json");
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 16;
        config.batch = 8;
        config.shards = 2;
        config.threads = 2;
        config.chaos = Some("crash-restore".to_string());
        config.checkpoint_dir = Some(dir.join("ckpt").to_string_lossy().to_string());
        config.bench_json = Some(path.to_string_lossy().to_string());
        let report = run_serve_demo(&config).expect("restored lineage matches");
        assert!(report.contains("checkpoint seq 1 committed"));
        assert!(report.contains("crash-restore invariant holds"));
        let json = std::fs::read_to_string(&path).expect("bench json written");
        std::fs::remove_dir_all(&dir).ok();
        assert!(json.contains("\"plan\":\"crash-restore\""));
        assert!(json.contains("\"bit_identical\":true"));
        assert!(json.contains("restore_micros"));
    }

    /// The mixed SLO/cache demo: batch-class callers ride a long window behind
    /// interactive traffic (interactive p99 strictly below batch p99 — the in-demo
    /// tripwire), warm cache replays stay bit-identical to sequential serving, and the
    /// extended per-class/cache fields land in BENCH_serving.json.
    #[test]
    fn mixed_slo_cache_demo_isolates_classes_and_hits_the_cache() {
        let dir = std::env::temp_dir().join("crn_slo_cache_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serving.json");
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 24;
        config.batch = 8;
        config.shards = 2;
        config.threads = 2;
        config.async_mode = true;
        config.batch_window_us = 100;
        config.queue_depth = 16;
        config.callers = 4;
        config.class_window_us = Some(20_000);
        config.class_weights = Some((3, 1));
        config.cache_entries = 256;
        config.bench_json = Some(path.to_string_lossy().to_string());
        let report = run_serve_demo(&config).expect("parity and the SLO hold");
        assert!(report.contains("SLO classes on: 2 interactive + 2 batch callers"));
        assert!(report.contains("cache parity check passed"));
        assert!(report.contains("SLO holds"));
        assert!(report.contains("estimate cache:"));
        let json = std::fs::read_to_string(&path).expect("bench json written");
        std::fs::remove_file(&path).ok();
        assert!(json.contains("\"batch_callers\":2"));
        assert!(json.contains("\"class_window_us\":20000"));
        assert!(json.contains("interactive_p99_us"));
        assert!(json.contains("batch_p99_us"));
        assert!(json.contains("\"cache_entries\":256"));
        assert!(json.contains("cache_hit_rate"));
        // The second workload pass replays pass 1 from the cache, so hits are
        // structurally nonzero.
        assert!(!json.contains("\"cache_hits\":0,"));
    }

    /// Top-K serving stays bit-identical to the sequential path when BOTH run the same
    /// `Cnt2CrdConfig`: the parity tripwire holds at k > 0, not just on the full-pool
    /// path.  (`--top-k 0` bit-parity with the pre-pool-tier semantics is pinned by
    /// every other test in this module — the default config leaves `top_k` at 0.)
    #[test]
    fn serve_demo_parity_holds_with_top_k_selection() {
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 24;
        config.batch = 8;
        config.shards = 3;
        config.threads = 2;
        config.top_k = 4;
        let report = run_serve_demo(&config).expect("top-K parity holds");
        assert!(report.contains("parity check passed"));
    }

    /// The pool-scale sweep on the tiny preset: synthesized pools at two sizes, both
    /// arms measured, the q-error budget and the sublinear/top-K-wins latency gates
    /// enforced, and per-arm records (pool_entries, top_k, median_q_error) in the
    /// bench JSON.
    #[test]
    fn pool_scale_sweep_gates_hold_and_emit_bench_json() {
        let dir = std::env::temp_dir().join("crn_pool_scale_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serving.json");
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 24;
        config.batch = 8;
        config.shards = 2;
        config.threads = 2;
        config.top_k = 8;
        config.pool_scale = Some(vec![300, 1500]);
        config.q_error_budget = 1.25;
        config.bench_json = Some(path.to_string_lossy().to_string());
        let report = run_serve_demo(&config).expect("sweep gates hold");
        assert!(report.contains("pool-scale sweep: sizes [300, 1500]"));
        assert!(report.contains("pool-scale gates hold"));
        let json = std::fs::read_to_string(&path).expect("bench json written");
        std::fs::remove_file(&path).ok();
        assert!(json.contains("crn-serve-bench-v1"));
        assert!(json.contains("\"mode\":\"pool-scale-full\""));
        assert!(json.contains("\"mode\":\"pool-scale-topk\""));
        assert!(json.contains("\"top_k\":8"));
        assert!(json.contains("median_q_error"));
        assert!(json.contains("\"pool_entries\":300"));
        assert!(json.contains("\"pool_entries\":1500"));
        assert_eq!(
            json.matches("\"mode\":\"pool-scale-").count(),
            4,
            "two sizes x two arms"
        );
    }

    #[test]
    fn async_serve_demo_runs_and_emits_bench_json() {
        let dir = std::env::temp_dir().join("crn_serve_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serving.json");
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 24;
        config.batch = 8;
        config.shards = 2;
        config.threads = 2;
        config.async_mode = true;
        config.batch_window_us = 100;
        config.queue_depth = 16;
        config.callers = 3;
        config.bench_json = Some(path.to_string_lossy().to_string());
        let report = run_serve_demo(&config).expect("parity holds");
        assert!(report.contains("async runtime up"));
        assert!(report.contains("parity check passed"));
        assert!(report.contains("maintenance applied"));
        let json = std::fs::read_to_string(&path).expect("bench json written");
        std::fs::remove_file(&path).ok();
        assert!(json.contains("crn-serve-bench-v1"));
        assert!(json.contains("\"mode\":\"async\""));
        assert!(json.contains("throughput_qps"));
    }
}
