//! `repro serve` — drives the serving stack end to end, synchronously or async.
//!
//! Builds the shared experiment context (database, trained CRN, queries pool), wraps the
//! pool in a [`ShardedPool`] at the requested shard count and wires the model into an
//! [`EstimatorService`] backed by the persistent worker pool.  Two modes:
//!
//! * **Synchronous** (default): pushes a synthetic workload through `serve` in
//!   fixed-size batches — the PR-3 demo — printing per-batch [`ServeStats`] and an
//!   aggregate throughput line.
//! * **Async** (`--async`): stands up a [`ServeRuntime`] over the service and runs a
//!   *closed-loop multi-caller load generator*: `--callers` threads each submit their
//!   share of the workload one request at a time (submit → wait → next, retrying when
//!   admission sheds), exercising the bounded queue, the `--batch-window-us` cross-call
//!   batching window and the per-caller fairness quota; afterwards the maintenance lane
//!   is fed true cardinalities and flushed — the paper's pool-refresh loop live.
//!
//! In both modes the first batch is verified **bit-for-bit** against the sequential
//! single-query `Cnt2Crd` path over the same (flattened) pool; a violation returns an
//! `Err` so the `repro` binary exits non-zero and the CI smoke fails loudly.
//!
//! With `--bench-json <path>` the run additionally emits a machine-readable
//! `BENCH_serving.json` record (p50/p99 latency and throughput for the exact
//! configuration) so the serving perf trajectory is trackable across PRs.

use crate::harness::{ExperimentConfig, ExperimentContext};
use crate::metrics::QErrorSummary;
use crn_core::{Cnt2Crd, CrnModel, EstimatorService, ServeStats, ShardedPool};
use crn_estimators::{CardinalityEstimator, PostgresEstimator};
use crn_nn::parallel::WorkerPool;
use crn_online::{ExecLabeler, OnlineConfig, RefreshController, RefreshDecision, RefreshOutcome};
use crn_query::generator::{GeneratorConfig, QueryGenerator, ScaleGenerator, ScaleGeneratorConfig};
use crn_query::Query;
use crn_serve::{FeedbackObserver, RuntimeConfig, ServeRuntime};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one `repro serve` run.
#[derive(Debug, Clone)]
pub struct ServeDemoConfig {
    /// The experiment preset supplying the database, trained model and pool.
    pub experiment: ExperimentConfig,
    /// The preset's name, echoed into the bench JSON (`--preset`).
    pub preset_label: String,
    /// Pool shard count (`--shards`).
    pub shards: usize,
    /// Worker threads of the persistent pool (`--threads`).
    pub threads: usize,
    /// Total workload size (`--queries`).
    pub queries: usize,
    /// Synchronous mode: concurrent queries handed to `serve` per call (`--batch`).
    /// Async mode: the runtime's batch size threshold.
    pub batch: usize,
    /// Drive the async request-queue runtime instead of direct `serve` calls (`--async`).
    pub async_mode: bool,
    /// Async batching window in microseconds (`--batch-window-us`).
    pub batch_window_us: u64,
    /// Async bounded submission-queue depth (`--queue-depth`).
    pub queue_depth: usize,
    /// Closed-loop load-generator threads (`--callers`).
    pub callers: usize,
    /// Emit the machine-readable latency/throughput record here (`--bench-json`).
    pub bench_json: Option<String>,
    /// Drive the online model-refresh demo (`--online`): async serving plus a
    /// drifting-workload phase with feedback, drift detection, gated fine-tuning and
    /// hot-swap.
    pub online: bool,
    /// Feedback records between refresh checks in the online demo
    /// (`--refresh-interval`); 0 disables refresh entirely (pool maintenance still
    /// runs — the parity mode of the acceptance criterion).
    pub refresh_interval: usize,
    /// Fraction of the feedback stream held out as the validation gate's probe set
    /// (`--probe-frac`).
    pub probe_fraction: f64,
}

impl ServeDemoConfig {
    /// Defaults matching the tiny CI smoke: 4 shards, 2 threads, 64 queries in batches of
    /// 16; async mode off (flags switch it on) with a 200µs window, depth 32, 4 callers.
    pub fn new(experiment: ExperimentConfig) -> Self {
        ServeDemoConfig {
            experiment,
            preset_label: "tiny".to_string(),
            shards: 4,
            threads: 2,
            queries: 64,
            batch: 16,
            async_mode: false,
            batch_window_us: 200,
            queue_depth: 32,
            callers: 4,
            bench_json: None,
            online: false,
            refresh_interval: 16,
            probe_fraction: 0.25,
        }
    }
}

/// One configuration's latency/throughput record inside [`BenchSummary`].
#[derive(Debug, Clone, Serialize)]
pub struct BenchRecord {
    /// `"sync"` or `"async"`.
    pub mode: String,
    /// The experiment preset.
    pub preset: String,
    /// Pool shard count.
    pub shards: usize,
    /// Worker threads.
    pub threads: usize,
    /// Async queue depth (0 in sync mode).
    pub queue_depth: usize,
    /// Async batching window in µs (0 in sync mode).
    pub batch_window_us: u64,
    /// Concurrent callers (1 in sync mode: the driver thread).
    pub callers: usize,
    /// Queries served.
    pub queries: usize,
    /// Batches executed (serve calls in sync mode).
    pub batches: u64,
    /// Mean executed batch size — the cross-call fusion factor.
    pub mean_batch: f64,
    /// Admission rejections observed by the load generator (always 0 in sync mode).
    pub rejected: u64,
    /// Median latency in µs (per request in async mode, per serve call in sync mode).
    pub p50_us: f64,
    /// 99th-percentile latency in µs.
    pub p99_us: f64,
    /// Mean latency in µs.
    pub mean_us: f64,
    /// End-to-end served queries per second.
    pub throughput_qps: f64,
}

/// The `BENCH_serving.json` shape: a schema tag plus one record per measured config.
#[derive(Debug, Clone, Serialize)]
pub struct BenchSummary {
    /// Format version tag for downstream tooling.
    pub schema: String,
    /// The measured configurations.
    pub configs: Vec<BenchRecord>,
}

/// Nearest-rank percentile over an unsorted latency sample (µs), 0 for an empty sample.
fn percentile_us(latencies: &mut [f64], fraction: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((latencies.len() - 1) as f64 * fraction).round() as usize;
    latencies[rank]
}

/// Runs the serve demo, returning the printed report (one line per batch plus the
/// summary) — or an `Err` describing the first bit-parity violation, which the `repro`
/// binary turns into a non-zero exit (the CI smoke's tripwire).
pub fn run_serve_demo(config: &ServeDemoConfig) -> Result<String, String> {
    let started = Instant::now();
    let ctx = ExperimentContext::build(config.experiment.clone());
    let mut lines = vec![format!(
        "[serve] context ready in {:.1}s: pool of {} entries over {} FROM clauses",
        started.elapsed().as_secs_f64(),
        ctx.pool.len(),
        ctx.pool.num_from_clauses()
    )];

    let sharded = ShardedPool::from_pool(&ctx.pool, config.shards);
    let workers = WorkerPool::shared(config.threads.max(1));
    let service = Arc::new(
        EstimatorService::new(ctx.crn.clone(), sharded, workers)
            .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db))),
    );

    // `generate_queries` expands each initial query with perturbed variants, so truncate to
    // the requested workload size exactly.
    let mut generator =
        QueryGenerator::new(&ctx.db, GeneratorConfig::paper(ctx.config.seed ^ 0x5e));
    let mut workload: Vec<Query> = generator.generate_queries(config.queries.max(1));
    workload.truncate(config.queries.max(1));

    let sequential = Cnt2Crd::new(ctx.crn.clone(), ctx.pool.clone())
        .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db)));

    if config.online {
        let summary =
            match run_online_demo(config, &ctx, &service, &sequential, &workload, &mut lines) {
                Ok(summary) => summary,
                Err(violation) => {
                    // The report so far is the diagnostic context of the violation: emit it
                    // on stderr so the CI log shows what led up to the non-zero exit.
                    eprintln!("{}", lines.join("\n"));
                    return Err(violation);
                }
            };
        if let Some(path) = &config.bench_json {
            let json =
                serde_json::to_string(&summary).map_err(|e| format!("bench json render: {e}"))?;
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            lines.push(format!("[serve] wrote online bench summary to {path}"));
        }
        return Ok(lines.join("\n"));
    }

    let record = if config.async_mode {
        run_async_demo(config, &ctx, &service, &sequential, &workload, &mut lines)?
    } else {
        run_sync_demo(config, &service, &sequential, &workload, &mut lines)?
    };

    if let Some(path) = &config.bench_json {
        let summary = BenchSummary {
            schema: "crn-serve-bench-v1".to_string(),
            configs: vec![record],
        };
        let json =
            serde_json::to_string(&summary).map_err(|e| format!("bench json render: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        lines.push(format!("[serve] wrote bench summary to {path}"));
    }
    Ok(lines.join("\n"))
}

/// The startup parity tripwire shared by both modes: every estimate of the first batch
/// must be bit-identical to the sequential single-query path.
fn verify_parity(
    estimates: &[f64],
    queries: &[Query],
    sequential: &Cnt2Crd<crn_core::CrnModel>,
    mode: &str,
) -> Result<(), String> {
    for (index, (query, estimate)) in queries.iter().zip(estimates).enumerate() {
        let expected = sequential.estimate(query);
        if *estimate != expected {
            return Err(format!(
                "parity violation ({mode}) at query {index}: served {estimate} vs \
                 sequential {expected}"
            ));
        }
    }
    Ok(())
}

/// The synchronous demo: the whole workload in `batch`-sized `serve` calls.
fn run_sync_demo(
    config: &ServeDemoConfig,
    service: &EstimatorService<crn_core::CrnModel>,
    sequential: &Cnt2Crd<crn_core::CrnModel>,
    workload: &[Query],
    lines: &mut Vec<String>,
) -> Result<BenchRecord, String> {
    let first_batch = &workload[..workload.len().min(config.batch.max(1))];
    let response = service.serve(first_batch);
    verify_parity(&response.estimates, first_batch, sequential, "sync")?;
    lines.push(format!(
        "[serve] parity check passed: {} estimates bit-identical to the sequential path",
        first_batch.len()
    ));

    let mut total = ServeStats::default();
    let mut latencies_us: Vec<f64> = Vec::new();
    let run_started = Instant::now();
    for chunk in workload.chunks(config.batch.max(1)) {
        let call_started = Instant::now();
        let response = service.serve(chunk);
        latencies_us.push(call_started.elapsed().as_secs_f64() * 1e6);
        lines.push(format!("[serve] {}", response.stats.render()));
        total.accumulate(&response.stats);
    }
    let elapsed = run_started.elapsed();
    let batches = latencies_us.len() as u64;
    lines.push(format!(
        "[serve] served {} queries over {} shards x {} threads in {:.3}s ({:.0} queries/s); \
         {} pool hits, {} fallbacks; layer time: snapshot {:.1?} group {:.1?} compute {:.1?} \
         merge {:.1?}",
        total.queries,
        config.shards,
        config.threads,
        elapsed.as_secs_f64(),
        total.queries as f64 / elapsed.as_secs_f64().max(1e-9),
        total.pool_hits,
        total.fallbacks,
        total.snapshot_time,
        total.group_time,
        total.compute_time,
        total.merge_time,
    ));
    let mean_us = latencies_us.iter().sum::<f64>() / latencies_us.len().max(1) as f64;
    Ok(BenchRecord {
        mode: "sync".to_string(),
        preset: config.preset_label.clone(),
        shards: config.shards,
        threads: config.threads,
        queue_depth: 0,
        batch_window_us: 0,
        callers: 1,
        queries: total.queries,
        batches,
        mean_batch: total.queries as f64 / batches.max(1) as f64,
        rejected: 0,
        p50_us: percentile_us(&mut latencies_us, 0.50),
        p99_us: percentile_us(&mut latencies_us, 0.99),
        mean_us,
        throughput_qps: total.queries as f64 / elapsed.as_secs_f64().max(1e-9),
    })
}

/// The async demo: runtime + closed-loop multi-caller load generator + maintenance lane.
fn run_async_demo(
    config: &ServeDemoConfig,
    ctx: &ExperimentContext,
    service: &Arc<EstimatorService<crn_core::CrnModel>>,
    sequential: &Cnt2Crd<crn_core::CrnModel>,
    workload: &[Query],
    lines: &mut Vec<String>,
) -> Result<BenchRecord, String> {
    let callers = config.callers.max(1);
    let runtime_config = RuntimeConfig::default()
        .with_window_us(config.batch_window_us)
        .with_queue_depth(config.queue_depth.max(1))
        .with_per_caller_depth((config.queue_depth.max(1) / callers).max(1))
        .with_batch_max(config.batch.max(1));
    let runtime = ServeRuntime::new(Arc::clone(service), runtime_config);
    lines.push(format!(
        "[serve] async runtime up: window {}us, queue depth {}, per-caller quota {}, \
         batch max {}",
        config.batch_window_us,
        runtime.config().queue_depth,
        runtime.config().per_caller_depth,
        runtime.config().batch_max,
    ));

    // Parity tripwire: the first batch goes through the *runtime* (so the whole
    // queue → scheduler → service path is on the hook), checked against the sequential
    // single-query semantics.  Closed-loop one at a time: the warmup then neither skews
    // `max_batch` nor the fusion stats of the measured run below.
    let first_batch = &workload[..workload.len().min(config.batch.max(1))];
    let estimates: Vec<f64> = first_batch
        .iter()
        .map(|query| {
            runtime
                .submit_retrying(0, query)
                .expect("the driver owns the runtime")
                .wait()
                .estimate
        })
        .collect();
    verify_parity(&estimates, first_batch, sequential, "async")?;
    lines.push(format!(
        "[serve] parity check passed: {} async estimates bit-identical to the sequential \
         path",
        first_batch.len()
    ));

    // The measured run: closed-loop callers, per-request latencies.  Every counter
    // reported below deltas against this snapshot so the parity warmup stays out of the
    // measured figures.
    let pre_load = runtime.stats();
    let run_started = Instant::now();
    let mut latencies_us: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let runtime = &runtime;
        let handles: Vec<_> = (0..callers)
            .map(|caller| {
                scope.spawn(move || {
                    let mut own = Vec::new();
                    for (index, query) in workload.iter().enumerate() {
                        if index % callers == caller {
                            let submitted = Instant::now();
                            let outcome = runtime
                                .submit_retrying(caller as u64, query)
                                .expect("the driver owns the runtime")
                                .wait();
                            own.push(submitted.elapsed().as_secs_f64() * 1e6);
                            debug_assert!(outcome.estimate >= 0.0);
                        }
                    }
                    own
                })
            })
            .collect();
        for handle in handles {
            latencies_us.extend(handle.join().expect("caller thread"));
        }
    });
    let elapsed = run_started.elapsed();

    // The maintenance lane: feed true cardinalities of the first few served queries back
    // into the pool (the §5.2 refresh loop) and wait for the upserts to land.
    let executor = crn_exec::Executor::new(&ctx.db);
    let feedback = workload.len().min(8);
    for query in workload.iter().take(feedback) {
        let cardinality = executor.cardinality(query);
        if runtime.record_feedback(query.clone(), cardinality).is_err() {
            break;
        }
    }
    runtime.flush();

    let stats = runtime.shutdown();
    let rejected = stats.rejected_queue_full + stats.rejected_caller_quota
        - pre_load.rejected_queue_full
        - pre_load.rejected_caller_quota;
    let load_completed = stats.completed - pre_load.completed;
    let load_batches = stats.batches - pre_load.batches;
    let load_mean_batch = if load_batches == 0 {
        0.0
    } else {
        load_completed as f64 / load_batches as f64
    };
    lines.push(format!(
        "[serve] async: {} completed in {} batches (mean {:.2}, max {}, {} coalesced) — \
         {} size-closed, {} window-closed, {} drain-closed; {} rejections absorbed by \
         retries; maintenance applied {} refreshes, {} failed (pool now {} entries)",
        load_completed,
        load_batches,
        load_mean_batch,
        stats.max_batch,
        stats.coalesced,
        stats.size_closes - pre_load.size_closes,
        stats.window_closes - pre_load.window_closes,
        stats.drain_closes - pre_load.drain_closes,
        rejected,
        stats.maintenance_applied,
        stats.maintenance_failed,
        service.pool().len(),
    ));
    lines.push(format!(
        "[serve] aggregate (incl. parity warmup) {}",
        stats.serve.render()
    ));
    let total_queries = latencies_us.len();
    let mean_us = latencies_us.iter().sum::<f64>() / total_queries.max(1) as f64;
    let p50 = percentile_us(&mut latencies_us, 0.50);
    let p99 = percentile_us(&mut latencies_us, 0.99);
    lines.push(format!(
        "[serve] served {} queries via {} callers in {:.3}s ({:.0} queries/s); latency \
         p50 {:.0}us p99 {:.0}us mean {:.0}us",
        total_queries,
        callers,
        elapsed.as_secs_f64(),
        total_queries as f64 / elapsed.as_secs_f64().max(1e-9),
        p50,
        p99,
        mean_us,
    ));
    Ok(BenchRecord {
        mode: "async".to_string(),
        preset: config.preset_label.clone(),
        shards: config.shards,
        threads: config.threads,
        queue_depth: config.queue_depth,
        batch_window_us: config.batch_window_us,
        callers,
        queries: total_queries,
        batches: load_batches,
        mean_batch: load_mean_batch,
        rejected,
        p50_us: p50,
        p99_us: p99,
        mean_us,
        throughput_qps: total_queries as f64 / elapsed.as_secs_f64().max(1e-9),
    })
}

/// The `BENCH_online.json` shape: everything the online-refresh demo measured.
#[derive(Debug, Clone, Serialize)]
pub struct OnlineBenchSummary {
    /// Format version tag for downstream tooling.
    pub schema: String,
    /// The experiment preset.
    pub preset: String,
    /// Pool shard count.
    pub shards: usize,
    /// Worker threads.
    pub threads: usize,
    /// Feedback records between refresh checks (0 = refresh disabled).
    pub refresh_interval: usize,
    /// Held-out probe fraction of the feedback stream.
    pub probe_frac: f64,
    /// Baseline-segment queries served (the distribution the model trained on).
    pub baseline_queries: usize,
    /// Median q-error on the baseline segment.
    pub baseline_median: f64,
    /// Shifted-segment evaluation queries (held out of all feedback).
    pub shifted_eval_queries: usize,
    /// Median q-error of the frozen model on the shifted eval segment over the
    /// *original* pool (pure staleness, before any feedback).
    pub shifted_frozen_median: f64,
    /// Median q-error of the frozen model on the shifted eval segment over the *final*
    /// (maintenance-refreshed) pool — isolates what pool refresh alone bought.
    pub shifted_frozen_final_median: f64,
    /// Median q-error of the live (possibly hot-swapped) model on the shifted eval
    /// segment over the final pool — the model refresh's contribution on top.
    pub shifted_refreshed_median: f64,
    /// Feedback records fed through the maintenance lane.
    pub feedback_records: usize,
    /// Refresh cycles started / applied / gate-rejected / without training pairs.
    pub refreshes_attempted: u64,
    /// See [`OnlineBenchSummary::refreshes_attempted`].
    pub refreshes_applied: u64,
    /// See [`OnlineBenchSummary::refreshes_attempted`].
    pub refreshes_rejected: u64,
    /// See [`OnlineBenchSummary::refreshes_attempted`].
    pub refreshes_without_pairs: u64,
    /// The served model version at the end of the run (1 = never swapped).
    pub model_version: u64,
    /// Maintenance-lane upserts applied / failed over the whole run.
    pub maintenance_applied: u64,
    /// See [`OnlineBenchSummary::maintenance_applied`].
    pub maintenance_failed: u64,
    /// Duplicate in-window requests coalesced by the runtime.
    pub coalesced: u64,
}

/// Serves `queries` through the runtime closed-loop on one caller, returning the
/// estimates in query order.
fn serve_all(
    runtime: &ServeRuntime<CrnModel>,
    caller: u64,
    queries: &[Query],
) -> Result<Vec<f64>, String> {
    queries
        .iter()
        .map(|query| {
            runtime
                .submit_retrying(caller, query)
                .map(|ticket| ticket.wait().estimate)
                .map_err(|e| format!("submission failed: {e}"))
        })
        .collect()
}

/// Median q-error of `(estimate, truth)` pairs (nearest-rank p50, cardinality floor 1).
fn median_q_error(estimates: &[f64], truths: &[u64]) -> f64 {
    let pairs: Vec<(f64, f64)> = estimates
        .iter()
        .zip(truths)
        .map(|(&e, &t)| (e, t as f64))
        .collect();
    QErrorSummary::from_pairs(&pairs, crate::metrics::CARDINALITY_FLOOR).p50
}

/// The online model-refresh demo (`repro serve --online`): a drifting-workload run over
/// the full subsystem — async serving, maintenance-lane feedback, drift detection,
/// gated warm-start fine-tuning and validated hot-swap — reporting median q-errors
/// before/after refresh on the shifted segment.
///
/// Phases:
///
/// 1. **Parity tripwire** — the first batch through the runtime must be bit-identical
///    to the sequential path (same as `--async`; with refresh disabled the whole run
///    stays on model version 1, so `--online` serving is bit-identical to `--async`).
/// 2. **Baseline segment** — the training-distribution workload; its median q-error
///    calibrates the drift threshold.
/// 3. **Shift** — traffic switches to the MSCN-style scale generator (equality-biased
///    predicates, literals from actual rows — a distribution the model never saw).  A
///    held-out eval slice measures the frozen model's staleness; the rest flows back as
///    `(query, true cardinality, estimate)` feedback, and every `--refresh-interval`
///    records the controller gets a refresh opportunity.
/// 4. **Verdict** — the same eval slice re-served after the refreshes, plus a
///    frozen-model evaluation over the *final* pool so the model refresh's contribution
///    is separated from what pool maintenance alone bought.  Any violated gate
///    invariant, an applied refresh that fails to beat the frozen model on the shifted
///    segment, or a swap with refresh disabled returns `Err` — `repro` exits non-zero
///    and the CI smoke fails loudly.
fn run_online_demo(
    config: &ServeDemoConfig,
    ctx: &ExperimentContext,
    service: &Arc<EstimatorService<CrnModel>>,
    sequential: &Cnt2Crd<CrnModel>,
    workload: &[Query],
    lines: &mut Vec<String>,
) -> Result<OnlineBenchSummary, String> {
    let runtime_config = RuntimeConfig::default()
        .with_window_us(config.batch_window_us)
        .with_queue_depth(config.queue_depth.max(1))
        .with_batch_max(config.batch.max(1));
    let runtime = ServeRuntime::new(Arc::clone(service), runtime_config);
    let refresh_enabled = config.refresh_interval > 0;
    lines.push(format!(
        "[serve] online runtime up: refresh {} (interval {}), probe fraction {:.2}",
        if refresh_enabled { "ON" } else { "OFF" },
        config.refresh_interval,
        config.probe_fraction,
    ));

    // Phase 1 — the parity tripwire (identical to --async: the queue → scheduler →
    // service path on the hook against sequential serving).
    let first_batch = &workload[..workload.len().min(config.batch.max(1))];
    let estimates = serve_all(&runtime, 0, first_batch)?;
    verify_parity(&estimates, first_batch, sequential, "online")?;
    lines.push(format!(
        "[serve] parity check passed: {} online estimates bit-identical to the \
         sequential path",
        first_batch.len()
    ));

    // Phase 2 — baseline segment: the distribution the model trained on.
    let executor = crn_exec::Executor::new(&ctx.db);
    let baseline_estimates = serve_all(&runtime, 0, workload)?;
    let baseline_truths: Vec<u64> = workload.iter().map(|q| executor.cardinality(q)).collect();
    let baseline_median = median_q_error(&baseline_estimates, &baseline_truths);
    lines.push(format!(
        "[serve] baseline segment: {} queries, median q-error {:.3}",
        workload.len(),
        baseline_median,
    ));

    // The controller, with its drift threshold calibrated off the healthy segment.
    let drift_threshold = (baseline_median * 1.3).max(2.0);
    let online_config = OnlineConfig {
        drift_threshold,
        drift_window: 32,
        min_observations: 12,
        // Well-fed cycles over trigger-happy ones: a fine-tune on a dozen records with
        // a 4-record probe gate is noise on both sides of the gate.
        min_fresh: 24,
        probe_fraction: config.probe_fraction,
        min_probe: 6,
        fine_tune_epochs: 8,
        seed: ctx.config.seed,
        ..OnlineConfig::default()
    };
    let controller = Arc::new(RefreshController::new(
        Arc::clone(service),
        Box::new(ExecLabeler::new(
            Arc::new(ctx.db.clone()),
            config.threads.max(1),
        )),
        online_config,
    ));
    runtime.set_feedback_observer(Arc::clone(&controller) as Arc<dyn FeedbackObserver>);

    // Phase 3 — the shift: scale-generator traffic (equality-biased, actual-row
    // literals, no perturbation clusters), filtered to pool-covered FROM clauses.  A
    // held-out eval slice never enters any feedback; the rest is the feedback stream.
    let eval_size = (config.queries / 4).clamp(8, 64);
    let feedback_size = config.queries.max(eval_size * 2);
    let mut generator = ScaleGenerator::new(
        &ctx.db,
        ScaleGeneratorConfig {
            seed: ctx.config.seed ^ 0xd41f,
            max_joins: ctx.config.pool_max_joins.min(2),
            eq_bias: 0.7,
        },
    );
    // Keep only pool-covered queries with a non-trivial true cardinality: equality-
    // biased predicates often select ~0 rows, where the q-error floor makes every
    // estimator look perfect and the segment medians stop discriminating.  The
    // cardinalities computed here ARE the segment's ground truth — cached alongside
    // each query so the expensive executions are never repeated.
    let shifted: Vec<(Query, u64)> = generator
        .generate((eval_size + feedback_size) * 8)
        .into_iter()
        .filter(|q| ctx.pool.matching(q).next().is_some())
        .filter_map(|q| {
            let cardinality = executor.cardinality(&q);
            (cardinality >= 4).then_some((q, cardinality))
        })
        .take(eval_size + feedback_size)
        .collect();
    if shifted.len() < eval_size + 8 {
        return Err(format!(
            "shifted workload too small: {} pool-covered queries",
            shifted.len()
        ));
    }
    let (eval_pairs, feedback_slice) = shifted.split_at(eval_size.min(shifted.len() / 3));
    let eval_slice: Vec<Query> = eval_pairs.iter().map(|(q, _)| q.clone()).collect();
    let eval_truths: Vec<u64> = eval_pairs.iter().map(|(_, c)| *c).collect();
    let eval_slice = &eval_slice[..];

    // Frozen-model staleness on the shifted eval slice, over the original pool.
    let frozen_model = (*service.model()).clone();
    let pre_estimates = serve_all(&runtime, 1, eval_slice)?;
    let shifted_frozen_median = median_q_error(&pre_estimates, &eval_truths);
    lines.push(format!(
        "[serve] shifted segment: frozen model median q-error {:.3} over {} held-out \
         queries (baseline was {:.3}, drift threshold {:.3})",
        shifted_frozen_median,
        eval_slice.len(),
        baseline_median,
        drift_threshold,
    ));

    // The feedback stream: serve, observe truth, feed the maintenance lane; every
    // `refresh_interval` records the controller gets its refresh opportunity.
    let mut outcomes: Vec<RefreshOutcome> = Vec::new();
    let chunk_size = if refresh_enabled {
        config.refresh_interval
    } else {
        feedback_slice.len().max(1)
    };
    for chunk in feedback_slice.chunks(chunk_size) {
        let chunk_queries: Vec<Query> = chunk.iter().map(|(q, _)| q.clone()).collect();
        let estimates = serve_all(&runtime, 2, &chunk_queries)?;
        for ((query, truth), estimate) in chunk.iter().zip(&estimates) {
            if runtime
                .record_observed(query.clone(), *truth, *estimate)
                .is_err()
            {
                return Err("maintenance lane rejected feedback".to_string());
            }
        }
        runtime.flush();
        if refresh_enabled {
            if let Some(outcome) = controller.refresh_if_needed() {
                lines.push(format!(
                    "[serve] refresh cycle: {:?} — probe median live {:.3} vs candidate \
                     {:.3} ({} fresh, {} pairs, {} replayed) -> model v{}",
                    outcome.decision,
                    outcome.live_probe_median,
                    outcome.candidate_probe_median,
                    outcome.fresh_records,
                    outcome.labeled_pairs,
                    outcome.replayed,
                    outcome.model_version,
                ));
                if !outcome.gate_respected() {
                    return Err(format!(
                        "validation-gate violation: applied refresh with candidate \
                         probe median {:.3} >= live {:.3}",
                        outcome.candidate_probe_median, outcome.live_probe_median
                    ));
                }
                outcomes.push(outcome);
            }
        }
    }
    runtime.flush();

    // Phase 4 — the verdict on the same held-out slice.
    let post_estimates = serve_all(&runtime, 1, eval_slice)?;
    let shifted_refreshed_median = median_q_error(&post_estimates, &eval_truths);
    // Frozen model over the *final* pool: what §5.2 pool maintenance alone would have
    // achieved, so the model swap's contribution is attributable.
    let final_pool = service.pool().to_pool();
    let frozen_final = Cnt2Crd::new(frozen_model, final_pool)
        .with_config(*service.config())
        .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db)));
    let frozen_final_estimates: Vec<f64> = eval_slice
        .iter()
        .map(|q| frozen_final.estimate(q))
        .collect();
    let shifted_frozen_final_median = median_q_error(&frozen_final_estimates, &eval_truths);

    let applied = outcomes
        .iter()
        .filter(|o| o.decision == RefreshDecision::Applied)
        .count();
    let online_stats = controller.stats();
    let stats = runtime.shutdown();
    lines.push(format!(
        "[serve] shifted segment after {} applied refresh(es): median q-error {:.3} \
         (frozen model on the same final pool: {:.3}; pre-feedback: {:.3})",
        applied, shifted_refreshed_median, shifted_frozen_final_median, shifted_frozen_median,
    ));
    lines.push(format!(
        "[serve] online summary: {} feedback records, {} cycles ({} applied, {} \
         rejected by the gate, {} without pairs), model v{}; maintenance applied {} \
         refreshes, {} failed (pool now {} entries); {} requests coalesced",
        online_stats.feedback_seen,
        online_stats.refreshes_attempted,
        online_stats.refreshes_applied,
        online_stats.refreshes_rejected,
        online_stats.refreshes_without_pairs,
        service.model_version(),
        stats.maintenance_applied,
        stats.maintenance_failed,
        service.pool().len(),
        stats.coalesced,
    ));

    // Hard tripwires for the CI smoke.
    if !refresh_enabled && service.model_version() != 1 {
        return Err(format!(
            "refresh disabled but the model was swapped to v{}",
            service.model_version()
        ));
    }
    if refresh_enabled && applied == 0 {
        return Err(format!(
            "drifting-workload demo applied no refresh ({} cycles: {} rejected, {} \
             without pairs; window median {:.3}, threshold {:.3})",
            online_stats.refreshes_attempted,
            online_stats.refreshes_rejected,
            online_stats.refreshes_without_pairs,
            online_stats.window_median,
            drift_threshold,
        ));
    }
    if applied > 0 && shifted_refreshed_median >= shifted_frozen_final_median {
        return Err(format!(
            "post-refresh median q-error {shifted_refreshed_median:.3} is not strictly \
             better than the frozen-model baseline {shifted_frozen_final_median:.3} on \
             the shifted segment"
        ));
    }

    Ok(OnlineBenchSummary {
        schema: "crn-online-bench-v1".to_string(),
        preset: config.preset_label.clone(),
        shards: config.shards,
        threads: config.threads,
        refresh_interval: config.refresh_interval,
        probe_frac: config.probe_fraction,
        baseline_queries: workload.len(),
        baseline_median,
        shifted_eval_queries: eval_slice.len(),
        shifted_frozen_median,
        shifted_frozen_final_median,
        shifted_refreshed_median,
        feedback_records: feedback_slice.len(),
        refreshes_attempted: online_stats.refreshes_attempted,
        refreshes_applied: online_stats.refreshes_applied,
        refreshes_rejected: online_stats.refreshes_rejected,
        refreshes_without_pairs: online_stats.refreshes_without_pairs,
        model_version: service.model_version(),
        maintenance_applied: stats.maintenance_applied,
        maintenance_failed: stats.maintenance_failed,
        coalesced: stats.coalesced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_demo_runs_on_the_tiny_preset() {
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 24;
        config.batch = 8;
        config.shards = 2;
        config.threads = 2;
        let report = run_serve_demo(&config).expect("parity holds");
        assert!(report.contains("parity check passed"));
        assert!(report.contains("served 24 queries over 2 shards x 2 threads"));
    }

    /// The full online demo on the tiny preset: drift detected, at least one gated
    /// refresh applied, post-refresh median strictly better than the frozen model on
    /// the shifted segment, and the machine-readable summary written.
    #[test]
    fn online_demo_refreshes_and_emits_bench_json() {
        let dir = std::env::temp_dir().join("crn_online_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_online.json");
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 64;
        config.batch = 16;
        config.shards = 4;
        config.threads = 2;
        config.online = true;
        config.refresh_interval = 16;
        config.probe_fraction = 0.25;
        config.bench_json = Some(path.to_string_lossy().to_string());
        let report = run_serve_demo(&config).expect("gates hold and the refresh improves");
        assert!(report.contains("online runtime up"));
        assert!(report.contains("parity check passed"));
        assert!(report.contains("refresh cycle: Applied"));
        assert!(report.contains("maintenance applied"));
        let json = std::fs::read_to_string(&path).expect("bench json written");
        std::fs::remove_file(&path).ok();
        assert!(json.contains("crn-online-bench-v1"));
        assert!(json.contains("refreshes_applied"));
        assert!(json.contains("shifted_refreshed_median"));
        assert!(json.contains("maintenance_failed"));
    }

    /// `--online` with refresh disabled is the PR-4 async path bit-for-bit: the model
    /// version never moves and the post-segment medians coincide exactly with the
    /// frozen model over the same pool.
    #[test]
    fn online_demo_with_refresh_disabled_never_swaps() {
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 48;
        config.batch = 16;
        config.shards = 2;
        config.threads = 2;
        config.online = true;
        config.refresh_interval = 0;
        let report = run_serve_demo(&config).expect("parity mode always passes");
        assert!(report.contains("refresh OFF"));
        assert!(report.contains("model v1"));
        assert!(report.contains("0 cycles"));
    }

    #[test]
    fn async_serve_demo_runs_and_emits_bench_json() {
        let dir = std::env::temp_dir().join("crn_serve_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serving.json");
        let mut config = ServeDemoConfig::new(ExperimentConfig::tiny());
        config.queries = 24;
        config.batch = 8;
        config.shards = 2;
        config.threads = 2;
        config.async_mode = true;
        config.batch_window_us = 100;
        config.queue_depth = 16;
        config.callers = 3;
        config.bench_json = Some(path.to_string_lossy().to_string());
        let report = run_serve_demo(&config).expect("parity holds");
        assert!(report.contains("async runtime up"));
        assert!(report.contains("parity check passed"));
        assert!(report.contains("maintenance applied"));
        let json = std::fs::read_to_string(&path).expect("bench json written");
        std::fs::remove_file(&path).ok();
        assert!(json.contains("crn-serve-bench-v1"));
        assert!(json.contains("\"mode\":\"async\""));
        assert!(json.contains("throughput_qps"));
    }
}
