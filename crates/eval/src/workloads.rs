//! The paper's evaluation workloads (§4.2 and §6.1, Tables 2 and 5).
//!
//! * `cnt_test1` — query *pairs* with 0–2 joins (the training regime);
//! * `cnt_test2` — query *pairs* with 0–5 joins (generalization to unseen join counts);
//! * `crd_test1` — queries with 0–2 joins for cardinality estimation;
//! * `crd_test2` — queries with 0–5 joins;
//! * `scale`     — queries with 0–4 joins from a *different* generator (generalization to a
//!   workload "not created with the same trained queries' generator", §6.6).
//!
//! All workloads are produced by the same generator machinery as the training data but with a
//! different random seed, exactly as the paper prescribes.  Sizes are scaled by a single
//! factor so tests, benches and the full reproduction can share the construction code.

use crn_db::database::Database;
use crn_exec::Executor;
use crn_query::ast::Query;
use crn_query::generator::{
    dedup_queries, GeneratorConfig, QueryGenerator, ScaleGenerator, ScaleGeneratorConfig,
};
use serde::{Deserialize, Serialize};

/// A cardinality workload: a named list of queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Workload name (`crd_test1`, ...).
    pub name: String,
    /// The queries, in generation order.
    pub queries: Vec<Query>,
}

impl Workload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Number of queries per join count, indexed by join count (used for Tables 2 and 5).
    pub fn join_distribution(&self, max_joins: usize) -> Vec<usize> {
        let mut counts = vec![0usize; max_joins + 1];
        for q in &self.queries {
            let joins = q.num_joins().min(max_joins);
            counts[joins] += 1;
        }
        counts
    }
}

/// A containment workload: a named list of query pairs sharing FROM clauses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairWorkload {
    /// Workload name (`cnt_test1`, ...).
    pub name: String,
    /// The query pairs.
    pub pairs: Vec<(Query, Query)>,
}

impl PairWorkload {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of pairs per join count of the first query.
    pub fn join_distribution(&self, max_joins: usize) -> Vec<usize> {
        let mut counts = vec![0usize; max_joins + 1];
        for (q1, _) in &self.pairs {
            counts[q1.num_joins().min(max_joins)] += 1;
        }
        counts
    }
}

/// Per-join-count sizes of every workload.
///
/// The paper's sizes (Table 2 and Table 5) correspond to [`WorkloadSizes::paper`]; smaller
/// presets keep tests and benches fast while preserving the distributions' shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSizes {
    /// Pairs per join count (0..=2) in `cnt_test1`.
    pub cnt_test1_per_join: usize,
    /// Pairs per join count (0..=5) in `cnt_test2`.
    pub cnt_test2_per_join: usize,
    /// Queries per join count (0..=2) in `crd_test1`.
    pub crd_test1_per_join: usize,
    /// Queries per join count (0..=5) in `crd_test2`.
    pub crd_test2_per_join: usize,
    /// Queries per join count (0..=4) in `scale`.
    pub scale_per_join: usize,
}

impl WorkloadSizes {
    /// The paper's workload sizes: 1200 pairs / 450 queries / 500 queries.
    pub fn paper() -> Self {
        WorkloadSizes {
            cnt_test1_per_join: 400,
            cnt_test2_per_join: 200,
            crd_test1_per_join: 150,
            crd_test2_per_join: 75,
            scale_per_join: 100,
        }
    }

    /// A reduced preset for the default reproduction run.
    pub fn small() -> Self {
        WorkloadSizes {
            cnt_test1_per_join: 60,
            cnt_test2_per_join: 30,
            crd_test1_per_join: 40,
            crd_test2_per_join: 20,
            scale_per_join: 25,
        }
    }

    /// A minimal preset for unit tests and criterion benches.
    pub fn tiny() -> Self {
        WorkloadSizes {
            cnt_test1_per_join: 10,
            cnt_test2_per_join: 6,
            crd_test1_per_join: 8,
            crd_test2_per_join: 5,
            scale_per_join: 6,
        }
    }
}

/// Builds the `cnt_test1` pair workload (0–2 joins).
pub fn cnt_test1(db: &Database, sizes: &WorkloadSizes, seed: u64) -> PairWorkload {
    build_pair_workload(db, "cnt_test1", sizes.cnt_test1_per_join, 2, seed)
}

/// Builds the `cnt_test2` pair workload (0–5 joins).
pub fn cnt_test2(db: &Database, sizes: &WorkloadSizes, seed: u64) -> PairWorkload {
    build_pair_workload(db, "cnt_test2", sizes.cnt_test2_per_join, 5, seed)
}

fn build_pair_workload(
    db: &Database,
    name: &str,
    per_join: usize,
    max_joins: usize,
    seed: u64,
) -> PairWorkload {
    let executor = Executor::new(db);
    let mut pairs = Vec::new();
    for joins in 0..=max_joins {
        // A dedicated generator per join count keeps the per-join distribution exact while
        // staying reproducible.
        let config = GeneratorConfig::with_max_joins(seed.wrapping_add(joins as u64), max_joins);
        let mut generator = QueryGenerator::new(db, config);
        let initial = generator.generate_initial_with_joins(per_join.div_ceil(2).max(3), joins);
        let mut produced = 0usize;
        let mut attempts = 0usize;
        while produced < per_join && attempts < 40 {
            attempts += 1;
            for base in &initial {
                if produced >= per_join {
                    break;
                }
                let variant_a = generator.perturb(base);
                let variant_b = generator.perturb(&variant_a);
                let (q1, q2) = if attempts.is_multiple_of(2) {
                    (base.clone(), variant_a)
                } else {
                    (variant_a, variant_b)
                };
                if q1 == q2 || !q1.same_from(&q2) {
                    continue;
                }
                // Containment rates of empty queries are trivially zero and carry no signal;
                // on the (much smaller) synthetic database empty results are far more common
                // than on the real IMDb, so prefer pairs whose contained side is non-empty.
                // Once most attempts are exhausted, accept any well-formed pair so that every
                // join count keeps coverage even on tiny databases.
                if attempts < 30 && executor.cardinality(&q1) == 0 {
                    continue;
                }
                pairs.push((q1, q2));
                produced += 1;
            }
        }
    }
    PairWorkload {
        name: name.to_string(),
        pairs,
    }
}

/// Builds the `crd_test1` cardinality workload (0–2 joins).
pub fn crd_test1(db: &Database, sizes: &WorkloadSizes, seed: u64) -> Workload {
    build_query_workload(db, "crd_test1", sizes.crd_test1_per_join, 2, seed)
}

/// Builds the `crd_test2` cardinality workload (0–5 joins).
pub fn crd_test2(db: &Database, sizes: &WorkloadSizes, seed: u64) -> Workload {
    build_query_workload(db, "crd_test2", sizes.crd_test2_per_join, 5, seed)
}

fn build_query_workload(
    db: &Database,
    name: &str,
    per_join: usize,
    max_joins: usize,
    seed: u64,
) -> Workload {
    let executor = Executor::new(db);
    let mut queries = Vec::new();
    for joins in 0..=max_joins {
        let config =
            GeneratorConfig::with_max_joins(seed.wrapping_add(1000 + joins as u64), max_joins);
        let mut generator = QueryGenerator::new(db, config);
        let mut selected: Vec<Query> = Vec::with_capacity(per_join);
        // Run "the first two steps of the generator" (§6): initial queries plus perturbations.
        // The paper evaluates on the real IMDb database where random conjunctive queries almost
        // always return rows; on the much smaller synthetic database, queries with empty
        // results are common and would trivialize the q-error (any estimator clamping to one
        // row is "perfect").  Keep only non-empty queries, retrying until the quota is met.
        let mut attempts = 0usize;
        while selected.len() < per_join && attempts < 30 {
            attempts += 1;
            let initial = generator.generate_initial_with_joins(per_join, joins);
            let mut candidates: Vec<Query> = Vec::with_capacity(per_join * 2);
            for base in &initial {
                candidates.push(base.clone());
                candidates.push(generator.perturb(base));
            }
            for query in dedup_queries(candidates) {
                if selected.len() >= per_join {
                    break;
                }
                if selected.contains(&query) {
                    continue;
                }
                if executor.cardinality(&query) > 0 {
                    selected.push(query);
                }
            }
        }
        queries.extend(selected);
    }
    Workload {
        name: name.to_string(),
        queries,
    }
}

/// Builds the `scale` workload from the MSCN-style generator (0–4 joins).
pub fn scale(db: &Database, sizes: &WorkloadSizes, seed: u64) -> Workload {
    let executor = Executor::new(db);
    let mut generator = ScaleGenerator::new(
        db,
        ScaleGeneratorConfig {
            seed: seed.wrapping_add(9000),
            max_joins: 4,
            eq_bias: 0.5,
        },
    );
    let mut queries = Vec::new();
    // The paper's scale workload is not uniform over join counts (115/115/107/88/75); keep the
    // same gently decreasing shape.  As with the other workloads, only non-empty queries are
    // kept (see `build_query_workload`).
    let shape = [1.0, 1.0, 0.93, 0.77, 0.65];
    for (joins, fraction) in shape.iter().enumerate() {
        let target = ((sizes.scale_per_join as f64) * fraction).round().max(1.0) as usize;
        let mut selected = Vec::with_capacity(target);
        let mut attempts = 0usize;
        while selected.len() < target && attempts < 30 {
            attempts += 1;
            for query in generator.generate_with_joins(target, joins) {
                if selected.len() >= target {
                    break;
                }
                if !selected.contains(&query) && executor.cardinality(&query) > 0 {
                    selected.push(query);
                }
            }
        }
        queries.extend(selected);
    }
    Workload {
        name: "scale".to_string(),
        queries: dedup_queries(queries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_db::imdb::{generate_imdb, ImdbConfig};

    fn db() -> Database {
        generate_imdb(&ImdbConfig::tiny(70))
    }

    #[test]
    fn cnt_workloads_have_expected_join_distributions() {
        let db = db();
        let sizes = WorkloadSizes::tiny();
        // The non-empty filter may leave a join bucket slightly under quota on the tiny
        // database; the distribution must stay within (0, per_join] for the covered counts
        // and exactly zero beyond the workload's join range.
        let w1 = cnt_test1(&db, &sizes, 1);
        assert!(w1.len() <= sizes.cnt_test1_per_join * 3);
        let dist = w1.join_distribution(5);
        #[allow(clippy::needless_range_loop)]
        for joins in 0..=2 {
            assert!(dist[joins] > 0, "no pairs with {joins} joins");
            assert!(dist[joins] <= sizes.cnt_test1_per_join);
        }
        assert_eq!(dist[3] + dist[4] + dist[5], 0);

        let w2 = cnt_test2(&db, &sizes, 2);
        let dist = w2.join_distribution(5);
        for (joins, &count) in dist.iter().enumerate() {
            assert!(count > 0, "no pairs with {joins} joins");
            assert!(count <= sizes.cnt_test2_per_join, "join count {joins}");
        }
        assert!(w2.len() <= sizes.cnt_test2_per_join * 6);
    }

    #[test]
    fn pair_workloads_share_from_clauses_and_are_not_identical() {
        let db = db();
        let w = cnt_test1(&db, &WorkloadSizes::tiny(), 3);
        for (q1, q2) in &w.pairs {
            assert!(q1.same_from(q2));
            assert_ne!(q1, q2);
        }
    }

    #[test]
    fn crd_workloads_cover_requested_join_counts() {
        let db = db();
        let sizes = WorkloadSizes::tiny();
        let w1 = crd_test1(&db, &sizes, 5);
        assert!(!w1.is_empty() && w1.len() <= sizes.crd_test1_per_join * 3);
        assert!(w1.queries.iter().all(|q| q.num_joins() <= 2));

        let w2 = crd_test2(&db, &sizes, 6);
        let dist = w2.join_distribution(5);
        for (joins, &count) in dist.iter().enumerate() {
            assert!(count > 0, "no queries with {joins} joins");
        }
        // Queries are unique.
        let unique = dedup_queries(w2.queries.clone());
        assert_eq!(unique.len(), w2.len());
    }

    #[test]
    fn scale_workload_uses_different_generator_and_join_range() {
        let db = db();
        let w = scale(&db, &WorkloadSizes::tiny(), 7);
        assert!(!w.is_empty());
        assert!(w.queries.iter().all(|q| q.num_joins() <= 4));
        // The decreasing shape: at least as many 0-join as 4-join queries.
        let dist = w.join_distribution(4);
        assert!(dist[0] >= dist[4]);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let db = db();
        let sizes = WorkloadSizes::tiny();
        assert_eq!(crd_test1(&db, &sizes, 9), crd_test1(&db, &sizes, 9));
        assert_ne!(crd_test1(&db, &sizes, 9), crd_test1(&db, &sizes, 10));
        assert_eq!(
            cnt_test1(&db, &sizes, 9).pairs,
            cnt_test1(&db, &sizes, 9).pairs
        );
    }

    #[test]
    fn join_distribution_is_reported_correctly() {
        let w = Workload {
            name: "w".into(),
            queries: vec![Query::scan("title"), Query::scan("cast_info")],
        };
        assert_eq!(w.join_distribution(2), vec![2, 0, 0]);
        assert!(!w.is_empty());
        assert_eq!(w.len(), 2);
    }
}
