//! `crn-eval` — the evaluation harness reproducing every table and figure of the paper.
//!
//! * [`metrics`] — q-error distributions and the paper's percentile summaries;
//! * [`report`] — plain-text / Markdown rendering of experiment results;
//! * [`workloads`] — the `cnt_test1/2`, `crd_test1/2` and `scale` evaluation workloads
//!   (§4.2, §6.1);
//! * [`harness`] — the shared [`harness::ExperimentContext`]: database, training corpora,
//!   trained CRN/MSCN models, the PostgreSQL baseline and the queries pool;
//! * [`experiments`] — one runner per paper table/figure plus ablations;
//! * [`serve`] — the `repro serve` driver: the concurrent estimator service over a sharded
//!   pool snapshot (sync mode) or the async request-queue runtime with its closed-loop
//!   multi-caller load generator (`--async`), both with a bit-parity tripwire against
//!   sequential serving and an optional machine-readable `BENCH_serving.json` summary.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! cargo run --release -p crn-eval --bin repro -- all --preset small
//! cargo run --release -p crn-eval --bin repro -- table7 table13 --preset tiny
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod plot;
pub mod report;
pub mod serve;
pub mod workloads;

pub use experiments::{run_all, run_experiment, ALL_EXPERIMENTS};
pub use harness::{ExperimentConfig, ExperimentContext};
pub use metrics::{ModelErrors, QErrorSummary};
pub use plot::{render_box_plots, BoxStats};
pub use report::ExperimentReport;
pub use serve::{run_serve_demo, BenchRecord, BenchSummary, OnlineBenchSummary, ServeDemoConfig};
pub use workloads::{PairWorkload, Workload, WorkloadSizes};
