//! Evaluation metrics: q-error distributions and their percentile summaries.
//!
//! Every evaluation table of the paper reports the same seven quantities over a workload's
//! q-errors: the 50th/75th/90th/95th/99th percentiles, the maximum and the mean (§4.3,
//! "Table 3: ... we provide the percentiles, maximum, and the mean q-errors of the tests").

use crn_nn::q_error;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The floor applied to cardinalities before forming the q-error (at least one row).
pub const CARDINALITY_FLOOR: f64 = 1.0;

/// The floor applied to containment rates before forming the q-error (1%, matching the
/// training floor of the CRN model).
pub const RATE_FLOOR: f64 = 0.01;

/// Summary of a q-error distribution, in the paper's reporting format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QErrorSummary {
    /// Number of evaluated queries/pairs.
    pub count: usize,
    /// 50th percentile (median).
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum q-error.
    pub max: f64,
    /// Mean q-error.
    pub mean: f64,
}

impl QErrorSummary {
    /// Summarizes a list of q-errors.
    ///
    /// Returns a zeroed summary when the list is empty.
    pub fn from_errors(errors: &[f64]) -> Self {
        if errors.is_empty() {
            return QErrorSummary {
                count: 0,
                p50: 0.0,
                p75: 0.0,
                p90: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        let mut sorted = errors.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));
        let percentile = |p: f64| -> f64 {
            // The p'th percentile is "the q-error value below which p% of the test q-errors
            // are found" (paper, Table 3 caption); nearest-rank on the sorted list.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        QErrorSummary {
            count: sorted.len(),
            p50: percentile(50.0),
            p75: percentile(75.0),
            p90: percentile(90.0),
            p95: percentile(95.0),
            p99: percentile(99.0),
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }

    /// Computes the summary of q-errors for `(estimate, truth)` pairs with the given floor.
    pub fn from_pairs(pairs: &[(f64, f64)], floor: f64) -> Self {
        let errors: Vec<f64> = pairs.iter().map(|&(e, t)| q_error(e, t, floor)).collect();
        QErrorSummary::from_errors(&errors)
    }
}

impl fmt::Display for QErrorSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10.2} {:>12.2} {:>10.2}",
            self.p50, self.p75, self.p90, self.p95, self.p99, self.max, self.mean
        )
    }
}

/// The q-errors of one model over one workload (kept raw so tables and plots can re-aggregate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelErrors {
    /// Model name as it should appear in the table row.
    pub model: String,
    /// One q-error per evaluated query or pair, in workload order.
    pub errors: Vec<f64>,
}

impl ModelErrors {
    /// Creates the record from raw errors.
    pub fn new(model: impl Into<String>, errors: Vec<f64>) -> Self {
        ModelErrors {
            model: model.into(),
            errors,
        }
    }

    /// Summary of the stored errors.
    pub fn summary(&self) -> QErrorSummary {
        QErrorSummary::from_errors(&self.errors)
    }

    /// Summary restricted to the positions selected by `mask` (e.g. "only 3–5 join queries",
    /// Table 8).
    pub fn summary_where(&self, mask: &[bool]) -> QErrorSummary {
        assert_eq!(mask.len(), self.errors.len(), "mask length mismatch");
        let selected: Vec<f64> = self
            .errors
            .iter()
            .zip(mask)
            .filter(|(_, &keep)| keep)
            .map(|(&e, _)| e)
            .collect();
        QErrorSummary::from_errors(&selected)
    }

    /// Median of the selected subset (used by the per-join-count breakdown, Figure 11).
    pub fn median_where(&self, mask: &[bool]) -> f64 {
        self.summary_where(mask).p50
    }

    /// Mean of the selected subset (used by the per-join-count breakdown, Table 9).
    pub fn mean_where(&self, mask: &[bool]) -> f64 {
        self.summary_where(mask).mean
    }
}

/// Computes q-errors for a batch of `(estimate, truth)` pairs.
pub fn q_errors(pairs: &[(f64, f64)], floor: f64) -> Vec<f64> {
    pairs.iter().map(|&(e, t)| q_error(e, t, floor)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_distribution() {
        let errors: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = QErrorSummary::from_errors(&errors);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p75, 75.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty_and_single_lists() {
        let empty = QErrorSummary::from_errors(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0.0);
        let single = QErrorSummary::from_errors(&[7.0]);
        assert_eq!(single.p50, 7.0);
        assert_eq!(single.p99, 7.0);
        assert_eq!(single.mean, 7.0);
    }

    #[test]
    fn summary_from_pairs_applies_floor() {
        let pairs = [(10.0, 10.0), (1.0, 100.0), (0.0, 5.0)];
        let s = QErrorSummary::from_pairs(&pairs, 1.0);
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 5.0);
    }

    #[test]
    fn model_errors_masking() {
        let m = ModelErrors::new("X", vec![1.0, 10.0, 2.0, 20.0]);
        let mask = [true, false, true, false];
        let s = m.summary_where(&mask);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 2.0);
        // Nearest-rank median of two elements is the lower one.
        assert_eq!(m.median_where(&mask), 1.0);
        assert!((m.mean_where(&mask) - 1.5).abs() < 1e-9);
        assert_eq!(m.summary().count, 4);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn mask_length_is_checked() {
        let m = ModelErrors::new("X", vec![1.0]);
        let _ = m.summary_where(&[true, false]);
    }

    #[test]
    fn percentiles_are_monotone() {
        let errors: Vec<f64> = (0..137).map(|i| ((i * 37) % 91) as f64 + 1.0).collect();
        let s = QErrorSummary::from_errors(&errors);
        assert!(
            s.p50 <= s.p75 && s.p75 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max
        );
        assert!(s.mean >= 1.0);
    }
}
