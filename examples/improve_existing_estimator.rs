//! Improving an *existing* cardinality estimator without changing it (paper §7).
//!
//! The paper's last contribution is a recipe any system can adopt: keep your cardinality
//! estimator `M` exactly as it is, convert it to a containment-rate estimator with `Crd2Cnt`,
//! and wrap it in the queries-pool technique with `Cnt2Crd`.  The resulting `Improved M`
//! re-uses the work of previously executed queries and typically dominates `M` on multi-join
//! queries.  This example does that for the PostgreSQL-style estimator and for MSCN, printing
//! a before/after comparison (the shape of Tables 11 and 12).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example improve_existing_estimator
//! ```

use containment_repro::prelude::*;
use crn_eval::experiments::common::{cardinality_ground_truth, evaluate_cardinality_model};
use crn_eval::workloads::{crd_test2, WorkloadSizes};

fn print_summary(label: &str, summary: &QErrorSummary) {
    println!(
        "{label:<24} p50 {:>8.2}  p90 {:>9.2}  p99 {:>10.2}  max {:>12.2}  mean {:>10.2}",
        summary.p50, summary.p90, summary.p99, summary.max, summary.mean
    );
}

fn main() {
    // A database plus a queries pool of previously executed queries.  In a live DBMS the pool
    // would simply record the queries the system has already answered (§5.2); here we generate
    // and execute one up front.
    let db = generate_imdb(&ImdbConfig::tiny(99));
    let pool = QueriesPool::generate(&db, 80, 5, 99);
    println!(
        "queries pool: {} previously executed queries over {} distinct FROM clauses\n",
        pool.len(),
        pool.num_from_clauses()
    );

    // The existing estimators we want to improve.
    let postgres = PostgresEstimator::analyze(&db);

    let mut generator = QueryGenerator::new(&db, GeneratorConfig::paper(99));
    let pairs = generator.generate_pairs(60, 400);
    let containment_training = label_containment_pairs(&db, &pairs, 4);
    let cardinality_training =
        ExperimentContext::derive_cardinality_training(&containment_training);
    let mut mscn = MscnModel::new(
        &db,
        TrainConfig {
            hidden_size: 32,
            epochs: 15,
            ..TrainConfig::default()
        },
    );
    mscn.fit(&cardinality_training);

    // The improved versions: Improved M = Cnt2Crd(Crd2Cnt(M)) with the queries pool.
    let improved_postgres = ImprovedEstimator::new(PostgresEstimator::analyze(&db), pool.clone());
    let improved_mscn = ImprovedEstimator::new(&mscn, pool.clone());

    // Evaluate everything on a 0-5 join workload.
    let workload = crd_test2(&db, &WorkloadSizes::tiny(), 4321);
    let truth = cardinality_ground_truth(&db, &workload);
    println!(
        "evaluation workload: {} queries with 0-5 joins\n",
        workload.len()
    );

    let pg_summary = evaluate_cardinality_model(&postgres, &workload, &truth).summary();
    let improved_pg_summary =
        evaluate_cardinality_model(&improved_postgres, &workload, &truth).summary();
    let mscn_summary = evaluate_cardinality_model(&mscn, &workload, &truth).summary();
    let improved_mscn_summary =
        evaluate_cardinality_model(&improved_mscn, &workload, &truth).summary();

    println!("-- Table 11 shape: PostgreSQL vs Improved PostgreSQL --");
    print_summary("PostgreSQL", &pg_summary);
    print_summary("Improved PostgreSQL", &improved_pg_summary);
    println!();
    println!("-- Table 12 shape: MSCN vs Improved MSCN --");
    print_summary("MSCN", &mscn_summary);
    print_summary("Improved MSCN", &improved_mscn_summary);

    println!(
        "\nThe improvement needs no change to the original models: they are only queried for\n\
         the cardinalities of Q ∩ Qold and Q, and the queries pool supplies the anchor\n\
         cardinalities |Qold|.  (With a tiny pool and tiny training budget the margin here is\n\
         smaller than the paper's x7/x122, but the direction is the same — run the `repro`\n\
         binary with --preset small for the fuller picture.)"
    );
}
