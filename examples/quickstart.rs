//! Quickstart: train a small CRN model and use it to estimate containment rates and
//! cardinalities.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the paper's full pipeline on a deliberately tiny configuration so it finishes in
//! well under a minute: synthetic database → training pairs → CRN training → containment-rate
//! predictions → queries pool → cardinality estimates.

use containment_repro::prelude::*;

fn main() {
    // 1. Generate a synthetic IMDb-like database (the stand-in for the paper's IMDb snapshot).
    let db = generate_imdb(&ImdbConfig::tiny(42));
    println!(
        "database: {} tables, {} total rows",
        db.schema().num_tables(),
        db.total_rows()
    );

    // 2. Generate and label a training corpus of query pairs (0-2 joins), as in §3.1.2.
    let mut generator = QueryGenerator::new(&db, GeneratorConfig::paper(42));
    let pairs = generator.generate_pairs(60, 400);
    let training = label_containment_pairs(&db, &pairs, 4);
    println!("labelled {} containment training pairs", training.len());

    // 3. Train the CRN model.
    let config = TrainConfig {
        hidden_size: 32,
        epochs: 20,
        ..TrainConfig::default()
    };
    let mut crn = CrnModel::new(&db, config);
    let history = crn.fit(&training);
    println!(
        "trained CRN: best validation mean q-error {:.2} at epoch {}",
        history.best_validation, history.best_epoch
    );

    // 4. Estimate the containment rate of two hand-written queries.
    let schema = db.schema();
    let recent = parse_query(
        "SELECT * FROM title WHERE title.production_year > 2000",
        schema,
    )
    .expect("valid SQL");
    let old_or_new = parse_query(
        "SELECT * FROM title WHERE title.production_year > 1950",
        schema,
    )
    .expect("valid SQL");
    let executor = Executor::new(&db);
    println!(
        "containment of [{}] in [{}]",
        recent.to_sql(),
        old_or_new.to_sql()
    );
    println!(
        "  true rate      = {:.3}",
        executor.containment_rate(&recent, &old_or_new).unwrap()
    );
    println!(
        "  CRN estimate   = {:.3}",
        crn.predict(&recent, &old_or_new)
    );

    // 5. Build a queries pool and estimate cardinalities with the Cnt2Crd technique (§5).
    let pool = QueriesPool::generate(&db, 60, 2, 7);
    let estimator =
        Cnt2Crd::new(&crn, pool).with_fallback(Box::new(PostgresEstimator::analyze(&db)));
    let postgres = PostgresEstimator::analyze(&db);
    for sql in [
        "SELECT * FROM title WHERE title.kind_id = 1 AND title.production_year > 1990",
        "SELECT * FROM title, movie_companies WHERE title.id = movie_companies.movie_id AND movie_companies.company_type_id = 2",
    ] {
        let query = parse_query(sql, schema).expect("valid SQL");
        let truth = executor.cardinality(&query) as f64;
        let crn_estimate = estimator.estimate(&query);
        let pg_estimate = postgres.estimate(&query);
        println!("query: {sql}");
        println!(
            "  true = {truth:>10.0}   Cnt2Crd(CRN) = {crn_estimate:>10.1} (q-error {:.2})   PostgreSQL = {pg_estimate:>10.1} (q-error {:.2})",
            q_error(crn_estimate, truth, 1.0),
            q_error(pg_estimate, truth, 1.0),
        );
    }
}
