//! Containment-rate analysis between user workload queries.
//!
//! The paper motivates containment rates beyond cardinality estimation: query clustering,
//! query recommendation, and deciding whether one query's result is (nearly) contained in
//! another's on the *current* database even when the queries are analytically unrelated
//! (the "Titanic" example of §1).  This example mirrors that scenario: it takes a small
//! workload of analyst queries, estimates all pairwise containment rates with both a trained
//! CRN model and the `Crd2Cnt(PostgreSQL)` baseline, and prints the pairs that are (almost)
//! fully contained in each other.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example containment_analysis
//! ```

use containment_repro::prelude::*;

fn main() {
    let db = generate_imdb(&ImdbConfig::small(7));
    let schema = db.schema();
    let executor = Executor::new(&db);

    // A hand-written analyst workload over the same FROM clause: different ways of asking for
    // "recent successful movies".
    let workload: Vec<(&str, Query)> = [
        (
            "recent titles",
            "SELECT * FROM title WHERE title.production_year > 2000",
        ),
        (
            "modern era",
            "SELECT * FROM title WHERE title.production_year > 1990",
        ),
        (
            "recent feature films",
            "SELECT * FROM title WHERE title.production_year > 2000 AND title.kind_id = 1",
        ),
        (
            "long features",
            "SELECT * FROM title WHERE title.kind_id = 1 AND title.runtime > 150",
        ),
        ("episodes", "SELECT * FROM title WHERE title.kind_id = 7"),
    ]
    .iter()
    .map(|(name, sql)| (*name, parse_query(sql, schema).expect("valid SQL")))
    .collect();

    // Train a CRN model on generated pairs (the workload itself is *not* in the training set).
    let mut generator = QueryGenerator::new(&db, GeneratorConfig::paper(7));
    let pairs = generator.generate_pairs(150, 1200);
    let training = label_containment_pairs(&db, &pairs, 8);
    let mut crn = CrnModel::new(
        &db,
        TrainConfig {
            hidden_size: 48,
            epochs: 25,
            ..TrainConfig::default()
        },
    );
    let history = crn.fit(&training);
    println!(
        "CRN trained on {} pairs (best validation mean q-error {:.2})\n",
        training.len(),
        history.best_validation
    );

    let baseline = Crd2Cnt::new(PostgresEstimator::analyze(&db));

    println!(
        "{:<22} {:<22} {:>10} {:>10} {:>12}",
        "Q1", "Q2", "true", "CRN", "Crd2Cnt(PG)"
    );
    let mut contained_pairs = Vec::new();
    for (name1, q1) in &workload {
        for (name2, q2) in &workload {
            if name1 == name2 {
                continue;
            }
            let truth = executor.containment_rate(q1, q2).unwrap_or(0.0);
            let crn_rate = crn.estimate_containment(q1, q2);
            let pg_rate = baseline.estimate_containment(q1, q2);
            println!("{name1:<22} {name2:<22} {truth:>10.3} {crn_rate:>10.3} {pg_rate:>12.3}");
            if truth > 0.95 {
                contained_pairs.push((name1, name2, truth));
            }
        }
    }

    println!("\nqueries (almost) fully contained in another query on this database:");
    for (a, b, rate) in contained_pairs {
        println!("  '{a}' is {:.1}%-contained in '{b}'", rate * 100.0);
    }
    println!(
        "\nNote how 'recent feature films' is fully contained in both 'recent titles' and\n\
         'modern era' — information an optimizer or a query recommender can exploit, even\n\
         though none of these queries are related by analytic containment."
    );
}
