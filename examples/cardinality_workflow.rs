//! The multi-join cardinality estimation workflow — the paper's headline scenario.
//!
//! Traditional estimators under-estimate multi-join queries on correlated data, with errors
//! that grow exponentially in the number of joins (§1, §6.5).  This example reproduces that
//! story end to end on the synthetic IMDb database: it trains CRN and MSCN on 0–2 join query
//! pairs, builds a queries pool, and then compares PostgreSQL, MSCN and `Cnt2Crd(CRN)` on
//! queries with 0–5 joins, reporting the mean q-error per join count (the shape of Table 9 /
//! Figure 11).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cardinality_workflow
//! ```

use containment_repro::prelude::*;
use crn_eval::experiments::common::{
    cardinality_ground_truth, evaluate_cardinality_model, join_mask,
};
use crn_eval::workloads::{crd_test2, WorkloadSizes};

fn main() {
    // Shared experiment context: database, labelled training data, trained CRN + MSCN,
    // PostgreSQL statistics and the queries pool.  ExperimentConfig::tiny() keeps this example
    // fast; switch to ::small() for a closer look at the paper's shape.
    let ctx = ExperimentContext::build(ExperimentConfig::tiny());
    println!(
        "context ready: {} training pairs, pool of {} queries, CRN best validation q-error {:.2}\n",
        ctx.containment_training.len(),
        ctx.pool.len(),
        ctx.crn_history.best_validation
    );

    // The evaluation workload: queries with zero to five joins (crd_test2).
    let workload = crd_test2(&ctx.db, &WorkloadSizes::tiny(), 1234);
    let truth = cardinality_ground_truth(&ctx.db, &workload);

    // The three headline models of §6.
    let cnt2crd = Cnt2Crd::new(&ctx.crn, ctx.pool.clone())
        .with_fallback(Box::new(PostgresEstimator::analyze(&ctx.db)));
    let models: Vec<(&str, &dyn CardinalityEstimator)> = vec![
        ("PostgreSQL", &ctx.postgres),
        ("MSCN", &ctx.mscn),
        ("Cnt2Crd(CRN)", &cnt2crd),
    ];

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "mean q-error", "0 joins", "1", "2", "3", "4", "5"
    );
    for (label, model) in &models {
        let errors = evaluate_cardinality_model(*model, &workload, &truth);
        let mut cells = Vec::new();
        for joins in 0..=5usize {
            let mask = join_mask(&truth.join_counts, joins, joins);
            cells.push(format!("{:>10.1}", errors.mean_where(&mask)));
        }
        println!("{label:<16} {}", cells.join(" "));
    }

    println!(
        "\nExpected shape (paper, Table 9): PostgreSQL and MSCN errors explode as joins grow\n\
         beyond the training regime (3+ joins), while Cnt2Crd(CRN) stays comparatively flat\n\
         because each estimate is anchored to a previously executed query's true cardinality."
    );

    // Show one concrete 4-join query end to end.
    if let Some((idx, query)) = workload
        .queries
        .iter()
        .enumerate()
        .find(|(_, q)| q.num_joins() >= 4)
    {
        let truth_card = truth.cardinalities[idx] as f64;
        println!(
            "\nexample {}-join query:\n  {}",
            query.num_joins(),
            query.to_sql()
        );
        for (label, model) in &models {
            let estimate = model.estimate(query);
            println!(
                "  {label:<14} estimate {estimate:>12.1}   (true {truth_card:>10.0}, q-error {:.1})",
                q_error(estimate, truth_card.max(1.0), 1.0)
            );
        }
    }
}
