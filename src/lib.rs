//! `containment-repro` — umbrella crate of the reproduction of
//! *"Improved Cardinality Estimation by Learning Queries Containment Rates"* (EDBT 2020).
//!
//! This crate re-exports the workspace's public API so that examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! * [`db`] — synthetic IMDb-like database substrate ([`crn_db`]);
//! * [`query`] — query AST, SQL parsing and workload generators ([`crn_query`]);
//! * [`exec`] — exact execution: cardinalities and containment rates ([`crn_exec`]);
//! * [`nn`] — the minimal neural-network stack ([`crn_nn`]);
//! * [`estimators`] — PostgreSQL-style and MSCN baselines ([`crn_estimators`]);
//! * [`core`] — the CRN model, the `Crd2Cnt`/`Cnt2Crd` transformations, the queries pool and
//!   the improved-estimator wrapper ([`crn_core`]);
//! * [`serve`] — the async request-queue serving runtime: admission control, cross-call
//!   batching windows and the online pool-maintenance lane ([`crn_serve`]);
//! * [`online`] — the continual-learning model-refresh subsystem: drift detection on the
//!   feedback stream, warm-start fine-tuning and validated hot-swap into the live
//!   serving path ([`crn_online`]);
//! * [`eval`] — workloads, metrics and the per-table/figure experiment harness ([`crn_eval`]).
//!
//! # Quick start
//!
//! ```
//! use containment_repro::prelude::*;
//!
//! // 1. A database snapshot (synthetic stand-in for IMDb).
//! let db = generate_imdb(&ImdbConfig::tiny(7));
//!
//! // 2. Ground truth comes from actually executing queries.
//! let executor = Executor::new(&db);
//! let q = Query::scan("title");
//! assert_eq!(executor.containment_rate(&q, &q), Some(1.0));
//!
//! // 3. The full estimation pipeline (untrained here, see examples/ for training).
//! let pool = QueriesPool::generate(&db, 20, 1, 7);
//! let estimator = Cnt2Crd::new(Crd2Cnt::new(PostgresEstimator::analyze(&db)), pool);
//! assert!(estimator.estimate(&q) >= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use crn_core as core;
pub use crn_db as db;
pub use crn_estimators as estimators;
pub use crn_eval as eval;
pub use crn_exec as exec;
pub use crn_nn as nn;
pub use crn_online as online;
pub use crn_query as query;
pub use crn_serve as serve;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use crn_core::{
        Cnt2Crd, Cnt2CrdConfig, Crd2Cnt, CrnFeaturizer, CrnModel, CrnOptions, FinalFunction,
        ImprovedEstimator, QueriesPool,
    };
    pub use crn_db::imdb::{generate_imdb, imdb_schema, ImdbConfig};
    pub use crn_db::{ColumnRef, CompareOp, Database, Schema, Value};
    pub use crn_estimators::{
        CardinalityEstimator, ContainmentEstimator, MscnModel, PostgresEstimator, TrueCardinality,
    };
    pub use crn_eval::{ExperimentConfig, ExperimentContext, QErrorSummary, WorkloadSizes};
    pub use crn_exec::{
        label_cardinalities, label_containment_pairs, CardinalitySample, ContainmentSample,
        Executor, TableSamples,
    };
    pub use crn_nn::{q_error, LossKind, TrainConfig};
    pub use crn_online::{ExecLabeler, OnlineConfig, RefreshController, RefreshWorker};
    pub use crn_query::generator::{
        GeneratorConfig, QueryGenerator, ScaleGenerator, ScaleGeneratorConfig,
    };
    pub use crn_query::{parse_query, JoinClause, Predicate, Query};
    pub use crn_serve::{RuntimeConfig, ServeRuntime, SubmitError, Ticket};
}
