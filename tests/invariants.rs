//! Property-based integration tests over the core invariants of the system.
//!
//! These run the real pipeline pieces (generator → executor → transformations) under proptest
//! with randomized seeds, checking the mathematical identities the paper's construction relies
//! on (§2, §4.1.1, §5.1.1).

use containment_repro::nn::batch::{shard_ranges, RaggedBatch, SparseRows};
use containment_repro::nn::Matrix;
use containment_repro::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared tiny database: generating it per proptest case would dominate the runtime.
fn database() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| generate_imdb(&ImdbConfig::tiny(31337)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Containment rates are always in [0, 1] and the defining identity
    /// `rate = |Q1 ∩ Q2| / |Q1|` holds for every generated pair.
    #[test]
    fn containment_rate_identity(seed in 0u64..500) {
        let db = database();
        let executor = Executor::new(db);
        let mut generator = QueryGenerator::new(db, GeneratorConfig::paper(seed));
        let pairs = generator.generate_pairs(4, 6);
        for (q1, q2) in pairs {
            let rate = executor.containment_rate(&q1, &q2).expect("same FROM clause");
            prop_assert!((0.0..=1.0).contains(&rate));
            let card_q1 = executor.cardinality(&q1);
            let intersection = q1.intersect(&q2).expect("same FROM clause");
            let card_inter = executor.cardinality(&intersection);
            prop_assert!(card_inter <= card_q1);
            if card_q1 > 0 {
                prop_assert!((rate - card_inter as f64 / card_q1 as f64).abs() < 1e-12);
            } else {
                prop_assert_eq!(rate, 0.0);
            }
        }
    }

    /// The intersection query is commutative and shrinking: |Q1 ∩ Q2| <= min(|Q1|, |Q2|).
    #[test]
    fn intersection_is_commutative_and_shrinking(seed in 0u64..500) {
        let db = database();
        let executor = Executor::new(db);
        let mut generator = QueryGenerator::new(db, GeneratorConfig::paper(seed.wrapping_add(1000)));
        let pairs = generator.generate_pairs(3, 5);
        for (q1, q2) in pairs {
            let a = q1.intersect(&q2).unwrap();
            let b = q2.intersect(&q1).unwrap();
            prop_assert_eq!(&a, &b);
            let card = executor.cardinality(&a);
            prop_assert!(card <= executor.cardinality(&q1));
            prop_assert!(card <= executor.cardinality(&q2));
        }
    }

    /// Adding a predicate never increases the cardinality (monotonicity of conjunction).
    #[test]
    fn adding_predicates_is_monotone(seed in 0u64..500) {
        let db = database();
        let executor = Executor::new(db);
        let mut generator = QueryGenerator::new(db, GeneratorConfig::paper(seed.wrapping_add(2000)));
        for query in generator.generate_initial(4) {
            let narrowed = generator.perturb(&query);
            // Only compare when the perturbation added a predicate (other perturbations may
            // widen the result).
            if narrowed.predicates().len() > query.predicates().len()
                && query
                    .predicates()
                    .iter()
                    .all(|p| narrowed.predicates().contains(p))
            {
                prop_assert!(executor.cardinality(&narrowed) <= executor.cardinality(&query));
            }
        }
    }

    /// SQL round trip: every generated query parses back to itself.
    #[test]
    fn generated_queries_round_trip_through_sql(seed in 0u64..500) {
        let db = database();
        let mut generator = QueryGenerator::new(db, GeneratorConfig::with_max_joins(seed.wrapping_add(3000), 5));
        for query in generator.generate_queries(6) {
            let reparsed = parse_query(&query.to_sql(), db.schema()).expect("rendered SQL parses");
            prop_assert_eq!(reparsed, query);
        }
    }

    /// Crd2Cnt over the exact-cardinality oracle reproduces the exact containment rate.
    #[test]
    fn crd2cnt_oracle_is_exact(seed in 0u64..300) {
        let db = database();
        let executor = Executor::new(db);
        let oracle = Crd2Cnt::new(TrueCardinality::new(db));
        let mut generator = QueryGenerator::new(db, GeneratorConfig::paper(seed.wrapping_add(4000)));
        for (q1, q2) in generator.generate_pairs(3, 4) {
            let estimate = oracle.estimate_containment(&q1, &q2);
            let truth = executor.containment_rate(&q1, &q2).unwrap();
            prop_assert!((estimate - truth).abs() < 1e-9);
        }
    }

    /// The PostgreSQL estimator always produces finite estimates of at least one row, and its
    /// single-table scan estimates are exact.
    #[test]
    fn postgres_estimates_are_sane(seed in 0u64..500) {
        let db = database();
        let estimator = PostgresEstimator::analyze(db);
        let mut generator = QueryGenerator::new(db, GeneratorConfig::with_max_joins(seed.wrapping_add(5000), 4));
        for query in generator.generate_queries(6) {
            let estimate = estimator.estimate(&query);
            prop_assert!(estimate.is_finite() && estimate >= 1.0);
        }
        for table in db.schema().tables() {
            let scan = Query::scan(&table.name);
            prop_assert_eq!(estimator.estimate(&scan), db.table(&table.name).unwrap().row_count() as f64);
        }
    }

    /// Shard splitting of ragged batches (the data-parallel training primitive): for random
    /// ragged shapes and shard counts, the canonical ranges partition the segments exactly,
    /// segment-pool boundaries never straddle a shard, and concatenating the shards
    /// reproduces the original batch — for the dense and the CSR-only representation alike.
    #[test]
    fn ragged_shard_splitting_round_trips(seed in 0u64..400) {
        // Derive a ragged shape from the seed (no external RNG needed: small moduli give
        // good coverage of empty segments and shard counts exceeding the segment count).
        let num_segments = (seed % 9) as usize + 1;
        let dim = (seed % 5) as usize + 1;
        let sets: Vec<Matrix> = (0..num_segments)
            .map(|i| {
                let rows = ((seed / 9 + i as u64) % 4) as usize;
                Matrix::xavier_seeded(rows, dim, seed.wrapping_add(i as u64))
            })
            .collect();
        let dense = RaggedBatch::from_sets(sets.iter());
        let sparse_sets: Vec<SparseRows> = sets.iter().map(SparseRows::from_matrix).collect();
        let csr = RaggedBatch::from_sparse_sets(dim, sparse_sets.iter());

        for num_shards in [1usize, 2, 3, 5, num_segments + 3] {
            let ranges = shard_ranges(num_segments, num_shards);
            // The ranges are a canonical partition: contiguous, exhaustive, non-empty.
            prop_assert_eq!(ranges[0].start, 0usize);
            prop_assert_eq!(ranges[ranges.len() - 1].end, num_segments);
            for window in ranges.windows(2) {
                prop_assert_eq!(window[0].end, window[1].start);
                prop_assert!(!window[0].is_empty());
            }

            for batch in [&dense, &csr] {
                let shards = batch.split_shards(num_shards);
                prop_assert_eq!(shards.len(), ranges.len());
                // Segment boundaries survive: shard segment lengths concatenate to the
                // original segment lengths (no segment straddles two shards).
                let lens: Vec<usize> = shards
                    .iter()
                    .flat_map(|s| (0..s.num_segments()).map(move |i| s.segment_len(i)))
                    .collect();
                let original: Vec<usize> =
                    (0..num_segments).map(|i| batch.segment_len(i)).collect();
                prop_assert_eq!(lens, original);
                // Row payloads concatenate back to the original batch (compare via the
                // encoder-visible values: dense rows or CSR non-zeros).
                let rows_of = |b: &RaggedBatch| -> Vec<Vec<(usize, f32)>> {
                    (0..b.num_rows())
                        .map(|r| match b.sparse() {
                            Some(s) if b.rows().rows() == 0 => s.row(r).collect(),
                            _ => b
                                .rows()
                                .row(r)
                                .iter()
                                .enumerate()
                                .filter(|(_, v)| **v != 0.0)
                                .map(|(c, v)| (c, *v))
                                .collect(),
                        })
                        .collect()
                };
                let reassembled: Vec<Vec<(usize, f32)>> =
                    shards.iter().flat_map(&rows_of).collect();
                prop_assert_eq!(reassembled, rows_of(batch));
            }
        }
    }

    /// The queries-pool estimator returns finite non-negative estimates for arbitrary queries,
    /// whether or not the pool covers their FROM clause.
    #[test]
    fn cnt2crd_total_function(seed in 0u64..300) {
        let db = database();
        static POOL: OnceLock<QueriesPool> = OnceLock::new();
        let pool = POOL.get_or_init(|| QueriesPool::generate(db, 40, 2, 9)).clone();
        let estimator = Cnt2Crd::new(Crd2Cnt::new(PostgresEstimator::analyze(db)), pool)
            .with_fallback(Box::new(PostgresEstimator::analyze(db)));
        let mut generator = QueryGenerator::new(db, GeneratorConfig::with_max_joins(seed.wrapping_add(6000), 5));
        for query in generator.generate_queries(5) {
            let estimate = estimator.estimate(&query);
            prop_assert!(estimate.is_finite() && estimate >= 0.0);
        }
    }
}
