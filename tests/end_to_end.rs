//! Cross-crate integration tests: the full pipeline from synthetic database to cardinality
//! estimates, exercised through the public API of the umbrella crate.

use containment_repro::prelude::*;

/// Shared tiny database for the integration tests.
fn database() -> Database {
    generate_imdb(&ImdbConfig::tiny(2024))
}

#[test]
fn executor_and_parser_agree_on_hand_written_sql() {
    let db = database();
    let schema = db.schema();
    let executor = Executor::new(&db);

    let all_titles = parse_query("SELECT * FROM title", schema).unwrap();
    let feature_films = parse_query("SELECT * FROM title WHERE title.kind_id = 1", schema).unwrap();
    let total = executor.cardinality(&all_titles);
    let features = executor.cardinality(&feature_films);
    assert_eq!(total, db.table("title").unwrap().row_count() as u64);
    assert!(features <= total);
    assert!(features > 0, "tiny database always contains feature films");

    // Containment rate of the narrower query in the broader one is exactly 1.
    assert_eq!(
        executor.containment_rate(&feature_films, &all_titles),
        Some(1.0)
    );
    // And the reverse equals the selectivity of the predicate.
    let reverse = executor
        .containment_rate(&all_titles, &feature_films)
        .unwrap();
    assert!((reverse - features as f64 / total as f64).abs() < 1e-12);
}

#[test]
fn training_pipeline_produces_a_usable_crn_model() {
    let db = database();
    let mut generator = QueryGenerator::new(&db, GeneratorConfig::paper(11));
    let pairs = generator.generate_pairs(40, 250);
    let training = label_containment_pairs(&db, &pairs, 4);
    assert_eq!(training.len(), 250);

    let mut crn = CrnModel::new(
        &db,
        TrainConfig {
            hidden_size: 16,
            epochs: 8,
            ..TrainConfig::default()
        },
    );
    let history = crn.fit(&training);
    assert!(!history.is_empty());
    assert!(history.best_validation.is_finite());

    // Every prediction is a valid rate.
    for sample in training.iter().take(50) {
        let rate = crn.predict(&sample.q1, &sample.q2);
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
    }
}

#[test]
fn oracle_based_pipeline_is_exact_end_to_end() {
    // Cnt2Crd(Crd2Cnt(TrueCardinality)) + exact pool must reproduce exact cardinalities: this
    // stitches together crn-db, crn-query, crn-exec, crn-estimators and crn-core.
    let db = database();
    let executor = Executor::new(&db);
    let pool = QueriesPool::generate(&db, 60, 2, 5);
    let estimator = Cnt2Crd::new(Crd2Cnt::new(TrueCardinality::new(&db)), pool);

    let mut generator = QueryGenerator::new(&db, GeneratorConfig::paper(77));
    let mut covered = 0;
    for query in generator.generate_queries(30) {
        let truth = executor.cardinality(&query) as f64;
        if truth == 0.0 || estimator.per_entry_estimates(&query).is_empty() {
            continue;
        }
        let estimate = estimator.estimate(&query);
        assert!(
            q_error(estimate, truth, 1.0) < 1.0 + 1e-9,
            "oracle pipeline must be exact for {query}: {estimate} vs {truth}"
        );
        covered += 1;
    }
    assert!(covered >= 5, "pool should cover several generated queries");
}

#[test]
fn improved_estimator_never_breaks_on_uncovered_queries() {
    let db = database();
    let improved = ImprovedEstimator::new(PostgresEstimator::analyze(&db), QueriesPool::new());
    let mut generator = QueryGenerator::new(&db, GeneratorConfig::with_max_joins(3, 5));
    let baseline = PostgresEstimator::analyze(&db);
    for query in generator.generate_queries(40) {
        // With an empty pool the improved model must exactly fall back to the original.
        assert_eq!(improved.estimate(&query), baseline.estimate(&query));
    }
}

#[test]
fn baselines_and_crn_share_the_containment_interface() {
    let db = database();
    let crn = CrnModel::new(&db, TrainConfig::fast_test());
    let pg = Crd2Cnt::new(PostgresEstimator::analyze(&db));
    let schema = db.schema();
    let q1 = parse_query("SELECT * FROM title WHERE title.runtime > 100", schema).unwrap();
    let q2 = parse_query("SELECT * FROM title WHERE title.runtime > 60", schema).unwrap();

    let models: Vec<&dyn ContainmentEstimator> = vec![&crn, &pg];
    for model in models {
        let rate = model.estimate_containment(&q1, &q2);
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "{} produced {rate}",
            model.name()
        );
    }
}

#[test]
fn mscn_training_set_derivation_matches_paper_rule() {
    // §4.1.2: for every CRN training pair, MSCN gets Q1 ∩ Q2 and Q1 with their true
    // cardinalities, deduplicated.
    let db = database();
    let mut generator = QueryGenerator::new(&db, GeneratorConfig::paper(13));
    let pairs = generator.generate_pairs(20, 80);
    let containment = label_containment_pairs(&db, &pairs, 4);
    let derived = ExperimentContext::derive_cardinality_training(&containment);
    let executor = Executor::new(&db);
    for sample in derived.iter().take(30) {
        assert_eq!(sample.cardinality, executor.cardinality(&sample.query));
    }
    // Every Q1 of the containment corpus is present.
    for c in containment.iter().take(20) {
        assert!(derived.iter().any(|s| s.query == c.q1));
    }
}
